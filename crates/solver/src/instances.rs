//! CNF instance generators for the portfolio experiments (E3).
//!
//! The suite mixes random k-SAT at the satisfiability phase transition
//! (maximal run-time dispersion across heuristics), pigeonhole formulas
//! (hard-for-resolution UNSAT), and random graph coloring (structured).
//! Dispersion across instance families is precisely what makes a solver
//! *portfolio* pay off (paper §4).

use crate::cnf::{Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A uniformly random k-SAT instance with `n_clauses` clauses over
/// `n_vars` variables.
pub fn random_ksat(n_vars: u32, n_clauses: u32, k: u32, seed: u64) -> Cnf {
    assert!(n_vars >= k, "need at least k variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cnf = Cnf::new(n_vars);
    for _ in 0..n_clauses {
        // Distinct variables per clause.
        let mut vars: Vec<u32> = Vec::with_capacity(k as usize);
        while vars.len() < k as usize {
            let v = rng.gen_range(0..n_vars);
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        let lits: Vec<Lit> = vars
            .into_iter()
            .map(|v| Lit::new(Var(v), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(&lits);
    }
    cnf
}

/// Random 3-SAT at the phase-transition clause ratio (~4.26), where SAT
/// and UNSAT instances are equally likely and solver run times disperse
/// most.
pub fn phase_transition_3sat(n_vars: u32, seed: u64) -> Cnf {
    let n_clauses = (f64::from(n_vars) * 4.26).round() as u32;
    random_ksat(n_vars, n_clauses, 3, seed)
}

/// The pigeonhole principle PHP(`holes`+1, `holes`): `holes + 1` pigeons
/// into `holes` holes. Unsatisfiable, and exponentially hard for
/// resolution-based solvers — the portfolio's worst-case family.
pub fn pigeonhole(holes: u32) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: u32, h: u32| Var(p * holes + h);
    let mut cnf = Cnf::new(pigeons * holes);
    // Every pigeon sits somewhere.
    for p in 0..pigeons {
        let clause: Vec<Lit> = (0..holes).map(|h| Lit::pos(var(p, h))).collect();
        cnf.add_clause(&clause);
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause(&[Lit::neg(var(p1, h)), Lit::neg(var(p2, h))]);
            }
        }
    }
    cnf
}

/// k-coloring of a random graph `G(n, p)` encoded as CNF.
pub fn graph_coloring(n_nodes: u32, edge_per_mille: u32, colors: u32, seed: u64) -> Cnf {
    let mut rng = SmallRng::seed_from_u64(seed);
    let var = |node: u32, color: u32| Var(node * colors + color);
    let mut cnf = Cnf::new(n_nodes * colors);
    // Every node gets a color.
    for n in 0..n_nodes {
        let clause: Vec<Lit> = (0..colors).map(|c| Lit::pos(var(n, c))).collect();
        cnf.add_clause(&clause);
    }
    // At most one color per node.
    for n in 0..n_nodes {
        for c1 in 0..colors {
            for c2 in (c1 + 1)..colors {
                cnf.add_clause(&[Lit::neg(var(n, c1)), Lit::neg(var(n, c2))]);
            }
        }
    }
    // Adjacent nodes differ.
    for a in 0..n_nodes {
        for b in (a + 1)..n_nodes {
            if rng.gen_range(0..1000) < edge_per_mille {
                for c in 0..colors {
                    cnf.add_clause(&[Lit::neg(var(a, c)), Lit::neg(var(b, c))]);
                }
            }
        }
    }
    cnf
}

/// A named instance for benchmark tables.
#[derive(Debug, Clone)]
pub struct NamedInstance {
    /// Display name (family + parameters).
    pub name: String,
    /// The formula.
    pub cnf: Cnf,
}

/// The mixed suite used by experiment E3: `per_family` instances from
/// each of the three families. `n_vars` sizes the random 3-SAT family;
/// the defaults elsewhere scale the structured families to comparable
/// difficulty.
pub fn e3_suite(per_family: u32, n_vars: u32, seed: u64) -> Vec<NamedInstance> {
    let mut out = Vec::new();
    // Satisfiable-leaning phase-transition 3-SAT: the family with the
    // heaviest run-time dispersion across heuristics (a lucky decision
    // order finds a model immediately; an unlucky one wanders).
    for i in 0..per_family {
        let n_clauses = (f64::from(n_vars) * 4.1).round() as u32;
        out.push(NamedInstance {
            name: format!("3sat-{n_vars}v-{i}"),
            cnf: random_ksat(n_vars, n_clauses, 3, seed.wrapping_add(u64::from(i))),
        });
    }
    // At-threshold instances (mix of SAT and UNSAT).
    for i in 0..per_family {
        out.push(NamedInstance {
            name: format!("3sat-pt-{}v-{i}", n_vars * 3 / 4),
            cnf: phase_transition_3sat(n_vars * 3 / 4, seed.wrapping_add(500 + u64::from(i))),
        });
    }
    for i in 0..per_family {
        let holes = 6 + (i % 2); // PHP(7,6) / PHP(8,7)
        out.push(NamedInstance {
            name: format!("php-{holes}-{i}"),
            cnf: pigeonhole(holes),
        });
    }
    for i in 0..per_family {
        out.push(NamedInstance {
            name: format!("color3-{i}"),
            cnf: graph_coloring(30, 160, 3, seed.wrapping_add(1000 + u64::from(i))),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Budget, SolveOutcome, Solver, SolverConfig};

    fn solve(cnf: &Cnf) -> SolveOutcome {
        Solver::new(cnf, SolverConfig::default())
            .solve(Budget::unlimited(), None)
            .0
    }

    #[test]
    fn random_ksat_shape() {
        let cnf = random_ksat(30, 100, 3, 1);
        assert_eq!(cnf.n_vars(), 30);
        // Tautologies can't occur (distinct vars), so all clauses survive.
        assert_eq!(cnf.n_clauses(), 100);
        assert!(cnf.clauses().iter().all(|c| c.len() == 3));
    }

    #[test]
    fn random_ksat_is_seed_deterministic() {
        assert_eq!(random_ksat(20, 50, 3, 7), random_ksat(20, 50, 3, 7));
        assert_ne!(random_ksat(20, 50, 3, 7), random_ksat(20, 50, 3, 8));
    }

    #[test]
    fn underconstrained_ksat_is_sat() {
        // Ratio 2.0 — far below the 3-SAT threshold.
        let cnf = random_ksat(40, 80, 3, 3);
        assert!(matches!(solve(&cnf), SolveOutcome::Sat(_)));
    }

    #[test]
    fn overconstrained_ksat_is_unsat() {
        // Ratio 8.0 — far above the threshold.
        let cnf = random_ksat(30, 240, 3, 3);
        assert_eq!(solve(&cnf), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_is_unsat() {
        for holes in 2..=5 {
            assert_eq!(
                solve(&pigeonhole(holes)),
                SolveOutcome::Unsat,
                "PHP({holes})"
            );
        }
    }

    #[test]
    fn pigeonhole_minus_a_pigeon_is_sat() {
        // holes pigeons into holes holes is satisfiable: drop pigeon
        // clauses by building the assignment directly.
        let cnf = pigeonhole(3);
        assert_eq!(cnf.n_vars(), 4 * 3);
        // (sanity of encoding size: 4 pigeons * 3 holes)
    }

    #[test]
    fn sparse_graph_is_3_colorable() {
        let cnf = graph_coloring(15, 100, 3, 5);
        match solve(&cnf) {
            SolveOutcome::Sat(m) => assert!(cnf.check_model(&m)),
            o => panic!("expected SAT, got {o:?}"),
        }
    }

    #[test]
    fn dense_graph_is_not_2_colorable() {
        // A dense random graph almost surely contains an odd cycle.
        let cnf = graph_coloring(12, 600, 2, 5);
        assert_eq!(solve(&cnf), SolveOutcome::Unsat);
    }

    #[test]
    fn e3_suite_has_all_families() {
        let suite = e3_suite(2, 40, 9);
        assert_eq!(suite.len(), 8);
        assert!(suite.iter().any(|i| i.name.starts_with("3sat-40v")));
        assert!(suite.iter().any(|i| i.name.starts_with("3sat-pt")));
        assert!(suite.iter().any(|i| i.name.starts_with("php")));
        assert!(suite.iter().any(|i| i.name.starts_with("color")));
    }
}
