//! CNF formulas: the constraint language of the cooperative prover.
//!
//! Path-feasibility queries from the symbolic executor and the synthetic
//! instances of experiment E3 are both expressed as CNF over boolean
//! variables.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A boolean variable, indexed from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// The variable's index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal from a variable and a sign (`true` = positive).
    pub fn new(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a positive literal.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code in `0..2*n_vars` (used for watch lists).
    pub fn code(self) -> usize {
        self.0 as usize
    }

    /// Whether `assignment` satisfies this literal (`None` = unassigned).
    pub fn satisfied_by(self, assignment: &[Option<bool>]) -> Option<bool> {
        assignment[self.var().index()].map(|v| v == self.is_positive())
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "¬{}", self.var())
        }
    }
}

/// A CNF formula: a conjunction of clauses over `n_vars` variables.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    n_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula over `n_vars` variables (vacuously true).
    pub fn new(n_vars: u32) -> Self {
        Cnf {
            n_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> u32 {
        self.n_vars
    }

    /// Number of clauses.
    pub fn n_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Grows the variable count to at least `n`.
    pub fn ensure_vars(&mut self, n: u32) {
        self.n_vars = self.n_vars.max(n);
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.n_vars);
        self.n_vars += 1;
        v
    }

    /// Adds a clause (duplicates literals are removed; a tautological
    /// clause is silently dropped).
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable `>= n_vars`.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let mut c: Vec<Lit> = lits.to_vec();
        for l in &c {
            assert!(
                l.var().0 < self.n_vars,
                "literal {l} out of range ({} vars)",
                self.n_vars
            );
        }
        c.sort();
        c.dedup();
        let tautology = c.windows(2).any(|w| w[0].var() == w[1].var());
        if !tautology {
            self.clauses.push(c);
        }
    }

    /// Evaluates the formula under a complete assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.iter()
                .any(|l| assignment[l.var().index()] == l.is_positive())
        })
    }

    /// Verifies a model produced by a solver.
    pub fn check_model(&self, model: &[bool]) -> bool {
        model.len() == self.n_vars as usize && self.eval(model)
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnf({} vars, {} clauses)",
            self.n_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(v: u32, pos: bool) -> Lit {
        Lit::new(Var(v), pos)
    }

    #[test]
    fn literal_encoding_roundtrips() {
        for v in 0..10 {
            for pos in [true, false] {
                let lit = l(v, pos);
                assert_eq!(lit.var(), Var(v));
                assert_eq!(lit.is_positive(), pos);
                assert_eq!(lit.negated().negated(), lit);
                assert_ne!(lit.code(), lit.negated().code());
            }
        }
    }

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(&[l(0, true), l(0, false)]);
        assert_eq!(cnf.n_clauses(), 0);
    }

    #[test]
    fn duplicate_literals_are_deduped() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(&[l(1, true), l(1, true), l(0, false)]);
        assert_eq!(cnf.clauses()[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_panics() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(&[l(5, true)]);
    }

    #[test]
    fn eval_checks_all_clauses() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(&[l(0, true), l(1, true)]);
        cnf.add_clause(&[l(2, false)]);
        assert!(cnf.eval(&[true, false, false]));
        assert!(!cnf.eval(&[false, false, false]));
        assert!(!cnf.eval(&[true, true, true]));
    }

    #[test]
    fn check_model_requires_full_length() {
        let mut cnf = Cnf::new(2);
        cnf.add_clause(&[l(0, true)]);
        assert!(!cnf.check_model(&[true]));
        assert!(cnf.check_model(&[true, false]));
    }

    #[test]
    fn fresh_var_extends() {
        let mut cnf = Cnf::new(0);
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        assert_eq!(a, Var(0));
        assert_eq!(b, Var(1));
        assert_eq!(cnf.n_vars(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(l(3, true).to_string(), "x3");
        assert_eq!(l(3, false).to_string(), "¬x3");
        assert_eq!(Cnf::new(4).to_string(), "cnf(4 vars, 0 clauses)");
    }
}
