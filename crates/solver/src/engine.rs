//! The SAT search engine: one core with two learning modes.
//!
//! * [`LearnMode::DecisionClause`] — on conflict, learn the negation of
//!   the current decisions. This is equivalent to classic DPLL with
//!   chronological backtracking and gives the engine its "different
//!   solver" personalities cheaply.
//! * [`LearnMode::FirstUip`] — proper CDCL: 1UIP conflict analysis,
//!   backjumping, VSIDS activities, phase saving, Luby restarts.
//!
//! Heuristic/phase/restart/seed combinations define the *portfolio
//! members* of §4: each member is fast on some instances and slow on
//! others, which is exactly the dispersion the paper's portfolio strategy
//! exploits.

use crate::cnf::{Cnf, Lit, Var};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, Ordering};

/// Decision-variable selection strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Heuristic {
    /// Lowest-index unassigned variable.
    FirstUnassigned,
    /// Static Jeroslow–Wang scores (clause-length weighted occurrence).
    JeroslowWang,
    /// Dynamic VSIDS activity (bumped on conflicts).
    Vsids,
    /// Uniform random unassigned variable.
    Random,
}

/// Initial phase (sign) selection for decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhasePolicy {
    /// Always decide `false` first.
    NegativeFirst,
    /// Always decide `true` first.
    PositiveFirst,
    /// Random sign per decision.
    Random,
    /// Last value the variable held (phase saving); `false` initially.
    Saved,
}

/// Conflict-clause construction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LearnMode {
    /// Negation-of-decisions (DPLL-equivalent).
    DecisionClause,
    /// First unique implication point (CDCL).
    FirstUip,
}

/// Full configuration of one engine instance (one portfolio member).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Display name.
    pub name: String,
    /// Decision heuristic.
    pub heuristic: Heuristic,
    /// Phase policy.
    pub phase: PhasePolicy,
    /// Learning mode.
    pub learn: LearnMode,
    /// Luby restart base in conflicts (`None` disables restarts).
    pub restart_base: Option<u64>,
    /// RNG seed (tie-breaking, random heuristics).
    pub seed: u64,
}

impl SolverConfig {
    /// The three reference portfolio members used by experiment E3 — the
    /// paper's "portfolio of three different SAT solvers". The members
    /// differ in decision heuristic, phase policy, and restart strategy,
    /// which is what makes their run times disperse across instances
    /// ("each solver is fast in solving some path constraints but slow on
    /// others", §4).
    pub fn reference_portfolio() -> Vec<SolverConfig> {
        vec![
            SolverConfig {
                name: "cdcl-vsids".into(),
                heuristic: Heuristic::Vsids,
                phase: PhasePolicy::Saved,
                learn: LearnMode::FirstUip,
                restart_base: Some(64),
                seed: 1,
            },
            SolverConfig {
                name: "cdcl-jw-pos".into(),
                heuristic: Heuristic::JeroslowWang,
                phase: PhasePolicy::PositiveFirst,
                learn: LearnMode::FirstUip,
                restart_base: None,
                seed: 2,
            },
            SolverConfig {
                name: "cdcl-rand".into(),
                heuristic: Heuristic::Random,
                phase: PhasePolicy::Random,
                learn: LearnMode::FirstUip,
                restart_base: Some(16),
                seed: 3,
            },
        ]
    }
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            name: "cdcl-vsids".into(),
            heuristic: Heuristic::Vsids,
            phase: PhasePolicy::Saved,
            learn: LearnMode::FirstUip,
            restart_base: Some(64),
            seed: 0,
        }
    }
}

/// Result of a solve call.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolveOutcome {
    /// Satisfiable, with a model.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// Budget exhausted or cancelled.
    Unknown,
}

impl SolveOutcome {
    /// `true` when the search reached a definite answer.
    pub fn is_decided(&self) -> bool {
        !matches!(self, SolveOutcome::Unknown)
    }
}

/// Search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolveStats {
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Clauses learned.
    pub learned: u64,
}

/// Resource budget for a solve call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Budget {
    /// Stop after this many conflicts (`None` = unbounded).
    pub max_conflicts: Option<u64>,
}

impl Budget {
    /// Unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Conflict-bounded budget.
    pub fn conflicts(n: u64) -> Self {
        Budget {
            max_conflicts: Some(n),
        }
    }
}

const NO_REASON: u32 = u32::MAX;

/// The solver. Construct per formula; call [`Solver::solve`] once.
#[derive(Debug)]
pub struct Solver {
    n_vars: usize,
    clauses: Vec<Vec<Lit>>,
    watches: Vec<Vec<u32>>,
    assign: Vec<Option<bool>>,
    saved_phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    prop_head: usize,
    activity: Vec<f64>,
    act_inc: f64,
    jw_score: Vec<f64>,
    rng: SmallRng,
    config: SolverConfig,
    stats: SolveStats,
    /// Empty clause present (formula trivially UNSAT).
    trivially_unsat: bool,
}

impl Solver {
    /// Prepares a solver for `cnf` under `config`.
    pub fn new(cnf: &Cnf, config: SolverConfig) -> Self {
        let n_vars = cnf.n_vars() as usize;
        let mut s = Solver {
            n_vars,
            clauses: Vec::with_capacity(cnf.n_clauses()),
            watches: vec![Vec::new(); 2 * n_vars],
            assign: vec![None; n_vars],
            saved_phase: vec![false; n_vars],
            level: vec![0; n_vars],
            reason: vec![NO_REASON; n_vars],
            trail: Vec::with_capacity(n_vars),
            trail_lim: Vec::new(),
            prop_head: 0,
            activity: vec![0.0; n_vars],
            act_inc: 1.0,
            jw_score: vec![0.0; n_vars],
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            stats: SolveStats::default(),
            trivially_unsat: false,
        };
        for c in cnf.clauses() {
            s.add_clause_internal(c.clone());
        }
        for c in cnf.clauses() {
            for l in c {
                s.jw_score[l.var().index()] += (2.0_f64).powi(-(c.len() as i32));
            }
        }
        s
    }

    fn add_clause_internal(&mut self, lits: Vec<Lit>) -> u32 {
        let idx = self.clauses.len() as u32;
        match lits.len() {
            0 => {
                self.trivially_unsat = true;
                self.clauses.push(lits);
            }
            1 => {
                // Unit clauses are enqueued at level 0 during solve; store
                // them watched on their only literal so propagation sees
                // them after restarts too.
                self.watches[lits[0].code()].push(idx);
                self.clauses.push(lits);
            }
            _ => {
                self.watches[lits[0].code()].push(idx);
                self.watches[lits[1].code()].push(idx);
                self.clauses.push(lits);
            }
        }
        idx
    }

    fn value(&self, lit: Lit) -> Option<bool> {
        self.assign[lit.var().index()].map(|v| v == lit.is_positive())
    }

    fn enqueue(&mut self, lit: Lit, reason: u32) {
        let v = lit.var().index();
        self.assign[v] = Some(lit.is_positive());
        self.saved_phase[v] = lit.is_positive();
        self.level[v] = self.trail_lim.len() as u32;
        self.reason[v] = reason;
        self.trail.push(lit);
        self.stats.propagations += 1;
    }

    /// Propagates; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.prop_head < self.trail.len() {
            let lit = self.trail[self.prop_head];
            self.prop_head += 1;
            let falsified = lit.negated();
            let mut i = 0;
            // Take the watch list; we rebuild it as we go.
            let mut watch_list = std::mem::take(&mut self.watches[falsified.code()]);
            while i < watch_list.len() {
                let ci = watch_list[i];
                let clause = &self.clauses[ci as usize];
                if clause.len() == 1 {
                    // Unit original clause: satisfied or conflict.
                    match self.value(clause[0]) {
                        Some(true) => {
                            i += 1;
                        }
                        Some(false) => {
                            self.watches[falsified.code()] = watch_list;
                            return Some(ci);
                        }
                        None => {
                            let l0 = clause[0];
                            self.enqueue(l0, ci);
                            i += 1;
                        }
                    }
                    continue;
                }
                // Normalize: watched lits are positions 0 and 1.
                let (w0, w1) = (clause[0], clause[1]);
                let other = if w0 == falsified { w1 } else { w0 };
                if self.value(other) == Some(true) {
                    i += 1;
                    continue;
                }
                // Search for a replacement watch.
                let mut replacement = None;
                for (pos, l) in clause.iter().enumerate().skip(2) {
                    if self.value(*l) != Some(false) {
                        replacement = Some(pos);
                        break;
                    }
                }
                match replacement {
                    Some(pos) => {
                        let clause = &mut self.clauses[ci as usize];
                        let new_watch = clause[pos];
                        // Move falsified out of watch position.
                        let fpos = if clause[0] == falsified { 0 } else { 1 };
                        clause.swap(fpos, pos);
                        self.watches[new_watch.code()].push(ci);
                        watch_list.swap_remove(i);
                        // do not advance i: swapped element takes slot i
                    }
                    None => {
                        // Unit or conflict on `other`.
                        match self.value(other) {
                            Some(false) => {
                                self.watches[falsified.code()] = watch_list;
                                return Some(ci);
                            }
                            _ => {
                                self.enqueue(other, ci);
                                i += 1;
                            }
                        }
                    }
                }
            }
            self.watches[falsified.code()] = watch_list;
        }
        None
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            while self.trail.len() > lim {
                let lit = self.trail.pop().expect("trail non-empty");
                let v = lit.var().index();
                self.assign[v] = None;
                self.reason[v] = NO_REASON;
            }
        }
        self.prop_head = self.trail.len().min(self.prop_head);
        self.prop_head = self.trail.len();
    }

    fn bump(&mut self, var: Var) {
        let a = &mut self.activity[var.index()];
        *a += self.act_inc;
        if *a > 1e100 {
            for x in &mut self.activity {
                *x *= 1e-100;
            }
            self.act_inc *= 1e-100;
        }
    }

    /// 1UIP conflict analysis. Returns (learned clause, backjump level).
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = Vec::new();
        let mut seen = vec![false; self.n_vars];
        let mut counter = 0usize;
        let mut lit: Option<Lit> = None;
        let mut reason_idx = conflict;
        let mut trail_pos = self.trail.len();
        let cur_level = self.decision_level();

        loop {
            let reason_clause = self.clauses[reason_idx as usize].clone();
            for &q in reason_clause.iter() {
                // Skip the literal this clause implied (the one we are
                // resolving on); every other literal in a reason clause
                // lies strictly earlier on the trail.
                if lit.is_some_and(|l| l.var() == q.var()) {
                    continue;
                }
                let v = q.var();
                if !seen[v.index()] && self.level[v.index()] > 0 {
                    seen[v.index()] = true;
                    self.bump(v);
                    if self.level[v.index()] == cur_level {
                        counter += 1;
                    } else {
                        learned.push(q);
                    }
                }
            }
            // Find next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let t = self.trail[trail_pos];
                if seen[t.var().index()] {
                    lit = Some(t.negated());
                    seen[t.var().index()] = false;
                    counter -= 1;
                    reason_idx = self.reason[t.var().index()];
                    break;
                }
            }
            if counter == 0 {
                break;
            }
        }
        let uip = lit.expect("conflict at level > 0 has a UIP");
        learned.push(uip);
        // Backjump level = max level among non-UIP literals (0 if unit).
        let bj = learned
            .iter()
            .filter(|l| **l != uip)
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);
        // Put the UIP in watch position 0 and a max-level literal at 1.
        let n = learned.len();
        learned.swap(0, n - 1);
        if n > 2 {
            let mut best = 1;
            for i in 1..n {
                if self.level[learned[i].var().index()] > self.level[learned[best].var().index()] {
                    best = i;
                }
            }
            learned.swap(1, best);
        }
        (learned, bj)
    }

    /// Decision-clause "analysis": learn the negation of all decisions.
    fn analyze_decisions(&self) -> (Vec<Lit>, u32) {
        let mut learned: Vec<Lit> = self
            .trail_lim
            .iter()
            .map(|&lim| self.trail[lim].negated())
            .collect();
        // UIP-style ordering: last decision first, second-to-last watch.
        learned.reverse();
        let bj = self.decision_level() - 1;
        (learned, bj)
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        match self.config.heuristic {
            Heuristic::FirstUnassigned => (0..self.n_vars)
                .find(|v| self.assign[*v].is_none())
                .map(|v| Var(v as u32)),
            Heuristic::Random => {
                let pool: Vec<usize> = (0..self.n_vars)
                    .filter(|v| self.assign[*v].is_none())
                    .collect();
                if pool.is_empty() {
                    None
                } else {
                    Some(Var(pool[self.rng.gen_range(0..pool.len())] as u32))
                }
            }
            Heuristic::JeroslowWang => best_unassigned(&self.assign, &self.jw_score),
            Heuristic::Vsids => best_unassigned(&self.assign, &self.activity),
        }
    }

    fn pick_phase(&mut self, var: Var) -> bool {
        match self.config.phase {
            PhasePolicy::NegativeFirst => false,
            PhasePolicy::PositiveFirst => true,
            PhasePolicy::Random => self.rng.gen_bool(0.5),
            PhasePolicy::Saved => self.saved_phase[var.index()],
        }
    }

    /// Runs the search.
    ///
    /// `cancel` is polled between conflicts; a portfolio runner sets it
    /// when a sibling finishes first.
    pub fn solve(
        &mut self,
        budget: Budget,
        cancel: Option<&AtomicBool>,
    ) -> (SolveOutcome, SolveStats) {
        if self.trivially_unsat {
            return (SolveOutcome::Unsat, self.stats);
        }
        // Enqueue unit clauses at level 0.
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].len() == 1 {
                let l = self.clauses[ci][0];
                match self.value(l) {
                    Some(false) => return (SolveOutcome::Unsat, self.stats),
                    Some(true) => {}
                    None => self.enqueue(l, ci as u32),
                }
            }
        }
        let mut conflicts_until_restart = self
            .config
            .restart_base
            .map(|b| b * luby(self.stats.restarts + 1));
        loop {
            if let Some(c) = cancel {
                if c.load(Ordering::Relaxed) {
                    return (SolveOutcome::Unknown, self.stats);
                }
            }
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    if let Some(max) = budget.max_conflicts {
                        if self.stats.conflicts > max {
                            return (SolveOutcome::Unknown, self.stats);
                        }
                    }
                    if self.decision_level() == 0 {
                        return (SolveOutcome::Unsat, self.stats);
                    }
                    let (learned, bj) = match self.config.learn {
                        LearnMode::FirstUip => self.analyze(conflict),
                        LearnMode::DecisionClause => self.analyze_decisions(),
                    };
                    self.act_inc /= 0.95;
                    self.backtrack_to(bj);
                    self.stats.learned += 1;
                    let ci = self.add_clause_internal(learned.clone());
                    // Assert the UIP literal.
                    match self.value(learned[0]) {
                        Some(false) => {
                            if self.decision_level() == 0 {
                                return (SolveOutcome::Unsat, self.stats);
                            }
                        }
                        Some(true) => {}
                        None => self.enqueue(learned[0], ci),
                    }
                    if let Some(ref mut left) = conflicts_until_restart {
                        if *left == 0 {
                            self.stats.restarts += 1;
                            self.backtrack_to(0);
                            *left = self
                                .config
                                .restart_base
                                .map(|b| b * luby(self.stats.restarts + 1))
                                .unwrap_or(u64::MAX);
                        } else {
                            *left -= 1;
                        }
                    }
                }
                None => {
                    // No conflict: decide or finish.
                    match self.pick_branch_var() {
                        None => {
                            let model: Vec<bool> =
                                self.assign.iter().map(|a| a.unwrap_or(false)).collect();
                            return (SolveOutcome::Sat(model), self.stats);
                        }
                        Some(var) => {
                            self.stats.decisions += 1;
                            let phase = self.pick_phase(var);
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(Lit::new(var, phase), NO_REASON);
                        }
                    }
                }
            }
        }
    }
}

/// Highest-scored unassigned variable (linear scan; instances here are
/// small enough that a heap would not pay for itself).
fn best_unassigned(assign: &[Option<bool>], score: &[f64]) -> Option<Var> {
    let mut best: Option<usize> = None;
    for v in 0..assign.len() {
        if assign[v].is_none() && best.is_none_or(|b| score[v] > score[b]) {
            best = Some(v);
        }
    }
    best.map(|v| Var(v as u32))
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…), 1-indexed.
pub fn luby(mut i: u64) -> u64 {
    loop {
        // Find the smallest k with 2^k - 1 >= i.
        let mut k = 1u32;
        while ((1u64 << k) - 1) < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::Cnf;
    use proptest::prelude::*;

    fn l(v: u32, pos: bool) -> Lit {
        Lit::new(Var(v), pos)
    }

    fn solve_with(cnf: &Cnf, config: SolverConfig) -> SolveOutcome {
        Solver::new(cnf, config).solve(Budget::unlimited(), None).0
    }

    fn all_configs() -> Vec<SolverConfig> {
        let mut v = SolverConfig::reference_portfolio();
        v.push(SolverConfig {
            name: "first-pos".into(),
            heuristic: Heuristic::FirstUnassigned,
            phase: PhasePolicy::PositiveFirst,
            learn: LearnMode::FirstUip,
            restart_base: None,
            seed: 9,
        });
        v.push(SolverConfig {
            name: "dpll-first".into(),
            heuristic: Heuristic::FirstUnassigned,
            phase: PhasePolicy::NegativeFirst,
            learn: LearnMode::DecisionClause,
            restart_base: None,
            seed: 10,
        });
        v
    }

    /// Brute-force satisfiability for cross-checking.
    fn brute_sat(cnf: &Cnf) -> bool {
        let n = cnf.n_vars() as usize;
        assert!(n <= 20);
        (0..1u64 << n).any(|m| {
            let assignment: Vec<bool> = (0..n).map(|i| m >> i & 1 == 1).collect();
            cnf.eval(&assignment)
        })
    }

    #[test]
    fn empty_formula_is_sat() {
        let cnf = Cnf::new(3);
        for cfg in all_configs() {
            assert!(matches!(solve_with(&cnf, cfg), SolveOutcome::Sat(_)));
        }
    }

    #[test]
    fn single_unit_clause() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(&[l(0, true)]);
        for cfg in all_configs() {
            match solve_with(&cnf, cfg.clone()) {
                SolveOutcome::Sat(m) => assert!(m[0], "{}", cfg.name),
                o => panic!("{}: {o:?}", cfg.name),
            }
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut cnf = Cnf::new(1);
        cnf.add_clause(&[l(0, true)]);
        cnf.add_clause(&[l(0, false)]);
        for cfg in all_configs() {
            assert_eq!(
                solve_with(&cnf, cfg.clone()),
                SolveOutcome::Unsat,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn classic_unsat_chain() {
        // (a∨b) (¬a∨b) (a∨¬b) (¬a∨¬b) is UNSAT.
        let mut cnf = Cnf::new(2);
        cnf.add_clause(&[l(0, true), l(1, true)]);
        cnf.add_clause(&[l(0, false), l(1, true)]);
        cnf.add_clause(&[l(0, true), l(1, false)]);
        cnf.add_clause(&[l(0, false), l(1, false)]);
        for cfg in all_configs() {
            assert_eq!(
                solve_with(&cnf, cfg.clone()),
                SolveOutcome::Unsat,
                "{}",
                cfg.name
            );
        }
    }

    #[test]
    fn models_are_verified() {
        let mut cnf = Cnf::new(4);
        cnf.add_clause(&[l(0, true), l(1, false)]);
        cnf.add_clause(&[l(1, true), l(2, true), l(3, false)]);
        cnf.add_clause(&[l(3, true)]);
        for cfg in all_configs() {
            match solve_with(&cnf, cfg.clone()) {
                SolveOutcome::Sat(m) => assert!(cnf.check_model(&m), "{}", cfg.name),
                o => panic!("{}: {o:?}", cfg.name),
            }
        }
    }

    #[test]
    fn budget_exhaustion_returns_unknown() {
        // A moderately hard instance with a tiny conflict budget.
        let cnf = crate::instances::random_ksat(60, 258, 3, 99);
        let cfg = SolverConfig {
            restart_base: None,
            ..SolverConfig::default()
        };
        let mut s = Solver::new(&cnf, cfg);
        let (out, stats) = s.solve(Budget::conflicts(1), None);
        // Either solved within 1 conflict (unlikely) or Unknown.
        if out == SolveOutcome::Unknown {
            assert!(stats.conflicts >= 1);
        }
    }

    #[test]
    fn cancellation_stops_search() {
        let cnf = crate::instances::random_ksat(80, 344, 3, 5);
        let cancel = AtomicBool::new(true);
        let (out, _) =
            Solver::new(&cnf, SolverConfig::default()).solve(Budget::unlimited(), Some(&cancel));
        assert_eq!(out, SolveOutcome::Unknown);
    }

    #[test]
    fn luby_sequence_is_correct() {
        let want = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(got, want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_agrees_with_brute_force(
            n_vars in 1u32..9,
            clauses in proptest::collection::vec(
                proptest::collection::vec((0u32..9, any::<bool>()), 1..4),
                0..12
            ),
            cfg_idx in 0usize..5,
        ) {
            let mut cnf = Cnf::new(n_vars);
            for c in &clauses {
                let lits: Vec<Lit> = c
                    .iter()
                    .map(|(v, pos)| l(v % n_vars, *pos))
                    .collect();
                cnf.add_clause(&lits);
            }
            let expected = brute_sat(&cnf);
            let cfg = all_configs()[cfg_idx].clone();
            match solve_with(&cnf, cfg.clone()) {
                SolveOutcome::Sat(m) => {
                    prop_assert!(expected, "{} said SAT, brute force says UNSAT", cfg.name);
                    prop_assert!(cnf.check_model(&m), "{} returned bad model", cfg.name);
                }
                SolveOutcome::Unsat => prop_assert!(!expected, "{} said UNSAT, brute force says SAT", cfg.name),
                SolveOutcome::Unknown => prop_assert!(false, "unbounded solve returned Unknown"),
            }
        }
    }
}
