//! # softborg-solver — constraint solving and the solver portfolio
//!
//! Implements the paper's §4 constraint-solving substrate: CNF formulas,
//! a SAT engine with pluggable heuristics (DPLL-equivalent decision-clause
//! learning and full 1UIP CDCL with VSIDS, phase saving and Luby
//! restarts), instance generators, and the *portfolio* runner that races
//! diverse configurations in parallel — the mechanism behind the paper's
//! "10× speedup … with only a 3× increase in computation resources"
//! observation.

#![warn(missing_docs)]

pub mod cnf;
pub mod dimacs;
pub mod engine;
pub mod instances;
pub mod portfolio;

pub use cnf::{Cnf, Lit, Var};
pub use engine::{
    Budget, Heuristic, LearnMode, PhasePolicy, SolveOutcome, SolveStats, Solver, SolverConfig,
};
pub use portfolio::{race, run_each, MemberReport, PortfolioResult};
