//! Bit-rot scrubber for a campaign's durable files: detect media
//! damage in the snapshot generations and the write-ahead journal,
//! quarantine the damaged bytes, and repair around them where a valid
//! older generation or journal suffix makes that sound — failing
//! loudly (typed [`ScrubError`], Warn flight-recorder events) in every
//! case, never silently ingesting garbage.
//!
//! # What "repair" may and may not do
//!
//! The scrubber never reconstructs lost data; it only ever *discards*
//! bytes that verification already rejected, moving them into
//! `*.quarantined` files so the damage stays inspectable. The
//! interesting decision is where the cut is sound:
//!
//! * A corrupt **snapshot generation** is renamed to
//!   `hive.snap.quarantined` (or `hive.snap.prev.quarantined`);
//!   recovery then proceeds from the remaining generation, exactly as
//!   [`SnapshotStore::load`]'s fallback would.
//! * Damage in the journal's **unsynced tail** (the classic torn
//!   append) is cut at the last valid record boundary — the same
//!   prefix [`journal::scan`] recovers — with the dropped bytes
//!   preserved in `hive.wal.quarantined`.
//! * Damage **inside the snapshot-covered prefix** — journal bytes the
//!   snapshot already summarizes, kept only because the post-compaction
//!   truncate hadn't happened yet — is repaired by *dropping the
//!   prefix*: the journal is atomically rewritten to the intact suffix
//!   the snapshot does not cover, which replays onto the snapshot
//!   exactly as it would have before the damage. Without this, the
//!   covered-prefix hash check fails and recovery discards the whole
//!   journal, losing every round committed after the snapshot.
//! * Damage in the **live replay region** with valid records beyond it
//!   cannot be repaired around — replaying across a hole would merge a
//!   different history than was acknowledged — so everything from the
//!   hole onward is quarantined, and the loss is reported.
//!
//! # Deciding which region the damage is in
//!
//! The snapshot's `wal_covered` cannot be taken at face value: after a
//! *completed* compaction the journal restarts at byte 0 while
//! `wal_covered` still describes the pre-truncate file, so a journal
//! whose prefix hash does not match may be either freshly live from
//! byte 0 (stale coverage) or a genuinely covered prefix that the
//! bit rot itself un-hashed. The two interpretations demand opposite
//! repairs, so the scrubber only acts on *verifiable* evidence:
//!
//! * The journal is *shorter* than `wal_covered` → coverage is
//!   provably stale: under true coverage the file only ever grows
//!   (appends), and the truncate that shrinks it is the very event
//!   that makes coverage stale. Every byte is live → tail cut.
//! * The hole is at or past `wal_covered` → the records recovery will
//!   replay (from the covered offset if the prefix hash matches, from
//!   0 otherwise) all precede the hole → tail cut.
//! * The hole is inside the claimed prefix but `bytes[wal_covered..]`
//!   scans as whole checksummed records → the covered offset lands on
//!   a true record boundary, which a regrown journal would only offer
//!   by 2⁻⁶⁴ accident → the prefix is summarized, drop it.
//! * Otherwise the prefix can be neither trusted (replaying it may
//!   double-apply records the snapshot holds) nor skipped (the suffix
//!   is damaged too) → discard the journal, resume from the snapshot.
//!
//! A directory that held durable data but retains *nothing* valid
//! after scrubbing is a [`ScrubError::NothingRecoverable`]: resuming
//! would silently cold-start over an existing campaign, which is the
//! one thing a crash-only system must never do quietly.

use crate::journal::{self, fsync_parent_dir, JournalIoError};
use crate::snapshot::{HiveSnapshot, SnapshotStore};
use softborg_obs::FlightRecorder;
use softborg_store::page::validate_page_bytes;
use softborg_store::{ChainReport, ChainStore, RecordKind};
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Flight-recorder source every scrub event is recorded under.
pub const SCRUB_SOURCE: &str = "hive.scrub";

/// What the scrubber found (and did) for one snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScrub {
    /// The file does not exist (not damage: young campaigns have no
    /// snapshot generations yet).
    Absent,
    /// The file decoded and checksum-verified.
    Clean,
    /// The file failed verification and was renamed to its
    /// `*.quarantined` sibling.
    Quarantined {
        /// The decode error that condemned it.
        error: String,
    },
}

/// How the scrubber left the write-ahead journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalScrubAction {
    /// Every record verified (or the journal is absent/empty).
    Clean,
    /// A damaged tail was cut at the last valid record boundary.
    TailCut,
    /// Damage inside the snapshot-covered prefix: the journal was
    /// rewritten to the intact post-snapshot suffix.
    PrefixDropped,
    /// Damage in the live region made everything from the first hole
    /// onward unusable; the journal was truncated there and recovery
    /// falls back to the snapshot alone.
    Discarded,
}

/// What the scrubber found in a delta-snapshot chain directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainScrub {
    /// The chain walk *after* every condemned record was moved aside —
    /// the lineage resume will actually use.
    pub report: ChainReport,
    /// Record files renamed to `*.quarantined` (names only, relative to
    /// the chain directory).
    pub quarantined: Vec<String>,
}

impl ChainScrub {
    /// `true` when every record on disk validated in place.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.report.is_clean()
    }
}

/// What the scrubber found in a page-store directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageScrub {
    /// Page files whose checksum and framing verified.
    pub pages_valid: u64,
    /// Page files renamed to `*.quarantined` (names only). A faulted
    /// access to a quarantined page fails loudly instead of decoding
    /// rotten bytes.
    pub quarantined: Vec<String>,
}

impl PageScrub {
    /// `true` when every page file verified.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty()
    }
}

/// The scrubber's findings for one campaign directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScrubReport {
    /// Verdict for `hive.snap`.
    pub primary: FileScrub,
    /// Verdict for `hive.snap.prev`.
    pub fallback: FileScrub,
    /// What happened to `hive.wal`.
    pub wal_action: WalScrubAction,
    /// Journal bytes retained as verified-valid.
    pub wal_valid_bytes: u64,
    /// Journal bytes moved into `hive.wal.quarantined`.
    pub wal_quarantined_bytes: u64,
    /// Chain-mode findings ([`scrub_chained_campaign`] only).
    pub chain: Option<ChainScrub>,
    /// Page-store findings (populated when the caller scrubs a paging
    /// directory alongside the campaign).
    pub pages: Option<PageScrub>,
}

impl ScrubReport {
    /// `true` when the scrub found no damage anywhere.
    pub fn is_clean(&self) -> bool {
        !matches!(self.primary, FileScrub::Quarantined { .. })
            && !matches!(self.fallback, FileScrub::Quarantined { .. })
            && self.wal_action == WalScrubAction::Clean
            && self.chain.as_ref().is_none_or(ChainScrub::is_clean)
            && self.pages.as_ref().is_none_or(PageScrub::is_clean)
    }
}

/// Why a scrub could not complete (or could not leave anything to
/// resume from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScrubError {
    /// A filesystem operation failed mid-scrub.
    Io(JournalIoError),
    /// The directory held durable campaign data, but nothing valid
    /// survived scrubbing: every snapshot generation and every journal
    /// record failed verification. Resuming would cold-start over an
    /// existing campaign, so the scrub refuses instead.
    NothingRecoverable,
}

impl fmt::Display for ScrubError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScrubError::Io(e) => write!(f, "scrub I/O failure: {e}"),
            ScrubError::NothingRecoverable => write!(
                f,
                "campaign directory held durable data but nothing valid survived the scrub"
            ),
        }
    }
}

impl std::error::Error for ScrubError {}

impl From<JournalIoError> for ScrubError {
    fn from(e: JournalIoError) -> Self {
        ScrubError::Io(e)
    }
}

fn io_err(op: &'static str, e: &std::io::Error) -> ScrubError {
    ScrubError::Io(JournalIoError::from_io(op, e))
}

/// `<path>.quarantined` — where condemned bytes are moved, next to the
/// file they came from, so post-mortems can inspect the exact damage.
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".quarantined");
    path.with_file_name(name)
}

/// Verifies one snapshot file; on failure renames it aside and records
/// a Warn event. Returns the verdict plus the decoded snapshot when it
/// was clean.
fn scrub_snapshot_file(
    path: &Path,
    obs: &FlightRecorder,
) -> Result<(FileScrub, Option<HiveSnapshot>), ScrubError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok((FileScrub::Absent, None));
        }
        Err(e) => return Err(io_err("scrub-read-snapshot", &e)),
    };
    match HiveSnapshot::decode(&bytes) {
        Ok(snap) => Ok((FileScrub::Clean, Some(snap))),
        Err(e) => {
            let q = quarantine_path(path);
            fs::rename(path, &q).map_err(|e| io_err("scrub-quarantine-snapshot", &e))?;
            fsync_parent_dir(path).map_err(|e| io_err("scrub-dir-fsync", &e))?;
            obs.warn_or_ops(
                SCRUB_SOURCE,
                "snapshot_quarantined",
                &[("bytes", bytes.len() as u64)],
                format!("{}: {e}; moved to {}", path.display(), q.display()),
            );
            Ok((
                FileScrub::Quarantined {
                    error: e.to_string(),
                },
                None,
            ))
        }
    }
}

/// Appends `bytes` to the journal's quarantine file and syncs it.
fn quarantine_wal_bytes(wal_path: &Path, bytes: &[u8]) -> Result<(), ScrubError> {
    let q = quarantine_path(wal_path);
    let mut f = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&q)
        .map_err(|e| io_err("scrub-quarantine-open", &e))?;
    f.write_all(bytes)
        .map_err(|e| io_err("scrub-quarantine-write", &e))?;
    f.sync_all()
        .map_err(|e| io_err("scrub-quarantine-sync", &e))?;
    fsync_parent_dir(&q).map_err(|e| io_err("scrub-dir-fsync", &e))?;
    Ok(())
}

/// Atomically replaces the journal's contents with `bytes`: write a
/// temp file, fsync, rename over `hive.wal`, fsync the directory.
fn rewrite_wal(wal_path: &Path, bytes: &[u8]) -> Result<(), ScrubError> {
    let tmp = wal_path.with_extension("wal.scrub-tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err("scrub-rewrite-create", &e))?;
    f.write_all(bytes)
        .map_err(|e| io_err("scrub-rewrite-write", &e))?;
    f.sync_all().map_err(|e| io_err("scrub-rewrite-sync", &e))?;
    drop(f);
    fs::rename(&tmp, wal_path).map_err(|e| io_err("scrub-rewrite-rename", &e))?;
    fsync_parent_dir(wal_path).map_err(|e| io_err("scrub-dir-fsync", &e))?;
    Ok(())
}

/// Truncates the journal in place to `len` bytes and syncs.
fn truncate_wal(wal_path: &Path, len: u64) -> Result<(), ScrubError> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(wal_path)
        .map_err(|e| io_err("scrub-truncate-open", &e))?;
    f.set_len(len).map_err(|e| io_err("scrub-truncate", &e))?;
    f.sync_all()
        .map_err(|e| io_err("scrub-truncate-sync", &e))?;
    Ok(())
}

/// Scrubs one campaign directory: both snapshot generations, then the
/// journal (using the newest valid snapshot to decide whether damage
/// lies in the covered prefix). Damage is quarantined and, where
/// sound, repaired around; every detection records a Warn event under
/// [`SCRUB_SOURCE`].
///
/// # Errors
///
/// [`ScrubError::Io`] when a filesystem operation fails, and
/// [`ScrubError::NothingRecoverable`] when the directory held durable
/// data but no snapshot generation and no journal record survived
/// verification — resuming would silently cold-start, so the caller
/// must decide explicitly.
pub fn scrub_campaign(
    store: &SnapshotStore,
    obs: &FlightRecorder,
) -> Result<ScrubReport, ScrubError> {
    let (primary, primary_snap) = scrub_snapshot_file(&store.snap_path(), obs)?;
    let (fallback, fallback_snap) = scrub_snapshot_file(&store.prev_path(), obs)?;
    // The newest valid generation decides the covered-prefix question;
    // load() prefers the primary the same way.
    let snap = primary_snap.or(fallback_snap);

    let wal = scrub_wal(&store.wal_path(), snap.as_ref(), obs)?;
    let had_data = wal.had_bytes
        || !matches!(primary, FileScrub::Absent)
        || !matches!(fallback, FileScrub::Absent);
    if had_data && snap.is_none() && wal.valid_bytes == 0 {
        return Err(ScrubError::NothingRecoverable);
    }
    Ok(ScrubReport {
        primary,
        fallback,
        wal_action: wal.action,
        wal_valid_bytes: wal.valid_bytes,
        wal_quarantined_bytes: wal.quarantined_bytes,
        chain: None,
        pages: None,
    })
}

/// Scrubs a *chain-mode* campaign: every chain record that fails
/// validation (bad magic, torn body, checksum mismatch, broken lineage
/// link) is renamed to `*.quarantined`, a record whose payload passes
/// the chain checksum but no longer decodes as a snapshot is condemned
/// the same way, and the journal is then scrubbed against the surviving
/// chain head's coverage exactly as [`scrub_campaign`] would.
///
/// # Errors
///
/// [`ScrubError::Io`] on filesystem failures;
/// [`ScrubError::NothingRecoverable`] when chain files or journal bytes
/// existed but no chain record and no journal record survived.
pub fn scrub_chained_campaign(
    store: &SnapshotStore,
    chain: &ChainStore,
    obs: &FlightRecorder,
) -> Result<ScrubReport, ScrubError> {
    let mut quarantined = Vec::new();
    let before = chain.validate();
    let had_chain_files = before.records > 0 || !before.defects.is_empty();
    for defect in &before.defects {
        // The filename carries the kind; `ChainDefect::file` is the
        // name validation condemned.
        let kind = if defect.file.ends_with(".full") {
            RecordKind::Full
        } else {
            RecordKind::Delta
        };
        if let Some(q) = chain
            .quarantine(defect.generation, kind)
            .map_err(|e| io_err("scrub-quarantine-chain", &e))?
        {
            obs.warn_or_ops(
                SCRUB_SOURCE,
                "chain_record_quarantined",
                &[("generation", defect.generation)],
                format!(
                    "{}: {}; moved to {}",
                    defect.file,
                    defect.error,
                    q.display()
                ),
            );
            quarantined.push(defect.file.clone());
        }
    }
    // The chain layer only vouches for framing and lineage; the payload
    // must still decode as a snapshot. A record that fails that is just
    // as condemned — quarantine and re-walk until the head is usable.
    let (snap, report) = loop {
        let load = chain.load();
        match load.records.last() {
            None => break (None, load.report),
            Some(rec) => match HiveSnapshot::decode(&rec.payload) {
                Ok(snap) => break (Some(snap), load.report),
                Err(e) => {
                    let kind = rec.kind;
                    if let Some(q) = chain
                        .quarantine(rec.generation, kind)
                        .map_err(|e| io_err("scrub-quarantine-chain", &e))?
                    {
                        obs.warn_or_ops(
                            SCRUB_SOURCE,
                            "chain_record_quarantined",
                            &[("generation", rec.generation)],
                            format!(
                                "generation {}: {e}; moved to {}",
                                rec.generation,
                                q.display()
                            ),
                        );
                        quarantined.push(
                            q.file_name()
                                .map(|n| n.to_string_lossy().into_owned())
                                .unwrap_or_default(),
                        );
                    }
                }
            },
        }
    };

    let wal = scrub_wal(&store.wal_path(), snap.as_ref(), obs)?;
    if (had_chain_files || wal.had_bytes) && snap.is_none() && wal.valid_bytes == 0 {
        return Err(ScrubError::NothingRecoverable);
    }
    Ok(ScrubReport {
        primary: FileScrub::Absent,
        fallback: FileScrub::Absent,
        wal_action: wal.action,
        wal_valid_bytes: wal.valid_bytes,
        wal_quarantined_bytes: wal.quarantined_bytes,
        chain: Some(ChainScrub {
            report,
            quarantined,
        }),
        pages: None,
    })
}

/// Scrubs a page-store directory: every `page-*.pg` whose framing or
/// checksum fails verification is renamed to `*.quarantined` (a later
/// faulted access then fails loudly instead of decoding rot). A missing
/// directory is clean — paging may simply be off.
///
/// # Errors
///
/// [`ScrubError::Io`] when the directory or a page file cannot be read
/// or renamed.
pub fn scrub_page_dir(dir: &Path, obs: &FlightRecorder) -> Result<PageScrub, ScrubError> {
    let mut report = PageScrub {
        pages_valid: 0,
        quarantined: Vec::new(),
    };
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(report),
        Err(e) => return Err(io_err("scrub-read-page-dir", &e)),
    };
    let mut pages: Vec<PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "pg")
                && p.file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with("page-"))
        })
        .collect();
    pages.sort();
    for path in pages {
        let bytes = fs::read(&path).map_err(|e| io_err("scrub-read-page", &e))?;
        match validate_page_bytes(&bytes) {
            Ok(_) => report.pages_valid += 1,
            Err(e) => {
                let q = quarantine_path(&path);
                fs::rename(&path, &q).map_err(|e| io_err("scrub-quarantine-page", &e))?;
                fsync_parent_dir(&path).map_err(|e| io_err("scrub-dir-fsync", &e))?;
                obs.warn_or_ops(
                    SCRUB_SOURCE,
                    "page_quarantined",
                    &[("bytes", bytes.len() as u64)],
                    format!("{}: {e}; moved to {}", path.display(), q.display()),
                );
                report.quarantined.push(
                    path.file_name()
                        .unwrap_or_default()
                        .to_string_lossy()
                        .into_owned(),
                );
            }
        }
    }
    Ok(report)
}

/// What [`scrub_wal`] did to one journal file.
struct WalScrub {
    action: WalScrubAction,
    valid_bytes: u64,
    quarantined_bytes: u64,
    had_bytes: bool,
}

/// The journal half of a campaign scrub, shared by the classic and
/// chain-mode entry points: `snap` (the newest valid checkpoint, from
/// either store) decides whether damage lies in the covered prefix.
fn scrub_wal(
    wal_path: &Path,
    snap: Option<&HiveSnapshot>,
    obs: &FlightRecorder,
) -> Result<WalScrub, ScrubError> {
    let wal_bytes = match fs::read(wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("scrub-read-wal", &e)),
    };
    let (_, scan) = journal::scan(&wal_bytes);
    let mut report = WalScrub {
        action: WalScrubAction::Clean,
        valid_bytes: scan.valid_len as u64,
        quarantined_bytes: 0,
        had_bytes: !wal_bytes.is_empty(),
    };
    if scan.tail_dropped > 0 {
        let damage_at = scan.valid_len;
        let covered = snap.map_or(0, |s| s.wal_covered as usize);
        // A file shorter than `covered` proves coverage is stale (the
        // post-compaction truncate completed; true coverage only ever
        // appends): every byte is live. Module docs walk through why
        // each arm is the only sound action in its region.
        if damage_at >= covered || wal_bytes.len() < covered {
            // Everything recovery replays precedes the hole: cut at
            // the last valid record boundary. Records beyond the hole
            // (if any) cannot be replayed across it soundly.
            quarantine_wal_bytes(wal_path, &wal_bytes[damage_at..])?;
            truncate_wal(wal_path, damage_at as u64)?;
            report.action = WalScrubAction::TailCut;
            report.quarantined_bytes = (wal_bytes.len() - damage_at) as u64;
        } else {
            let suffix = &wal_bytes[covered..];
            let (srecs, srep) = journal::scan(suffix);
            if srep.tail_dropped == 0 && !srecs.is_empty() {
                // The covered offset lands on a checksummed record
                // boundary: the prefix is genuinely summarized by the
                // snapshot, and the intact suffix carries everything
                // the snapshot lacks.
                quarantine_wal_bytes(wal_path, &wal_bytes[..covered])?;
                rewrite_wal(wal_path, suffix)?;
                report.action = WalScrubAction::PrefixDropped;
                report.valid_bytes = suffix.len() as u64;
                report.quarantined_bytes = covered as u64;
            } else {
                // The prefix may double-apply and the suffix is
                // damaged too: the snapshot alone is the only state
                // recovery can trust.
                quarantine_wal_bytes(wal_path, &wal_bytes)?;
                truncate_wal(wal_path, 0)?;
                report.action = WalScrubAction::Discarded;
                report.valid_bytes = 0;
                report.quarantined_bytes = wal_bytes.len() as u64;
            }
        }
        let kind = match report.action {
            WalScrubAction::TailCut => "wal_tail_cut",
            WalScrubAction::PrefixDropped => "wal_prefix_dropped",
            WalScrubAction::Discarded => "wal_discarded",
            WalScrubAction::Clean => unreachable!("damage was detected"),
        };
        obs.warn_or_ops(
            SCRUB_SOURCE,
            kind,
            &[
                ("valid_bytes", report.valid_bytes),
                ("quarantined_bytes", report.quarantined_bytes),
            ],
            format!(
                "{}: {}",
                wal_path.display(),
                scan.tail_error
                    .map_or_else(|| "damaged region".to_string(), |e| e.to_string())
            ),
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{append_record, REC_FRAME, REC_ROUND, SESSION_ROUND};
    use softborg_trace::wire;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("softborg-scrub-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn record(kind: u8, session: u64, seq: u64, frame: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        append_record(&mut buf, kind, session, seq, frame);
        buf
    }

    /// A store with a valid snapshot covering `covered` wal bytes, the
    /// wal itself being `covered` + one extra round's records.
    fn seeded_store(tag: &str) -> (SnapshotStore, Vec<u8>, usize) {
        let dir = tmpdir(tag);
        let store = SnapshotStore::open(&dir).unwrap();
        let mut wal = Vec::new();
        wal.extend_from_slice(&record(REC_FRAME, 1, 0, &[0xAA; 40]));
        wal.extend_from_slice(&record(REC_ROUND, SESSION_ROUND, 0, b"round-0"));
        let covered = wal.len();
        wal.extend_from_slice(&record(REC_FRAME, 1, 1, &[0xBB; 40]));
        wal.extend_from_slice(&record(REC_ROUND, SESSION_ROUND, 1, b"round-1"));
        let snap = HiveSnapshot {
            state: vec![1, 2, 3],
            sessions: [(1u64, 1u64)].into_iter().collect(),
            wal_covered: covered as u64,
            wal_covered_hash: wire::fnv1a(&wal[..covered]),
            app_meta: b"meta".to_vec(),
        };
        store.write_snapshot(&snap).unwrap();
        fs::write(store.wal_path(), &wal).unwrap();
        (store, wal, covered)
    }

    #[test]
    fn clean_campaign_scrubs_clean() {
        let (store, wal, _) = seeded_store("clean");
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.wal_valid_bytes, wal.len() as u64);
        assert_eq!(fs::read(store.wal_path()).unwrap(), wal);
        assert!(!quarantine_path(&store.wal_path()).exists());
    }

    #[test]
    fn empty_directory_scrubs_clean() {
        let store = SnapshotStore::open(tmpdir("empty")).unwrap();
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert!(report.is_clean());
        assert_eq!(report.primary, FileScrub::Absent);
    }

    #[test]
    fn corrupt_primary_snapshot_is_quarantined_not_deleted() {
        let (store, _, _) = seeded_store("snap-rot");
        let mut bytes = fs::read(store.snap_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(store.snap_path(), &bytes).unwrap();
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert!(matches!(report.primary, FileScrub::Quarantined { .. }));
        assert!(!store.snap_path().exists(), "corrupt primary left in place");
        assert_eq!(
            fs::read(quarantine_path(&store.snap_path())).unwrap(),
            bytes,
            "quarantine must preserve the damaged bytes exactly"
        );
        // load() now falls back cleanly (no primary to reject).
        let (snap, _) = store.load();
        assert!(snap.is_none(), "no fallback generation existed");
    }

    #[test]
    fn damaged_tail_is_cut_and_quarantined() {
        let (store, wal, covered) = seeded_store("tail");
        let mut bytes = wal.clone();
        let hit = covered + 10; // inside the live region's first record
        bytes[hit] ^= 0xFF;
        fs::write(store.wal_path(), &bytes).unwrap();
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert_eq!(report.wal_action, WalScrubAction::TailCut);
        assert_eq!(report.wal_valid_bytes, covered as u64);
        assert_eq!(report.wal_quarantined_bytes, (wal.len() - covered) as u64);
        let left = fs::read(store.wal_path()).unwrap();
        assert_eq!(left, &wal[..covered]);
        let (_, rep) = journal::scan(&left);
        assert_eq!(rep.tail_dropped, 0, "scrubbed journal must scan clean");
        assert_eq!(
            fs::read(quarantine_path(&store.wal_path())).unwrap(),
            &bytes[covered..]
        );
    }

    #[test]
    fn hole_in_covered_prefix_is_repaired_around() {
        let (store, wal, covered) = seeded_store("prefix");
        let mut bytes = wal.clone();
        bytes[5] ^= 0x80; // first record: squarely inside the covered prefix
        fs::write(store.wal_path(), &bytes).unwrap();
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert_eq!(report.wal_action, WalScrubAction::PrefixDropped);
        assert_eq!(report.wal_valid_bytes, (wal.len() - covered) as u64);
        let left = fs::read(store.wal_path()).unwrap();
        assert_eq!(
            left,
            &wal[covered..],
            "journal must hold exactly the suffix"
        );
        let (recs, rep) = journal::scan(&left);
        assert_eq!(rep.tail_dropped, 0);
        assert_eq!(recs.len(), 2, "the uncovered round survives intact");
        // The snapshot + rewritten journal still form a consistent pair:
        // the covered-prefix hash no longer matches, so replay starts
        // at 0 — which is exactly where the suffix now begins.
        let (snap, _) = store.load();
        assert_eq!(snap.unwrap().replay_offset(&left), 0);
    }

    #[test]
    fn hole_spanning_into_the_live_region_discards_the_journal() {
        let (store, wal, covered) = seeded_store("span");
        let mut bytes = wal.clone();
        bytes[5] ^= 0x80; // covered prefix…
        bytes[covered + 10] ^= 0x80; // …and the live region
        fs::write(store.wal_path(), &bytes).unwrap();
        let report = scrub_campaign(&store, &FlightRecorder::disabled()).unwrap();
        assert_eq!(report.wal_action, WalScrubAction::Discarded);
        assert_eq!(report.wal_valid_bytes, 0);
        assert_eq!(report.wal_quarantined_bytes, wal.len() as u64);
        assert_eq!(fs::read(store.wal_path()).unwrap().len(), 0);
        // The snapshot still resumes the campaign: not NothingRecoverable.
        let (snap, _) = store.load();
        assert!(snap.is_some());
    }

    #[test]
    fn total_loss_is_a_loud_error_not_a_cold_start() {
        let dir = tmpdir("total");
        let store = SnapshotStore::open(&dir).unwrap();
        fs::write(store.snap_path(), b"snapshot-shaped garbage").unwrap();
        fs::write(store.wal_path(), b"journal-shaped garbage").unwrap();
        assert_eq!(
            scrub_campaign(&store, &FlightRecorder::disabled()),
            Err(ScrubError::NothingRecoverable)
        );
        // The evidence was still quarantined before the refusal.
        assert!(quarantine_path(&store.snap_path()).exists());
        assert!(quarantine_path(&store.wal_path()).exists());
    }

    #[test]
    fn scrub_records_warn_events_for_every_detection() {
        use softborg_obs::{ManualClock, Severity};
        use std::sync::Arc;
        let (store, wal, covered) = seeded_store("events");
        let mut bytes = wal.clone();
        bytes[covered + 10] ^= 0xFF;
        fs::write(store.wal_path(), &bytes).unwrap();
        let rec = FlightRecorder::new(Arc::new(ManualClock::new(0)), 64);
        scrub_campaign(&store, &rec).unwrap();
        let events = rec.events();
        assert!(
            events
                .iter()
                .any(|e| e.kind == "wal_tail_cut" && e.severity == Severity::Warn),
            "no Warn event for the cut tail: {events:?}"
        );
    }
}
