//! # softborg-hive — the aggregation and reasoning center
//!
//! The hive of Figure 1: it merges by-products into the collective
//! execution tree, diagnoses misbehaviours, synthesizes and promotes
//! fixes, assembles cumulative proofs, emits guidance, and — in
//! distributed mode — partitions exploration work across unreliable
//! worker nodes.
//!
//! * [`hive`] — the per-program [`hive::Hive`] pipeline.
//! * [`proofs`] — proof certificates and their independent verifier.
//! * [`distributed`] — static vs dynamic tree partitioning over the
//!   network simulator (paper §4).
//! * [`replica`] — gossip-based execution-tree replica synchronization
//!   (the "entirely distributed" hive of §3).

#![warn(missing_docs)]

pub mod distributed;
pub mod hive;
pub mod proofs;
pub mod replica;

pub use distributed::{run_exploration, DistConfig, DistReport, Outage, Partitioning};
pub use hive::{diagnosis_signature, outcome_signature, FixProposal, Hive, HiveConfig, HiveStats};
pub use proofs::{assemble, verify, ProofCertificate, ProofError};
pub use replica::{run_replica_sync, OutcomePath, ReplicaConfig, ReplicaReport};
