//! # softborg-hive — the aggregation and reasoning center
//!
//! The hive of Figure 1: it merges by-products into the collective
//! execution tree, diagnoses misbehaviours, synthesizes and promotes
//! fixes, assembles cumulative proofs, emits guidance, and — in
//! distributed mode — partitions exploration work across unreliable
//! worker nodes.
//!
//! * [`hive`] — the per-program [`hive::Hive`] pipeline.
//! * [`proofs`] — proof certificates and their independent verifier.
//! * [`journal`] — the write-ahead journal accepted frames hit before
//!   merge, and the crash-tolerant scan that rebuilds from it.
//! * [`snapshot`] — checksummed hive snapshots with atomic swap and
//!   torn-write fallback, bounding journal growth via compaction.
//! * [`transport`] — the reliable pod→hive session protocol
//!   (ack/retry/backoff over the network simulator).
//! * [`distributed`] — static vs dynamic tree partitioning over the
//!   network simulator (paper §4).
//! * [`replica`] — gossip-based execution-tree replica synchronization
//!   (the "entirely distributed" hive of §3).

#![warn(missing_docs)]

pub mod distributed;
pub mod hive;
pub mod journal;
pub mod proofs;
pub mod replica;
pub mod scrub;
pub mod snapshot;
pub mod transport;

pub use distributed::{run_exploration, DistConfig, DistReport, Outage, Partitioning};
pub use hive::{
    diagnosis_signature, outcome_signature, FixProposal, Hive, HiveConfig, HiveStats,
    RecoveryReport,
};
pub use journal::{
    fsync_parent_dir, session_floors, FileJournal, JournalIoError, JournalRecord, JournalStore,
    MemJournal, ScanReport, TailError,
};
pub use proofs::{assemble, verify, ProofCertificate, ProofError};
pub use replica::{run_replica_sync, OutcomePath, ReplicaConfig, ReplicaReport};
pub use scrub::{
    scrub_campaign, scrub_chained_campaign, scrub_page_dir, ChainScrub, FileScrub, PageScrub,
    ScrubError, ScrubReport, WalScrubAction,
};
pub use snapshot::{HiveSnapshot, LoadReport, SnapshotSource, SnapshotStore};
pub use transport::{
    run_reliable_ingest, run_reliable_ingest_hosted, run_reliable_ingest_resumed, CanaryBug,
    NetHost, PodClient, TransportConfig, TransportReport,
};
