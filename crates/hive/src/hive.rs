//! The hive: ingest by-products, build the tree, detect bugs, propose
//! and promote fixes, and emit guidance (paper §3, Fig. 1).
//!
//! One [`Hive`] serves one program. Traces arrive (already anonymized by
//! pods), are reconstructed into full paths against the overlay version
//! they ran under, merged into the collective execution tree, and fed to
//! the detectors. Each round the hive can [`propose_fixes`] for diagnosed
//! failure modes and *predicted* deadlocks, [`promote`] a validated
//! candidate into the distributed overlay, and compute a guidance plan.
//!
//! [`propose_fixes`]: Hive::propose_fixes
//! [`promote`]: Hive::promote

use serde::{Deserialize, Serialize};
use softborg_analysis::deadlock::LockOrderGraph;
use softborg_analysis::race::{RaceDetector, RaceReport};
use softborg_analysis::treeloc::{Diagnosis, FailureLedger};
use softborg_fix::{crash_guards, deadlock_immunity, hang_bounds, FixCandidate};
use softborg_guidance::{GuidancePlan, PlanStats, PlannerConfig};
use softborg_ingest::{FrameSender, IngestConfig, IngestStats, ReconstructContext};
use softborg_program::codec::{self, CodecError};
use softborg_program::overlay::Overlay;
use softborg_program::taint::InputDependence;
use softborg_program::Program;
use softborg_trace::{reconstruct, ExecutionTrace, ReconstructError};
use softborg_tree::{CoverageStats, ExecutionTree};
use std::collections::BTreeSet;

/// Hive configuration.
#[derive(Debug, Clone)]
pub struct HiveConfig {
    /// Guidance planner settings.
    pub planner: PlannerConfig,
    /// Iteration cap used by synthesized hang fixes.
    pub hang_bound: u64,
    /// Minimum lock-order-cycle support before proposing a predictive
    /// deadlock fix (1 = fix on first evidence).
    pub min_cycle_support: u64,
    /// Maximum locks participating in a searched cycle.
    pub max_cycle_len: usize,
}

impl Default for HiveConfig {
    fn default() -> Self {
        HiveConfig {
            planner: PlannerConfig::default(),
            hang_bound: 10_000,
            min_cycle_support: 1,
            max_cycle_len: 6,
        }
    }
}

/// Ingest/processing counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HiveStats {
    /// Traces ingested.
    pub traces: u64,
    /// Traces whose full path was reconstructed and merged.
    pub reconstructed: u64,
    /// Traces that could not be reconstructed (inexact policy, version
    /// skew, corruption).
    pub unreconstructed: u64,
    /// New tree nodes created by merging.
    pub new_nodes: u64,
}

/// What [`Hive::recover`] rebuilt from a write-ahead journal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Frame records replayed into the hive.
    pub frames_replayed: u64,
    /// Tombstone records skipped (shed slots — no trace content).
    pub tombstones_skipped: u64,
    /// Bytes dropped from a truncated or corrupt journal tail.
    pub tail_dropped: u64,
    /// `true` when the journal tail was damaged (the dropped records
    /// were never acked, so nothing accepted is lost).
    pub tail_damaged: bool,
}

/// A proposed fix for one failure mode.
#[derive(Debug, Clone)]
pub struct FixProposal {
    /// Stable signature of the failure mode (used to avoid re-fixing).
    pub signature: String,
    /// Candidate overlays, unvalidated.
    pub candidates: Vec<FixCandidate>,
}

/// The per-program hive. See the [module docs](self).
#[derive(Debug)]
pub struct Hive<'p> {
    program: &'p Program,
    deps: InputDependence,
    tree: ExecutionTree,
    lock_graph: LockOrderGraph,
    races: RaceDetector,
    ledger: FailureLedger,
    /// Every overlay version ever distributed (index = version).
    overlay_history: Vec<Overlay>,
    fixed: BTreeSet<String>,
    stats: HiveStats,
    config: HiveConfig,
}

impl<'p> Hive<'p> {
    /// Creates a hive for `program`.
    pub fn new(program: &'p Program, config: HiveConfig) -> Self {
        Hive {
            deps: InputDependence::compute(program),
            tree: ExecutionTree::new(program.id()),
            lock_graph: LockOrderGraph::new(),
            races: RaceDetector::new(),
            ledger: FailureLedger::new(),
            overlay_history: vec![Overlay::empty()],
            fixed: BTreeSet::new(),
            stats: HiveStats::default(),
            program,
            config,
        }
    }

    /// Every overlay version ever distributed (index = version). The
    /// sharded hive clones this per run to build worker-pool
    /// [`ReconstructContext`]s that outlive the mutable borrow its
    /// per-shard mergers hold on the hives.
    pub fn overlays(&self) -> &[Overlay] {
        &self.overlay_history
    }

    /// The program's input-dependence analysis (computed once at
    /// construction; a pure function of the program).
    pub fn deps(&self) -> &InputDependence {
        &self.deps
    }

    /// Applies one pipeline-processed trace — exactly what the
    /// [`ingest_frames`](Self::ingest_frames) merger sink does, exposed
    /// so an external merger (the sharded hive's per-shard appliers)
    /// can drive several hives with one shared worker pool while
    /// keeping [`HiveStats`] and tree state byte-identical to serial
    /// [`ingest`](Self::ingest).
    pub fn apply_processed(&mut self, pt: &softborg_ingest::ProcessedTrace) {
        self.stats.traces += 1;
        self.lock_graph.ingest(&pt.trace);
        self.races.ingest(&pt.trace);
        self.ledger.ingest(&pt.trace);
        match &pt.decisions {
            Some(decisions) => {
                let m = self.tree.merge_path(decisions, &pt.trace.outcome);
                self.stats.new_nodes += m.new_nodes;
                self.stats.reconstructed += 1;
            }
            None => self.stats.unreconstructed += 1,
        }
    }

    /// The current overlay and its version (what pods should run).
    pub fn current_overlay(&self) -> (&Overlay, u64) {
        let v = self.overlay_history.len() as u64 - 1;
        (
            self.overlay_history
                .last()
                .expect("version 0 always exists"),
            v,
        )
    }

    /// Ingests one trace: detectors always see it; the tree additionally
    /// merges the reconstructed path when the trace is exact and its
    /// overlay version is known.
    pub fn ingest(&mut self, trace: &ExecutionTrace) {
        self.stats.traces += 1;
        self.lock_graph.ingest(trace);
        self.races.ingest(trace);
        self.ledger.ingest(trace);
        let overlay = match self.overlay_history.get(trace.overlay_version as usize) {
            Some(o) => o,
            None => {
                self.stats.unreconstructed += 1;
                return;
            }
        };
        match reconstruct(self.program, &self.deps, overlay, trace) {
            Ok(path) => {
                let m = self.tree.merge_path(&path.decisions, &trace.outcome);
                self.stats.new_nodes += m.new_nodes;
                self.stats.reconstructed += 1;
            }
            Err(ReconstructError::InexactPolicy(_)) => {
                self.stats.unreconstructed += 1;
            }
            Err(_) => {
                self.stats.unreconstructed += 1;
            }
        }
    }

    /// Ingests encoded batch frames ([`wire::encode_batch`]) through the
    /// staged pipeline: a pool of decode+reconstruct workers feeding a
    /// single ordered merger that owns the tree. Observably identical to
    /// calling [`ingest`](Self::ingest) on every trace in frame order —
    /// same [`HiveStats`], tree digest, and coverage — for any worker
    /// count or batch size. Corrupt frames are counted in the returned
    /// [`IngestStats`] and skipped without panicking.
    ///
    /// [`wire::encode_batch`]: softborg_trace::wire::encode_batch
    pub fn ingest_batch(&mut self, frames: Vec<Vec<u8>>, config: &IngestConfig) -> IngestStats {
        let ((), stats) = self.ingest_frames(config, move |tx| {
            for f in frames {
                tx.submit(f);
            }
        });
        stats
    }

    /// Streaming form of [`ingest_batch`](Self::ingest_batch): `producer`
    /// runs on its own thread (clone the [`FrameSender`] to fan out) and
    /// submits frames while the pipeline decodes, reconstructs, and
    /// merges them concurrently. The merger runs on the calling thread
    /// and is the only writer to the tree and detectors.
    ///
    /// The overlay history is frozen for the duration of the call
    /// (enforced by the borrow: promotion needs `&mut self`).
    pub fn ingest_frames<R, P>(&mut self, config: &IngestConfig, producer: P) -> (R, IngestStats)
    where
        P: FnOnce(FrameSender) -> R + Send,
        R: Send,
    {
        let Hive {
            program,
            deps,
            tree,
            lock_graph,
            races,
            ledger,
            overlay_history,
            stats,
            ..
        } = self;
        let ctx = ReconstructContext {
            program,
            deps: &*deps,
            overlays: overlay_history.as_slice(),
        };
        softborg_ingest::run(config, ctx, producer, |pt| {
            stats.traces += 1;
            lock_graph.ingest(&pt.trace);
            races.ingest(&pt.trace);
            ledger.ingest(&pt.trace);
            match &pt.decisions {
                Some(decisions) => {
                    let m = tree.merge_path(decisions, &pt.trace.outcome);
                    stats.new_nodes += m.new_nodes;
                    stats.reconstructed += 1;
                }
                None => stats.unreconstructed += 1,
            }
        })
    }

    /// Rebuilds a hive from write-ahead journal bytes: scans the journal
    /// (dropping any truncated or corrupt tail without panicking) and
    /// replays every surviving frame record, in journal order, through
    /// the staged ingest pipeline. Because the transport acks a frame
    /// only after its journal record is synced, the rebuilt state covers
    /// everything the hive ever acknowledged — the recovery guarantee of
    /// the crash-only lineage.
    pub fn recover(
        program: &'p Program,
        config: HiveConfig,
        ingest_cfg: &IngestConfig,
        journal_bytes: &[u8],
    ) -> (Self, RecoveryReport) {
        let (records, scan) = crate::journal::scan(journal_bytes);
        if let Some(err) = scan.tail_error {
            // Dropping an unsynced/corrupt tail is expected crash fallout,
            // but it must never be *silent*: an operator comparing pod-side
            // send counts to hive state needs this event (the default ops
            // recorder echoes Warn+ to stderr).
            softborg_obs::ops().warn(
                "hive.recover",
                "recovery_tail_dropped",
                &[
                    ("tail_bytes", scan.tail_dropped as u64),
                    ("intact_records", scan.records as u64),
                ],
                format_args!(
                    "hive recovery dropped {} journal tail byte(s) after {} intact record(s): {err}",
                    scan.tail_dropped, scan.records
                ),
            );
        }
        let mut report = RecoveryReport {
            tail_dropped: scan.tail_dropped as u64,
            tail_damaged: scan.tail_error.is_some(),
            ..RecoveryReport::default()
        };
        let mut frames = Vec::new();
        for rec in records {
            match rec.kind {
                crate::journal::REC_FRAME => {
                    report.frames_replayed += 1;
                    frames.push(rec.frame);
                }
                _ => report.tombstones_skipped += 1,
            }
        }
        let mut hive = Hive::new(program, config);
        hive.ingest_batch(frames, ingest_cfg);
        (hive, report)
    }

    /// Proposes fixes for every *unfixed* failure mode: exact crash
    /// guards, hang bounds, and deadlock-immunity gates — including
    /// gates for cycles that have not yet deadlocked (prediction).
    pub fn propose_fixes(&self) -> Vec<FixProposal> {
        let mut out = Vec::new();
        for d in self.ledger.diagnoses() {
            let signature = diagnosis_signature(d);
            if self.fixed.contains(&signature) {
                continue;
            }
            let candidates = match d.class.as_str() {
                "crash" => d
                    .loc
                    .map(|loc| crash_guards(self.program, loc))
                    .unwrap_or_default(),
                "hang" => hang_bounds(self.program, &d.stuck, self.config.hang_bound),
                "deadlock" => Vec::new(), // handled below via the lock graph
                _ => Vec::new(),
            };
            if !candidates.is_empty() {
                out.push(FixProposal {
                    signature,
                    candidates,
                });
            }
        }
        // Deadlock patterns (observed or predicted).
        let (current, _) = self.current_overlay();
        for cycle in self.lock_graph.cycles(self.config.max_cycle_len) {
            if cycle.support < self.config.min_cycle_support {
                continue;
            }
            // Signature uses the sorted lock set so observed deadlocks and
            // predicted cycles over the same locks share one fix.
            let mut locks = cycle.locks.clone();
            locks.sort();
            locks.dedup();
            let signature = format!("lock-cycle:{locks:?}");
            if self.fixed.contains(&signature) {
                continue;
            }
            out.push(FixProposal {
                signature,
                candidates: vec![deadlock_immunity(&cycle, current)],
            });
        }
        out
    }

    /// Promotes a validated candidate: merges it into the distributed
    /// overlay, bumps the version, and marks the mode fixed. Returns the
    /// new version.
    pub fn promote(&mut self, signature: &str, candidate: &FixCandidate) -> u64 {
        let mut next = self.current_overlay().0.clone();
        next.merge(&candidate.overlay);
        self.overlay_history.push(next);
        self.fixed.insert(signature.to_string());
        self.overlay_history.len() as u64 - 1
    }

    /// Computes a guidance plan from the current tree (marking
    /// proven-infeasible arms as a side effect).
    pub fn guidance(&mut self) -> (GuidancePlan, PlanStats) {
        softborg_guidance::plan(self.program, &mut self.tree, &self.config.planner)
    }

    /// Current execution tree (read-only).
    pub fn tree(&self) -> &ExecutionTree {
        &self.tree
    }

    /// Coverage summary.
    pub fn coverage(&self) -> CoverageStats {
        self.tree.coverage()
    }

    /// Current failure diagnoses, most frequent first.
    pub fn diagnoses(&self) -> Vec<&Diagnosis> {
        self.ledger.diagnoses()
    }

    /// Current data-race candidates.
    pub fn race_candidates(&self) -> Vec<RaceReport> {
        self.races.candidates()
    }

    /// The aggregated lock-order graph.
    pub fn lock_graph(&self) -> &LockOrderGraph {
        &self.lock_graph
    }

    /// Processing statistics.
    pub fn stats(&self) -> HiveStats {
        self.stats
    }

    /// Cumulative proof certificates derivable from the current tree
    /// (paper §3.3).
    pub fn proofs(&self) -> Vec<crate::proofs::ProofCertificate> {
        crate::proofs::assemble(&self.tree)
    }

    /// Serializes the hive's complete mutable state — tree (with outcome
    /// tallies and infeasibility marks), detector aggregates, failure
    /// ledger, overlay history, fixed-mode set, and counters — into the
    /// deterministic snapshot byte format. Two hives that processed the
    /// same inputs encode to identical bytes, which is the invariant the
    /// durability harness asserts (`program` and `config` are the
    /// caller's responsibility and are not stored; input dependence is a
    /// pure function of the program and is recomputed on decode).
    pub fn encode_state(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u8(&mut buf, 1); // state-format version
        self.tree.encode_into(&mut buf);
        self.lock_graph.encode_into(&mut buf);
        self.races.encode_into(&mut buf);
        self.ledger.encode_into(&mut buf);
        codec::put_u32(&mut buf, self.overlay_history.len() as u32);
        for o in &self.overlay_history {
            o.encode_into(&mut buf);
        }
        codec::put_u32(&mut buf, self.fixed.len() as u32);
        for sig in &self.fixed {
            codec::put_str(&mut buf, sig);
        }
        codec::put_u64(&mut buf, self.stats.traces);
        codec::put_u64(&mut buf, self.stats.reconstructed);
        codec::put_u64(&mut buf, self.stats.unreconstructed);
        codec::put_u64(&mut buf, self.stats.new_nodes);
        buf
    }

    /// Serializes only what changed since the last
    /// [`mark_clean`](Self::mark_clean) — the tree as a delta (mutated +
    /// appended nodes only), the small detector aggregates re-encoded
    /// whole (they are O(locks + sites), not O(tree)). Deterministic like
    /// [`encode_state`](Self::encode_state). Applying the result with
    /// [`apply_state_delta`](Self::apply_state_delta) onto a hive in the
    /// base state reproduces this hive's `encode_state` bytes exactly.
    pub fn encode_state_delta(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u8(&mut buf, 1); // delta-format version
        let mut tree_delta = Vec::new();
        self.tree.encode_delta_into(&mut tree_delta);
        codec::put_bytes(&mut buf, &tree_delta);
        self.lock_graph.encode_into(&mut buf);
        self.races.encode_into(&mut buf);
        self.ledger.encode_into(&mut buf);
        codec::put_u32(&mut buf, self.overlay_history.len() as u32);
        for o in &self.overlay_history {
            o.encode_into(&mut buf);
        }
        codec::put_u32(&mut buf, self.fixed.len() as u32);
        for sig in &self.fixed {
            codec::put_str(&mut buf, sig);
        }
        codec::put_u64(&mut buf, self.stats.traces);
        codec::put_u64(&mut buf, self.stats.reconstructed);
        codec::put_u64(&mut buf, self.stats.unreconstructed);
        codec::put_u64(&mut buf, self.stats.new_nodes);
        buf
    }

    /// Applies a delta written by
    /// [`encode_state_delta`](Self::encode_state_delta). The hive must be
    /// at the delta's base state (the chain loader guarantees ordering);
    /// afterwards the tree is clean at the delta's head.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input or when the delta does
    /// not chain onto this hive's state (wrong program or base — surfaced
    /// as `BadTag` on `TreeDelta.*`). On error the hive may be partially
    /// patched; callers discard it and fall back.
    pub fn apply_state_delta(&mut self, bytes: &[u8]) -> Result<(), CodecError> {
        let mut r = codec::Reader::new(bytes);
        let version = r.u8("HiveDelta.version")?;
        if version != 1 {
            return Err(CodecError::BadTag {
                what: "HiveDelta.version",
                tag: version,
            });
        }
        let tree_delta = r.bytes("HiveDelta.tree")?;
        self.tree
            .apply_delta(&mut codec::Reader::new(tree_delta))
            .map_err(|e| match e {
                softborg_tree::DeltaError::Codec(c) => c,
                softborg_tree::DeltaError::ProgramMismatch { .. } => CodecError::BadTag {
                    what: "TreeDelta.program",
                    tag: 1,
                },
                softborg_tree::DeltaError::BaseMismatch { .. } => CodecError::BadTag {
                    what: "TreeDelta.base",
                    tag: 2,
                },
            })?;
        self.lock_graph = LockOrderGraph::decode(&mut r)?;
        self.races = RaceDetector::decode(&mut r)?;
        self.ledger = FailureLedger::decode(&mut r)?;
        let n_overlays = r.seq_len("HiveDelta.overlay_history", 16)?;
        let mut overlay_history = Vec::with_capacity(n_overlays.max(1));
        for _ in 0..n_overlays {
            overlay_history.push(Overlay::decode(&mut r)?);
        }
        if overlay_history.is_empty() {
            overlay_history.push(Overlay::empty());
        }
        self.overlay_history = overlay_history;
        let n_fixed = r.seq_len("HiveDelta.fixed", 4)?;
        let mut fixed = BTreeSet::new();
        for _ in 0..n_fixed {
            fixed.insert(r.str("HiveDelta.fixed_sig")?.to_string());
        }
        self.fixed = fixed;
        self.stats = HiveStats {
            traces: r.u64("HiveStats.traces")?,
            reconstructed: r.u64("HiveStats.reconstructed")?,
            unreconstructed: r.u64("HiveStats.unreconstructed")?,
            new_nodes: r.u64("HiveStats.new_nodes")?,
        };
        Ok(())
    }

    /// Forgets tree change tracking: the current state becomes the base
    /// the next [`encode_state_delta`](Self::encode_state_delta)
    /// describes. The durability layer calls this right after persisting
    /// a snapshot (full or delta).
    pub fn mark_clean(&mut self) {
        self.tree.mark_clean();
    }

    /// Moves the tree arena behind budget-bounded paged storage (see
    /// [`ExecutionTree::enable_paging`]). Logical state is unchanged, so
    /// snapshots, digests, and guidance are byte-identical with paging on
    /// or off.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the page directory.
    pub fn enable_tree_paging(&mut self, cfg: softborg_store::PagedConfig) -> std::io::Result<()> {
        self.tree.enable_paging(cfg)
    }

    /// Rebuilds a hive from [`encode_state`](Self::encode_state) bytes.
    /// The caller supplies the program and config (they are identity, not
    /// state); whether the bytes actually belong to `program` is checked
    /// by comparing the embedded tree's program id.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input, an
    /// unknown state-format version, or a program-id mismatch.
    pub fn decode_state(
        program: &'p Program,
        config: HiveConfig,
        bytes: &[u8],
    ) -> Result<Self, CodecError> {
        let mut r = codec::Reader::new(bytes);
        let version = r.u8("Hive.state_version")?;
        if version != 1 {
            return Err(CodecError::BadTag {
                what: "Hive.state_version",
                tag: version,
            });
        }
        let tree = ExecutionTree::decode(&mut r)?;
        if tree.program() != program.id() {
            return Err(CodecError::BadTag {
                what: "Hive.program_id",
                tag: 0,
            });
        }
        let lock_graph = LockOrderGraph::decode(&mut r)?;
        let races = RaceDetector::decode(&mut r)?;
        let ledger = FailureLedger::decode(&mut r)?;
        let n_overlays = r.seq_len("Hive.overlay_history", 16)?;
        let mut overlay_history = Vec::with_capacity(n_overlays.max(1));
        for _ in 0..n_overlays {
            overlay_history.push(Overlay::decode(&mut r)?);
        }
        if overlay_history.is_empty() {
            overlay_history.push(Overlay::empty());
        }
        let n_fixed = r.seq_len("Hive.fixed", 4)?;
        let mut fixed = BTreeSet::new();
        for _ in 0..n_fixed {
            fixed.insert(r.str("Hive.fixed_sig")?.to_string());
        }
        let stats = HiveStats {
            traces: r.u64("HiveStats.traces")?,
            reconstructed: r.u64("HiveStats.reconstructed")?,
            unreconstructed: r.u64("HiveStats.unreconstructed")?,
            new_nodes: r.u64("HiveStats.new_nodes")?,
        };
        Ok(Hive {
            deps: InputDependence::compute(program),
            tree,
            lock_graph,
            races,
            ledger,
            overlay_history,
            fixed,
            stats,
            program,
            config,
        })
    }
}

/// A stable signature for a diagnosis (used to avoid re-fixing modes).
pub fn diagnosis_signature(d: &Diagnosis) -> String {
    match d.class.as_str() {
        "crash" => format!("crash:{:?}:{:?}", d.loc, d.kind),
        "deadlock" => format!("lock-cycle:{:?}", d.locks),
        "hang" => format!("hang:{:?}", d.stuck),
        other => format!("{other}:?"),
    }
}

/// The signature an [`softborg_program::interp::Outcome`] maps to —
/// consistent with [`diagnosis_signature`], so failing test cases can be
/// matched to the fix proposal that targets their mode.
pub fn outcome_signature(o: &softborg_program::interp::Outcome) -> Option<String> {
    use softborg_program::interp::Outcome;
    match o {
        Outcome::Success => None,
        Outcome::Crash { loc, kind } => Some(format!("crash:{:?}:{:?}", Some(*loc), Some(*kind))),
        Outcome::Deadlock { cycle } => {
            let mut locks: Vec<_> = cycle.iter().map(|(_, l)| *l).collect();
            locks.sort();
            locks.dedup();
            Some(format!("lock-cycle:{locks:?}"))
        }
        Outcome::Hang { stuck } => Some(format!("hang:{stuck:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_pod::{Pod, PodConfig};
    use softborg_program::scenarios;

    fn feed(hive: &mut Hive<'_>, pod: &mut Pod<'_>, n: u32) {
        for _ in 0..n {
            let run = pod.run_once();
            hive.ingest(&run.trace);
        }
    }

    #[test]
    fn ingest_reconstructs_and_grows_tree() {
        let s = scenarios::token_parser();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 1,
                ..PodConfig::default()
            },
        );
        feed(&mut hive, &mut pod, 50);
        let st = hive.stats();
        assert_eq!(st.traces, 50);
        assert_eq!(st.reconstructed, 50);
        assert!(hive.coverage().nodes > 1);
        assert!(hive.coverage().distinct_paths > 1);
    }

    #[test]
    fn crash_mode_produces_guard_proposals() {
        let s = scenarios::token_parser();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 2,
                ..PodConfig::default()
            },
        );
        // Force the crash via a directed seed.
        pod.receive_guidance([softborg_guidance::Directive::InputSeed {
            inputs: vec![1, 2, 3, 4, 85, 66],
            target: (softborg_program::BranchSiteId::new(0), false),
        }]);
        feed(&mut hive, &mut pod, 10);
        let proposals = hive.propose_fixes();
        assert!(
            proposals.iter().any(|p| p.signature.starts_with("crash:")),
            "no crash proposal in {proposals:?}"
        );
    }

    #[test]
    fn deadlock_predicted_and_proposed_before_any_deadlock_outcome() {
        let s = scenarios::bank_transfer();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 3,
                ..PodConfig::default()
            },
        );
        // Run until we have lock pairs from both orders but filter out
        // any actual deadlock traces to prove *prediction*.
        let mut fed = 0;
        for _ in 0..200 {
            let run = pod.run_once();
            if !run.trace.is_failure() {
                hive.ingest(&run.trace);
                fed += 1;
            }
        }
        assert!(fed > 0);
        let proposals = hive.propose_fixes();
        assert!(
            proposals
                .iter()
                .any(|p| p.signature.starts_with("lock-cycle:")),
            "cycle not predicted from passing traces alone"
        );
    }

    #[test]
    fn promote_bumps_version_and_stops_reproposing() {
        let s = scenarios::bank_transfer();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 4,
                ..PodConfig::default()
            },
        );
        feed(&mut hive, &mut pod, 100);
        let proposals = hive.propose_fixes();
        let cycle = proposals
            .iter()
            .find(|p| p.signature.starts_with("lock-cycle:"))
            .expect("cycle proposal");
        let v = hive.promote(&cycle.signature, &cycle.candidates[0]);
        assert_eq!(v, 1);
        assert_eq!(hive.current_overlay().1, 1);
        assert!(!hive.current_overlay().0.is_empty());
        let again = hive.propose_fixes();
        assert!(
            !again.iter().any(|p| p.signature == cycle.signature),
            "promoted mode must not be re-proposed"
        );
    }

    #[test]
    fn traces_from_old_overlay_versions_still_reconstruct() {
        let s = scenarios::token_parser();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 5,
                ..PodConfig::default()
            },
        );
        // Version 0 traces.
        let v0_runs: Vec<_> = (0..5).map(|_| pod.run_once()).collect();
        // Promote a (noop-ish) fix to bump the version.
        let loc = softborg_program::gen::find_assert_loc(&s.program, 66).unwrap();
        let cand = &crash_guards(&s.program, loc)[0];
        hive.promote("crash:test", cand);
        // Old traces still merge.
        for r in &v0_runs {
            hive.ingest(&r.trace);
        }
        assert_eq!(hive.stats().reconstructed, 5);
        // New traces under version 1 also merge.
        let (overlay, v) = hive.current_overlay();
        let overlay = overlay.clone();
        pod.install_fix(overlay, v);
        let run = pod.run_once();
        hive.ingest(&run.trace);
        assert_eq!(hive.stats().reconstructed, 6);
    }

    #[test]
    fn state_codec_roundtrips_a_live_hive() {
        let s = scenarios::bank_transfer();
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 11,
                ..PodConfig::default()
            },
        );
        feed(&mut hive, &mut pod, 100);
        if let Some(cycle) = hive
            .propose_fixes()
            .iter()
            .find(|p| p.signature.starts_with("lock-cycle:"))
        {
            hive.promote(&cycle.signature, &cycle.candidates[0]);
        }
        let _ = hive.guidance(); // mutates the tree (infeasible marks)
        let bytes = hive.encode_state();
        let mut back =
            Hive::decode_state(&s.program, HiveConfig::default(), &bytes).expect("decode");
        assert_eq!(back.encode_state(), bytes, "re-encode is byte-identical");
        assert_eq!(back.stats(), hive.stats());
        assert_eq!(back.tree().digest(), hive.tree().digest());
        assert_eq!(back.current_overlay(), hive.current_overlay());
        assert_eq!(back.proofs().len(), hive.proofs().len());
        // The decoded hive is *live*: identical further ingest keeps the
        // two states byte-identical.
        let run = pod.run_once();
        hive.ingest(&run.trace);
        back.ingest(&run.trace);
        assert_eq!(back.encode_state(), hive.encode_state());
    }

    #[test]
    fn state_codec_rejects_wrong_program_and_truncation() {
        let a = scenarios::token_parser();
        let b = scenarios::bank_transfer();
        let hive = Hive::new(&a.program, HiveConfig::default());
        let bytes = hive.encode_state();
        assert!(Hive::decode_state(&b.program, HiveConfig::default(), &bytes).is_err());
        for cut in 0..bytes.len() {
            assert!(
                Hive::decode_state(&a.program, HiveConfig::default(), &bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn guidance_plans_come_from_the_tree() {
        let s = scenarios::token_parser();
        let mut hive = Hive::new(
            &s.program,
            HiveConfig {
                planner: PlannerConfig {
                    sym: softborg_symex::SymConfig {
                        input_box: softborg_symex::InputBox::uniform(6, 0, 99),
                        ..softborg_symex::SymConfig::default()
                    },
                    ..PlannerConfig::default()
                },
                ..HiveConfig::default()
            },
        );
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 6,
                ..PodConfig::default()
            },
        );
        feed(&mut hive, &mut pod, 30);
        let before = hive.coverage().frontier_arms;
        assert!(before > 0);
        let (plan, stats) = hive.guidance();
        assert!(
            !plan.is_empty() || stats.infeasible_marked > 0,
            "planner produced nothing: {stats:?}"
        );
    }
}
