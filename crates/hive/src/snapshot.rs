//! Checksummed hive snapshots with atomic swap and torn-write fallback.
//!
//! A durable campaign's write-ahead journal grows without bound; once it
//! dwarfs the live hive state, recovery time and disk usage are wasted
//! on history the state already summarizes. Compaction fixes that:
//! serialize the hive (tree, proofs, outcome labels, session table) into
//! one checksummed, length-prefixed record, swap it into place
//! atomically, and truncate the journal.
//!
//! The swap is crash-safe at every byte:
//!
//! 1. write `hive.snap.tmp`, `fsync` it, `fsync` the directory;
//! 2. rename `hive.snap` → `hive.snap.prev` (keeping one generation of
//!    fallback);
//! 3. rename `hive.snap.tmp` → `hive.snap`, `fsync` the directory;
//! 4. (caller) truncate the journal.
//!
//! Recovery loads the newest snapshot whose checksum verifies — falling
//! back to `hive.snap.prev` if `hive.snap` is torn — then replays the
//! journal suffix. A crash *between step 3 and step 4* leaves a journal
//! that still contains records the snapshot already covers; the snapshot
//! records the covered length and a hash of that prefix
//! ([`HiveSnapshot::wal_covered`] / [`HiveSnapshot::wal_covered_hash`])
//! so [`HiveSnapshot::replay_offset`] can tell "journal not yet
//! truncated" apart from "journal truncated and regrown".

use crate::journal::{fsync_parent_dir, JournalIoError};
use softborg_program::codec::{self, CodecError};
use softborg_trace::wire;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix identifying a snapshot file (version in the last byte).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SBSNAP\x00\x01";

/// Everything a process needs to resume a durable campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HiveSnapshot {
    /// The hive's serialized state (`Hive::encode_state`).
    pub state: Vec<u8>,
    /// Per-session dedup floors (`session → next expected seq`), so
    /// transport retransmits across the restart are recognized.
    pub sessions: BTreeMap<u64, u64>,
    /// Journal bytes this snapshot covers: on recovery, replay starts
    /// after this offset *if* the journal's prefix still matches
    /// [`wal_covered_hash`](Self::wal_covered_hash).
    pub wal_covered: u64,
    /// FNV-1a hash of the covered journal prefix at snapshot time.
    pub wal_covered_hash: u64,
    /// Application metadata (the platform stores its round counter and
    /// encoded round history here).
    pub app_meta: Vec<u8>,
}

impl HiveSnapshot {
    /// Serializes the snapshot into its on-disk record:
    /// `magic | u32 body_len | u64 fnv1a(body) | body`.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        codec::put_bytes(&mut body, &self.state);
        codec::put_u32(&mut body, self.sessions.len() as u32);
        for (&session, &floor) in &self.sessions {
            codec::put_u64(&mut body, session);
            codec::put_u64(&mut body, floor);
        }
        codec::put_u64(&mut body, self.wal_covered);
        codec::put_u64(&mut body, self.wal_covered_hash);
        codec::put_bytes(&mut body, &self.app_meta);
        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 12 + body.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        codec::put_u32(&mut out, body.len() as u32);
        codec::put_u64(&mut out, wire::fnv1a(&body));
        out.extend_from_slice(&body);
        out
    }

    /// Decodes and checksum-verifies an on-disk snapshot record. Total
    /// function: torn, truncated, bit-flipped, or trailing-garbage input
    /// returns an error, never panics.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] describing the first violation found.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 12 {
            return Err(CodecError::Truncated {
                what: "snapshot.header",
            });
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(CodecError::BadTag {
                what: "snapshot.magic",
                tag: bytes[0],
            });
        }
        let mut r = codec::Reader::new(&bytes[SNAPSHOT_MAGIC.len()..]);
        let body_len = r.u32("snapshot.body_len")? as usize;
        let checksum = r.u64("snapshot.checksum")?;
        if r.remaining() != body_len {
            return Err(CodecError::BadLen {
                what: "snapshot.body",
                len: r.remaining(),
            });
        }
        let body = &bytes[SNAPSHOT_MAGIC.len() + 12..];
        if wire::fnv1a(body) != checksum {
            return Err(CodecError::BadTag {
                what: "snapshot.checksum",
                tag: 0,
            });
        }
        let mut r = codec::Reader::new(body);
        let state = r.bytes("snapshot.state")?.to_vec();
        let n = r.seq_len("snapshot.sessions", 16)?;
        let mut sessions = BTreeMap::new();
        for _ in 0..n {
            let session = r.u64("snapshot.session")?;
            sessions.insert(session, r.u64("snapshot.floor")?);
        }
        let wal_covered = r.u64("snapshot.wal_covered")?;
        let wal_covered_hash = r.u64("snapshot.wal_covered_hash")?;
        let app_meta = r.bytes("snapshot.app_meta")?.to_vec();
        if !r.is_empty() {
            return Err(CodecError::BadLen {
                what: "snapshot.trailing",
                len: r.remaining(),
            });
        }
        Ok(HiveSnapshot {
            state,
            sessions,
            wal_covered,
            wal_covered_hash,
            app_meta,
        })
    }

    /// Where journal replay should start given the journal image found
    /// on disk: after the covered prefix when that prefix is still in
    /// place (crash before the post-snapshot truncate), else from byte 0
    /// (the journal was truncated and everything in it is newer than
    /// this snapshot).
    pub fn replay_offset(&self, wal: &[u8]) -> usize {
        let covered = self.wal_covered as usize;
        if wal.len() >= covered && wire::fnv1a(&wal[..covered]) == self.wal_covered_hash {
            covered
        } else {
            0
        }
    }
}

/// Where a loaded snapshot came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotSource {
    /// `hive.snap` verified.
    Primary,
    /// `hive.snap` was torn or missing; `hive.snap.prev` verified.
    Fallback,
    /// Neither file yielded a valid snapshot: cold start.
    None,
}

/// What [`SnapshotStore::load`] found, for recovery observability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// Which file supplied the snapshot.
    pub source: SnapshotSource,
    /// Why `hive.snap` was rejected, if it was.
    pub primary_error: Option<String>,
    /// Why `hive.snap.prev` was rejected, if it was.
    pub fallback_error: Option<String>,
}

/// A directory holding one campaign's durable files: `hive.snap`,
/// `hive.snap.prev`, `hive.snap.tmp`, and (by convention, owned by the
/// caller) the `hive.wal` journal.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
}

impl SnapshotStore {
    /// Opens (creating if needed) the durability directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(SnapshotStore { dir })
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the current snapshot.
    pub fn snap_path(&self) -> PathBuf {
        self.dir.join("hive.snap")
    }

    /// Path of the previous-generation fallback snapshot.
    pub fn prev_path(&self) -> PathBuf {
        self.dir.join("hive.snap.prev")
    }

    /// Path of the in-flight temporary used by the atomic swap.
    pub fn tmp_path(&self) -> PathBuf {
        self.dir.join("hive.snap.tmp")
    }

    /// Conventional path of the write-ahead journal next to the
    /// snapshots.
    pub fn wal_path(&self) -> PathBuf {
        self.dir.join("hive.wal")
    }

    /// Writes `snap` with the full crash-safe swap: temp file, fsync,
    /// directory fsync, generation rename, final rename, directory
    /// fsync. After this returns, `hive.snap` is the new snapshot and
    /// `hive.snap.prev` is the previous one (if any). The caller
    /// truncates the journal *after* this returns. Returns the encoded
    /// record size in bytes (the checkpoint's write amplification).
    ///
    /// # Errors
    ///
    /// Returns a typed [`JournalIoError`] naming the failed operation;
    /// on error the previous `hive.snap`/`hive.snap.prev` pair is still
    /// loadable (the swap never overwrites in place).
    pub fn write_snapshot(&self, snap: &HiveSnapshot) -> Result<u64, JournalIoError> {
        let bytes = snap.encode();
        let tmp = self.tmp_path();
        let io = |op: &'static str| move |e: std::io::Error| JournalIoError::from_io(op, &e);
        let mut f = fs::File::create(&tmp).map_err(io("snapshot-create"))?;
        f.write_all(&bytes).map_err(io("snapshot-write"))?;
        f.sync_all().map_err(io("snapshot-fsync"))?;
        drop(f);
        fsync_parent_dir(&tmp).map_err(io("snapshot-dir-fsync"))?;
        let snap_path = self.snap_path();
        if snap_path.exists() {
            fs::rename(&snap_path, self.prev_path()).map_err(io("snapshot-rotate"))?;
        }
        fs::rename(&tmp, &snap_path).map_err(io("snapshot-rename"))?;
        fsync_parent_dir(&snap_path).map_err(io("snapshot-dir-fsync"))?;
        Ok(bytes.len() as u64)
    }

    /// Loads the newest valid snapshot: `hive.snap` first, then the
    /// `hive.snap.prev` fallback if the primary is torn or missing.
    /// Every rejection is recorded in the report — a torn primary is
    /// survivable but never silent.
    pub fn load(&self) -> (Option<HiveSnapshot>, LoadReport) {
        let mut report = LoadReport {
            source: SnapshotSource::None,
            primary_error: None,
            fallback_error: None,
        };
        match Self::load_file(&self.snap_path()) {
            Ok(Some(snap)) => {
                report.source = SnapshotSource::Primary;
                return (Some(snap), report);
            }
            Ok(None) => {}
            Err(e) => report.primary_error = Some(e),
        }
        match Self::load_file(&self.prev_path()) {
            Ok(Some(snap)) => {
                report.source = SnapshotSource::Fallback;
                (Some(snap), report)
            }
            Ok(None) => (None, report),
            Err(e) => {
                report.fallback_error = Some(e);
                (None, report)
            }
        }
    }

    /// `Ok(None)` = file absent (not an error); `Err` = present but
    /// unreadable or failing verification.
    fn load_file(path: &Path) -> Result<Option<HiveSnapshot>, String> {
        let bytes = match fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        HiveSnapshot::decode(&bytes)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HiveSnapshot {
        let wal = b"journal-prefix-bytes".to_vec();
        HiveSnapshot {
            state: vec![1, 2, 3, 4, 5],
            sessions: [(0u64, 7u64), (3, 2)].into_iter().collect(),
            wal_covered: wal.len() as u64,
            wal_covered_hash: wire::fnv1a(&wal),
            app_meta: b"meta".to_vec(),
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("softborg-snap-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn encode_decode_roundtrip_and_reject_every_corruption() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(HiveSnapshot::decode(&bytes).expect("decode"), snap);
        // Truncation at every cut point fails cleanly.
        for cut in 0..bytes.len() {
            assert!(HiveSnapshot::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // A bit flip anywhere fails cleanly (checksum or header check).
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(HiveSnapshot::decode(&bad).is_err(), "flip at {i}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(HiveSnapshot::decode(&padded).is_err());
    }

    #[test]
    fn replay_offset_distinguishes_untruncated_from_regrown_wal() {
        let wal = b"journal-prefix-bytes".to_vec();
        let snap = sample();
        // Crash before truncate: covered prefix intact, suffix appended.
        let mut untruncated = wal.clone();
        untruncated.extend_from_slice(b"suffix");
        assert_eq!(snap.replay_offset(&untruncated), wal.len());
        assert_eq!(snap.replay_offset(&wal), wal.len());
        // Truncated and regrown: prefix differs -> replay everything.
        let regrown = b"completely-different-fresh-log!!".to_vec();
        assert_eq!(snap.replay_offset(&regrown), 0);
        // Truncated to empty -> shorter than covered -> replay from 0.
        assert_eq!(snap.replay_offset(b""), 0);
    }

    #[test]
    fn store_swap_keeps_previous_generation_and_load_prefers_newest() {
        let dir = tmpdir("swap");
        let store = SnapshotStore::open(&dir).expect("open");
        let mut first = sample();
        first.app_meta = b"gen-1".to_vec();
        store.write_snapshot(&first).expect("write 1");
        let (got, rep) = store.load();
        assert_eq!(rep.source, SnapshotSource::Primary);
        assert_eq!(got.expect("snap").app_meta, b"gen-1");
        let mut second = sample();
        second.app_meta = b"gen-2".to_vec();
        store.write_snapshot(&second).expect("write 2");
        let (got, rep) = store.load();
        assert_eq!(rep.source, SnapshotSource::Primary);
        assert_eq!(got.expect("snap").app_meta, b"gen-2");
        // The previous generation is retained as the fallback.
        let prev = fs::read(store.prev_path()).expect("prev exists");
        assert_eq!(
            HiveSnapshot::decode(&prev).expect("prev").app_meta,
            b"gen-1"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_primary_falls_back_to_previous_snapshot_with_report() {
        let dir = tmpdir("torn");
        let store = SnapshotStore::open(&dir).expect("open");
        let mut first = sample();
        first.app_meta = b"gen-1".to_vec();
        store.write_snapshot(&first).expect("write 1");
        let mut second = sample();
        second.app_meta = b"gen-2".to_vec();
        store.write_snapshot(&second).expect("write 2");
        // Tear the primary: keep only half its bytes.
        let full = fs::read(store.snap_path()).expect("read");
        fs::write(store.snap_path(), &full[..full.len() / 2]).expect("tear");
        let (got, rep) = store.load();
        assert_eq!(rep.source, SnapshotSource::Fallback);
        assert!(rep.primary_error.is_some(), "torn primary is reported");
        assert_eq!(got.expect("fallback").app_meta, b"gen-1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cold_start_and_doubly_torn_store_report_cleanly() {
        let dir = tmpdir("cold");
        let store = SnapshotStore::open(&dir).expect("open");
        let (got, rep) = store.load();
        assert!(got.is_none());
        assert_eq!(rep.source, SnapshotSource::None);
        assert_eq!(rep.primary_error, None, "absent files are not errors");
        // Both generations corrupt -> None, with both rejections named.
        fs::write(store.snap_path(), b"garbage").expect("write");
        fs::write(store.prev_path(), b"more garbage").expect("write");
        let (got, rep) = store.load();
        assert!(got.is_none());
        assert!(rep.primary_error.is_some() && rep.fallback_error.is_some());
        let _ = fs::remove_dir_all(&dir);
    }
}
