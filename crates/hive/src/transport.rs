//! Reliable pod→hive transport: ack/retry/backoff sessions over the
//! network simulator, feeding the staged ingest pipeline through the
//! write-ahead journal.
//!
//! The paper's hive is "mostly end-user machines communicating over a
//! potentially unreliable network" (§4). This module is the layer that
//! makes ingest survive that network:
//!
//! * A [`PodClient`] owns one *session*: it assigns per-session
//!   monotonic sequence numbers to its batch frames, sends a go-back-N
//!   window, retransmits on ack timeout with capped exponential backoff
//!   plus deterministic jitter, and honors explicit hive backpressure —
//!   a `Busy` nack slows it down, and after a pressure budget it sheds
//!   its lowest-priority frames (as *tombstones*, so the sequence space
//!   stays contiguous and cumulative acks keep working).
//! * A [`HiveServer`] accepts in-order frames, appends them to the
//!   write-ahead journal ([`crate::journal`]), and acks **only after the
//!   journal sync barrier** — so an acked frame is always recoverable.
//!   Redelivered frames (network duplicates or retransmits racing acks)
//!   are deduplicated by `(session, seq)` and re-acked; out-of-order
//!   frames are answered with the current cumulative ack so the sender
//!   rewinds. On a scheduled crash the server loses its volatile state
//!   (sessions, unsynced journal tail) and rebuilds from the synced
//!   journal prefix on restart.
//! * [`run_reliable_ingest`] wires both into a live
//!   [`Hive::ingest_frames`] pipeline: the server node *is* the
//!   producer, submitting each frame to the merger at the moment its
//!   journal record is synced, in journal order.
//!
//! The end-to-end invariant (exercised by `tests/transport_fault.rs`):
//! under any fault plan the hive's final state, the journal replay
//! ([`Hive::recover`]), and a fault-free serial ingest of the delivered
//! traces all agree.

use crate::hive::Hive;
use crate::journal::{self, JournalIoError, JournalStore, MemJournal, REC_FRAME, REC_TOMBSTONE};
use softborg_ingest::{BackpressurePolicy, FrameSender, IngestConfig, IngestStats};
use softborg_netsim::{
    Addr, Ctx, FaultPlan, FaultPlanError, LinkConfig, NetNode, Sim, SimConfig, SimStats,
};
use softborg_obs::{EventSink, ObsHandles, Severity};
use softborg_trace::wire;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Message tag: a data frame (or tombstone) from pod to hive.
const MSG_DATA: u8 = 0;
/// Message tag: a cumulative ack from hive to pod.
const MSG_ACK: u8 = 1;
/// Message tag: a backpressure nack from hive to pod.
const MSG_BUSY: u8 = 2;

/// The server's sync-tick timer tag (clients tag timers with epochs).
const TICK_TAG: u64 = u64::MAX;

/// Hard cap on the exponential backoff shift.
const MAX_BACKOFF_EXP: u32 = 16;

fn data_msg(kind: u8, session: u64, seq: u64, frame: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(18 + frame.len());
    v.push(MSG_DATA);
    v.push(kind);
    v.extend_from_slice(&session.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(frame);
    v
}

fn ctl_msg(tag: u8, session: u64, value: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(17);
    v.push(tag);
    v.extend_from_slice(&session.to_le_bytes());
    v.extend_from_slice(&value.to_le_bytes());
    v
}

fn parse_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

/// Counters shared by every node in one transport run.
#[derive(Debug, Default)]
struct Metrics {
    delivered: u64,
    tombstones: u64,
    duplicates: u64,
    retransmits: u64,
    busy_nacks: u64,
    shed: u64,
    recoveries: u64,
    sessions_done: u64,
    recovery_tail_dropped: u64,
    journal_error: Option<JournalIoError>,
}

/// A deliberately injectable platform bug, for exercising the fault
/// search's find-and-shrink path end to end (`softborg-search`). Each
/// canary is a real bug class this transport's invariants exist to
/// prevent, reintroduced behind a config flag: with `canary: None`
/// (the default) the code path is byte-for-byte the correct protocol,
/// and every canary is *dormant until a server crash* — a fault-free
/// run behaves identically, so the search's fault-free baseline stays
/// valid and any minimal reproducer must contain a crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanaryBug {
    /// On restart, skip rebuilding the session dedup floors from the
    /// synced journal. The recovered server insists on `seq 0` while
    /// every client is already past it and ignores the stale ack —
    /// sessions that had acked progress livelock and the run never
    /// completes (and early-crash sessions double-ingest).
    SkipFloorReseed,
    /// Ack a frame the moment it is accepted, before the journal sync
    /// barrier. A crash between accept and sync loses the frame, but
    /// the client — already acked — never retransmits it: a silent
    /// drop that still reports a completed run.
    AckBeforeSync,
    /// Rebuild recovery floors one frame too high. The client's
    /// retransmit of the frame *at* the true floor is "deduplicated"
    /// without ever having been journaled or merged: one frame
    /// silently vanishes per recovered session.
    FloorOffByOne,
}

impl CanaryBug {
    /// Every canary, for sweeps over the whole set.
    pub const ALL: [CanaryBug; 3] = [
        CanaryBug::SkipFloorReseed,
        CanaryBug::AckBeforeSync,
        CanaryBug::FloorOffByOne,
    ];

    /// Stable identifier (CLI flags, corpus entries, bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            CanaryBug::SkipFloorReseed => "skip_floor_reseed",
            CanaryBug::AckBeforeSync => "ack_before_sync",
            CanaryBug::FloorOffByOne => "floor_off_by_one",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<CanaryBug> {
        CanaryBug::ALL.into_iter().find(|c| c.name() == s)
    }
}

impl std::fmt::Display for CanaryBug {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Transport tuning knobs. Network behaviour (latency, loss, duplication,
/// reordering, partitions, server crashes) lives in `link` and `faults`;
/// the rest parameterizes the session protocol itself.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Link model between every pair of nodes.
    pub link: LinkConfig,
    /// Injected faults. Node addresses: pods are `0..n_pods`, the hive
    /// server is `n_pods`. Only the server tolerates being crash
    /// scheduled (pods model end-user machines that simply stop).
    pub faults: FaultPlan,
    /// Base ack timeout before the first retransmit (µs).
    pub ack_timeout_us: u64,
    /// Cap on the exponentially backed-off retransmit delay (µs).
    pub max_backoff_us: u64,
    /// Go-back-N window: unacked frames in flight per session.
    pub window: u64,
    /// Server backlog budget: unsynced journal records it accepts before
    /// answering `Busy`.
    pub busy_budget: usize,
    /// Client pressure events (timeouts + `Busy` nacks) tolerated before
    /// one lowest-priority frame is shed. `u32::MAX` disables shedding.
    pub shed_budget: u32,
    /// Journal fsync-batching interval (µs): accepted frames are synced,
    /// submitted to the pipeline, and acked at this cadence.
    pub sync_interval_us: u64,
    /// Safety cap on simulated events.
    pub max_events: u64,
    /// Injected platform bug for fault-search canary testing
    /// ([`CanaryBug`]). `None` (the default) is the correct protocol.
    pub canary: Option<CanaryBug>,
    /// Telemetry sinks: session/server flight-recorder events
    /// (`transport.client.<n>` / `transport.server` sources) and
    /// post-run `transport.*` registry counters. Default records
    /// nothing; recovery warnings then fall back to the process-wide
    /// ops recorder so they are never silently lost.
    pub obs: ObsHandles,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            seed: 0,
            link: LinkConfig::default(),
            faults: FaultPlan::default(),
            ack_timeout_us: 30_000,
            max_backoff_us: 1_000_000,
            window: 8,
            busy_budget: 64,
            shed_budget: u32::MAX,
            sync_interval_us: 5_000,
            max_events: 4_000_000,
            canary: None,
            obs: ObsHandles::default(),
        }
    }
}

/// What one reliable-ingest run did.
#[derive(Debug, Clone)]
pub struct TransportReport {
    /// Every session delivered (or shed) its whole frame sequence and
    /// saw it acked.
    pub completed: bool,
    /// Frames accepted first-time by the server (journaled as frames).
    pub delivered: u64,
    /// Tombstoned slots accepted (frames shed by clients).
    pub tombstones: u64,
    /// Redeliveries discarded by `(session, seq)` dedup.
    pub duplicates: u64,
    /// Client retransmissions (frames sent more than once).
    pub retransmits: u64,
    /// `Busy` nacks the server sent under backlog pressure.
    pub busy_nacks: u64,
    /// Frames clients shed after exhausting the pressure budget.
    pub shed: u64,
    /// Frames covered by the synced journal (== acked, by the
    /// ack-after-sync invariant).
    pub acked: u64,
    /// Server crash→restart recoveries performed.
    pub recoveries: u64,
    /// Journal sync barriers issued (fsync batches).
    pub journal_syncs: u64,
    /// Journal bytes dropped by crashes (accepted but never synced, so
    /// never acked — clients retransmitted them).
    pub journal_lost_bytes: u64,
    /// Unsynced/corrupt journal-tail bytes the server discarded while
    /// rebuilding session floors after crashes. Never silently dropped:
    /// each recovery that discards a tail also logs a warning line.
    pub recovery_tail_dropped: u64,
    /// First fatal journal I/O error (e.g. `ENOSPC`) the server hit, if
    /// any. Affected frames were refused (nacked `Busy`), never acked.
    pub journal_error: Option<JournalIoError>,
    /// The synced journal at the end of the run — feed it to
    /// [`Hive::recover`] to rebuild the hive from scratch.
    pub journal: Vec<u8>,
    /// Network-level counters.
    pub net: SimStats,
}

struct OutFrame {
    priority: u8,
    bytes: Vec<u8>,
    shed: bool,
}

/// The pod side of one ingest session: a netsim node that reliably
/// streams pre-encoded batch frames to the hive server.
pub struct PodClient {
    server: Addr,
    session: u64,
    frames: Vec<OutFrame>,
    /// Cumulative ack received: all `seq < base` are durable at the hive.
    base: u64,
    /// High-water mark of sequences ever sent (for retransmit counting).
    sent_upto: u64,
    window: u64,
    ack_timeout_us: u64,
    max_backoff_us: u64,
    backoff_exp: u32,
    /// Timer-generation tag: a fired timer with a stale epoch is ignored.
    epoch: u64,
    pressure: u32,
    shed_budget: u32,
    done: bool,
    metrics: Rc<RefCell<Metrics>>,
    events: EventSink,
}

impl PodClient {
    /// Creates the client for session `session` (by convention also its
    /// node address), streaming `frames` as `(priority, encoded batch)`
    /// pairs. Higher priority values survive shedding longer.
    pub fn new(
        session: u64,
        server: Addr,
        frames: Vec<(u8, Vec<u8>)>,
        cfg: &TransportConfig,
    ) -> Self {
        PodClient {
            server,
            session,
            frames: frames
                .into_iter()
                .map(|(priority, bytes)| OutFrame {
                    priority,
                    bytes,
                    shed: false,
                })
                .collect(),
            base: 0,
            sent_upto: 0,
            window: cfg.window.max(1),
            ack_timeout_us: cfg.ack_timeout_us.max(1),
            max_backoff_us: cfg.max_backoff_us.max(cfg.ack_timeout_us),
            backoff_exp: 0,
            epoch: 0,
            pressure: 0,
            shed_budget: cfg.shed_budget,
            done: false,
            metrics: Rc::new(RefCell::new(Metrics::default())),
            events: cfg
                .obs
                .recorder
                .source(&format!("transport.client.{session}")),
        }
    }

    fn with_metrics(mut self, metrics: Rc<RefCell<Metrics>>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Current retransmit delay: capped exponential backoff plus a
    /// deterministic jitter drawn from the session and epoch (no shared
    /// RNG — two clients never sync their retry storms).
    fn rto(&self) -> u64 {
        let backed = self
            .ack_timeout_us
            .saturating_mul(1u64 << self.backoff_exp.min(MAX_BACKOFF_EXP))
            .min(self.max_backoff_us);
        let jitter_span = (self.ack_timeout_us / 2).max(1);
        let jitter = wire::fnv1a(&[self.session.to_le_bytes(), self.epoch.to_le_bytes()].concat())
            % jitter_span;
        backed + jitter
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>) {
        self.epoch += 1;
        ctx.set_timer(self.rto(), self.epoch);
    }

    /// Sends the go-back-N window `[base, base+window)`. On the normal
    /// path (`rewind == false`) only frames not yet sent go out; a
    /// timeout rewinds to `base` and resends everything unacked.
    fn send_window(&mut self, ctx: &mut Ctx<'_>, rewind: bool) {
        let total = self.frames.len() as u64;
        let end = (self.base + self.window).min(total);
        let start = if rewind {
            self.base
        } else {
            self.base.max(self.sent_upto)
        };
        for seq in start..end {
            let f = &self.frames[seq as usize];
            if seq < self.sent_upto {
                self.metrics.borrow_mut().retransmits += 1;
                self.events.record(
                    Severity::Debug,
                    "retransmit",
                    &[("seq", seq), ("backoff_exp", u64::from(self.backoff_exp))],
                    format_args!("session {} resent seq {seq}", self.session),
                );
            }
            let (kind, bytes) = if f.shed {
                (REC_TOMBSTONE, &[][..])
            } else {
                (REC_FRAME, f.bytes.as_slice())
            };
            ctx.send(self.server, data_msg(kind, self.session, seq, bytes));
        }
        self.sent_upto = self.sent_upto.max(end);
    }

    /// One pressure event (ack timeout or `Busy`): slow down, and once
    /// the budget is exhausted shed the lowest-priority unacked frame —
    /// as a tombstone, so the sequence space stays contiguous and
    /// cumulative acks are unaffected.
    fn under_pressure(&mut self) {
        self.pressure = self.pressure.saturating_add(1);
        self.backoff_exp = (self.backoff_exp + 1).min(MAX_BACKOFF_EXP);
        if self.pressure <= self.shed_budget {
            return;
        }
        let total = self.frames.len() as u64;
        let mut pick: Option<(u8, u64)> = None;
        for seq in self.base..total {
            let f = &self.frames[seq as usize];
            if f.shed {
                continue;
            }
            // Lowest priority loses; among equals, the newest goes first.
            let better = match pick {
                None => true,
                Some((p, s)) => f.priority < p || (f.priority == p && seq > s),
            };
            if better {
                pick = Some((f.priority, seq));
            }
        }
        if let Some((priority, seq)) = pick {
            self.frames[seq as usize].shed = true;
            self.metrics.borrow_mut().shed += 1;
            self.events.warn(
                "shed",
                &[("seq", seq), ("priority", u64::from(priority))],
                format_args!(
                    "session {} shed seq {seq} (priority {priority}) under pressure",
                    self.session
                ),
            );
        }
        self.pressure = 0;
    }

    fn finish_if_done(&mut self) -> bool {
        if !self.done && self.base >= self.frames.len() as u64 {
            self.done = true;
            self.metrics.borrow_mut().sessions_done += 1;
            self.events.info(
                "session_done",
                &[("frames", self.frames.len() as u64)],
                format_args!("session {} fully acked", self.session),
            );
        }
        self.done
    }
}

impl NetNode for PodClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.finish_if_done() {
            return; // nothing to stream
        }
        self.send_window(ctx, false);
        self.arm(ctx);
    }

    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        if self.done || payload.len() != 17 {
            return;
        }
        let (tag, session, value) = (
            payload[0],
            parse_u64(&payload[1..9]),
            parse_u64(&payload[9..17]),
        );
        if session != self.session {
            return;
        }
        match tag {
            MSG_ACK if value > self.base => {
                self.base = value;
                self.backoff_exp = 0;
                self.pressure = 0;
                if self.finish_if_done() {
                    return;
                }
                self.send_window(ctx, false);
                self.arm(ctx);
            }
            MSG_ACK => {} // stale or duplicate ack
            MSG_BUSY => {
                // The hive told us to slow down: back off without
                // retransmitting; the pushed-out timer drives the retry.
                self.under_pressure();
                self.arm(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        if self.done || tag != self.epoch {
            return; // finished, or a stale timer from a superseded epoch
        }
        self.under_pressure();
        self.send_window(ctx, true);
        self.arm(ctx);
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct SessionState {
    /// Next expected sequence (everything below is journaled).
    accepted: u64,
    /// Cumulative ack floor: everything below is journaled *and synced*.
    synced: u64,
    /// A sync/ack is owed since the last tick.
    dirty: bool,
}

/// The hive side: a netsim node that accepts session frames, journals
/// them ahead of merge, acks after sync, and feeds a long-lived ingest
/// pipeline session ([`FrameSender`]).
pub struct HiveServer {
    tx: FrameSender,
    journal: Rc<RefCell<MemJournal>>,
    /// Per-session state. BTreeMap: ack emission order must be
    /// deterministic for reproducible runs.
    sessions: BTreeMap<u64, SessionState>,
    /// Accepted-but-unsynced records, in journal order, awaiting the
    /// next sync tick (the fsync batch).
    pending: Vec<(u8, Vec<u8>)>,
    tick_armed: bool,
    sync_interval_us: u64,
    busy_budget: usize,
    lost_bytes: u64,
    canary: Option<CanaryBug>,
    metrics: Rc<RefCell<Metrics>>,
    events: EventSink,
    recorder: softborg_obs::FlightRecorder,
}

impl HiveServer {
    /// Creates the server feeding `tx` (a live pipeline's sender). The
    /// journal is shared so the orchestrator can read it back after the
    /// simulation ends.
    pub fn new(tx: FrameSender, journal: Rc<RefCell<MemJournal>>, cfg: &TransportConfig) -> Self {
        HiveServer {
            tx,
            journal,
            sessions: BTreeMap::new(),
            pending: Vec::new(),
            tick_armed: false,
            sync_interval_us: cfg.sync_interval_us.max(1),
            busy_budget: cfg.busy_budget.max(1),
            lost_bytes: 0,
            canary: cfg.canary,
            metrics: Rc::new(RefCell::new(Metrics::default())),
            events: cfg.obs.recorder.source("transport.server"),
            recorder: cfg.obs.recorder.clone(),
        }
    }

    fn with_metrics(mut self, metrics: Rc<RefCell<Metrics>>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Raises every session's dedup floor to cover `journal` (a scanned
    /// journal image — this process's own after a crash, or a *prior
    /// process's* synced journal when resuming a campaign). Frames below
    /// the floor are re-acked as duplicates instead of re-ingested, so
    /// retransmits that cross a process restart cannot double-count.
    ///
    /// A corrupt or unsynced tail is dropped — but counted and warned
    /// about, never silently.
    pub fn seed_sessions(&mut self, journal: &[u8]) {
        let (records, scan) = journal::scan(journal);
        if let Some(err) = scan.tail_error {
            self.recorder.warn_or_ops(
                "transport.server",
                "recovery_tail_dropped",
                &[
                    ("tail_bytes", scan.tail_dropped as u64),
                    ("intact_records", scan.records as u64),
                ],
                format_args!(
                    "hive transport recovery dropped {} journal tail byte(s) \
                     after {} intact record(s): {err}",
                    scan.tail_dropped, scan.records
                ),
            );
            self.metrics.borrow_mut().recovery_tail_dropped += scan.tail_dropped as u64;
        }
        for (session, floor) in journal::session_floors(&records) {
            // CANARY FloorOffByOne: claim one more frame than the journal
            // holds — the client's frame at the true floor will be
            // "deduplicated" without ever having been ingested.
            let floor = match self.canary {
                Some(CanaryBug::FloorOffByOne) if floor > 0 => floor + 1,
                _ => floor,
            };
            let state = self.sessions.entry(session).or_default();
            state.accepted = state.accepted.max(floor);
            state.synced = state.accepted;
        }
    }
}

impl NetNode for HiveServer {
    fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        if payload.len() < 18 || payload[0] != MSG_DATA {
            return;
        }
        let kind = payload[1];
        if kind != REC_FRAME && kind != REC_TOMBSTONE {
            return;
        }
        let session = parse_u64(&payload[2..10]);
        let seq = parse_u64(&payload[10..18]);
        let frame = &payload[18..];
        let state = self.sessions.entry(session).or_default();
        if seq < state.accepted {
            // Redelivery (network duplicate, or a retransmit racing an
            // ack): idempotent — discard and re-ack the synced floor.
            self.metrics.borrow_mut().duplicates += 1;
            self.events.record(
                Severity::Debug,
                "dedup",
                &[("session", session), ("seq", seq)],
                format_args!("duplicate frame {session}/{seq} discarded, re-acked"),
            );
            ctx.send(from, ctl_msg(MSG_ACK, session, state.synced));
            return;
        }
        if seq > state.accepted {
            // Go-back-N gap: remind the sender where we actually are.
            ctx.send(from, ctl_msg(MSG_ACK, session, state.synced));
            return;
        }
        if self.pending.len() >= self.busy_budget {
            // Backlog full: push back instead of buffering unboundedly.
            self.metrics.borrow_mut().busy_nacks += 1;
            self.events.record(
                Severity::Debug,
                "busy_nack",
                &[("session", session), ("seq", seq)],
                format_args!("backlog full, nacked {session}/{seq}"),
            );
            ctx.send(from, ctl_msg(MSG_BUSY, session, seq));
            return;
        }
        // Accept: journal ahead of merge. The ack waits for the sync
        // tick — never promise durability before the barrier.
        let mut rec = Vec::new();
        journal::append_record(&mut rec, kind, session, seq, frame);
        if let Err(err) = self.journal.borrow_mut().append(&rec) {
            // Disk refused the record (ENOSPC and friends): the frame is
            // NOT accepted — nack `Busy` so the client backs off and
            // retries, and latch the first error for the report.
            let mut m = self.metrics.borrow_mut();
            m.busy_nacks += 1;
            if m.journal_error.is_none() {
                self.events.record(
                    Severity::Error,
                    "journal_error",
                    &[("session", session), ("seq", seq)],
                    format_args!("journal refused frame {session}/{seq}: {err}"),
                );
                m.journal_error = Some(err);
            }
            drop(m);
            ctx.send(from, ctl_msg(MSG_BUSY, session, seq));
            return;
        }
        state.accepted += 1;
        state.dirty = true;
        // CANARY AckBeforeSync: promise durability the journal cannot yet
        // back — a crash before the sync tick loses this frame for good.
        if self.canary == Some(CanaryBug::AckBeforeSync) {
            state.synced = state.accepted;
            state.dirty = false;
            ctx.send(from, ctl_msg(MSG_ACK, session, state.synced));
        }
        self.pending.push((kind, frame.to_vec()));
        if !self.tick_armed {
            self.tick_armed = true;
            ctx.set_timer(self.sync_interval_us, TICK_TAG);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        // Sync tick: one fsync batch covers every frame accepted since
        // the last tick. Only now do the frames enter the pipeline and
        // the acks go out — the ack-after-sync invariant.
        self.tick_armed = false;
        if let Err(err) = self.journal.borrow_mut().sync() {
            // The barrier failed: nothing new is durable, so nothing may
            // be submitted or acked. Keep the backlog, latch the error,
            // and retry the barrier at the next tick.
            let mut m = self.metrics.borrow_mut();
            if m.journal_error.is_none() {
                m.journal_error = Some(err);
            }
            drop(m);
            self.tick_armed = true;
            ctx.set_timer(self.sync_interval_us, TICK_TAG);
            return;
        }
        self.events.record(
            Severity::Debug,
            "fsync",
            &[("records", self.pending.len() as u64)],
            format_args!("sync barrier covered {} record(s)", self.pending.len()),
        );
        for (kind, frame) in self.pending.drain(..) {
            // Delivery metrics count here, at the barrier: a frame
            // accepted but crashed away before sync was never delivered
            // (its client re-sends it and it is counted on the retry).
            if kind == REC_FRAME {
                self.metrics.borrow_mut().delivered += 1;
                self.tx.submit(frame);
            } else {
                self.metrics.borrow_mut().tombstones += 1;
            }
        }
        for (&session, state) in self.sessions.iter_mut() {
            if state.dirty {
                state.synced = state.accepted;
                state.dirty = false;
                ctx.send(
                    Addr(session as u32),
                    ctl_msg(MSG_ACK, session, state.synced),
                );
            }
        }
    }

    fn on_crash(&mut self) {
        // Process death: volatile state is gone. The journal's unsynced
        // tail goes with it (the OS never promised those bytes), and
        // since unsynced frames were never acked, clients still own them.
        let lost = self.journal.borrow_mut().crash() as u64;
        self.lost_bytes += lost;
        self.events.warn(
            "crash",
            &[
                ("unsynced_bytes_lost", lost),
                ("pending_records", self.pending.len() as u64),
            ],
            format_args!("server crashed: {lost} unsynced journal byte(s) lost"),
        );
        self.pending.clear();
        self.sessions.clear();
        self.tick_armed = false;
    }

    fn on_restart(&mut self, _ctx: &mut Ctx<'_>) {
        // Recovery is a journal scan: rebuild every session's cumulative
        // floor from the synced prefix. Synced frames were already
        // submitted to the pipeline (sync and submit are one atomic tick
        // here), so replay feeds only the dedup state, not the merger.
        self.metrics.borrow_mut().recoveries += 1;
        self.events.info(
            "recovery",
            &[("recoveries", self.metrics.borrow().recoveries)],
            "server restarted, rebuilding session floors from synced journal",
        );
        // CANARY SkipFloorReseed: recover without rebuilding the dedup
        // floors — the server demands seq 0 from clients already past it.
        if self.canary != Some(CanaryBug::SkipFloorReseed) {
            let bytes = self.journal.borrow().bytes().to_vec();
            self.seed_sessions(&bytes);
        }
        // Clients' retransmit timers re-drive the stream; the server is
        // purely reactive and needs no timer of its own until data
        // arrives.
    }
}

/// An event loop capable of hosting the transport's [`NetNode`]s.
///
/// [`run_reliable_ingest`] uses the threaded path's default host — the
/// netsim [`Sim`] — but the orchestration itself only needs these three
/// operations, so a virtual-time scheduler (`softborg-sim`) can host the
/// *same* `PodClient`/`HiveServer` code and produce the same
/// [`TransportReport`]. A conforming host must reproduce [`Sim`]'s
/// observable semantics: FIFO-per-instant event dispatch in insertion
/// order, the link/fault model's RNG draw order, crash pre-queueing, and
/// `on_start` in node-index order.
pub trait NetHost {
    /// Adds a node; addresses must be assigned densely from `Addr(0)` in
    /// insertion order (the session protocol equates session id and node
    /// address).
    fn add_node(&mut self, node: Box<dyn NetNode>) -> Addr;
    /// Runs to quiescence (or the host's event cap); returns the number
    /// of events processed.
    fn run(&mut self) -> u64;
    /// Network-level counters accumulated so far.
    fn stats(&self) -> SimStats;
}

impl NetHost for Sim {
    fn add_node(&mut self, node: Box<dyn NetNode>) -> Addr {
        Sim::add_node(self, node)
    }
    fn run(&mut self) -> u64 {
        Sim::run(self)
    }
    fn stats(&self) -> SimStats {
        Sim::stats(self)
    }
}

/// Streams every pod's frames to the hive over the simulated network
/// with the full session protocol, feeding the hive's staged ingest
/// pipeline as frames become durable. Pods are nodes `0..pods.len()`,
/// the server is node `pods.len()` (address fault plans accordingly).
///
/// The ingest policy is forced to [`BackpressurePolicy::Block`]: an
/// acked frame is a durability promise, so the pipeline may stall the
/// (simulated) server but never shed.
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when the fault plan fails validation
/// against the node count.
pub fn run_reliable_ingest(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
) -> Result<(TransportReport, IngestStats), FaultPlanError> {
    run_reliable_ingest_inner(hive, pods, ingest_cfg, cfg, Vec::new())
}

/// Like [`run_reliable_ingest`], but the server starts with its session
/// dedup floors seeded from `prior_journal` — the synced journal of a
/// *previous process* ([`TransportReport::journal`]). Clients that
/// re-send frames the prior process already acked (retransmits racing a
/// restart, or replays of an entire session) see them deduplicated and
/// re-acked instead of double-ingested.
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when the fault plan fails validation
/// against the node count.
pub fn run_reliable_ingest_resumed(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
    prior_journal: &[u8],
) -> Result<(TransportReport, IngestStats), FaultPlanError> {
    run_reliable_ingest_inner(hive, pods, ingest_cfg, cfg, prior_journal.to_vec())
}

fn run_reliable_ingest_inner(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
    prior_journal: Vec<u8>,
) -> Result<(TransportReport, IngestStats), FaultPlanError> {
    run_reliable_ingest_hosted(hive, pods, ingest_cfg, cfg, &prior_journal, |c| {
        Sim::new(SimConfig {
            seed: c.seed,
            link: c.link,
            max_events: c.max_events,
            faults: c.faults.clone(),
        })
    })
}

/// [`run_reliable_ingest`] generalized over the event loop: `build`
/// constructs the [`NetHost`] (on the producer thread) from the run's
/// config, and the *same* session protocol runs on top of it. With a
/// conforming host and a shared seed, the whole [`TransportReport`] —
/// journal bytes included — must be identical to the [`Sim`]-hosted run;
/// `softborg-sim` asserts exactly that. `prior_journal` seeds the
/// server's dedup floors as in [`run_reliable_ingest_resumed`] (empty
/// for a fresh campaign).
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when the fault plan fails validation
/// against the node count.
pub fn run_reliable_ingest_hosted<H, B>(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
    prior_journal: &[u8],
    build: B,
) -> Result<(TransportReport, IngestStats), FaultPlanError>
where
    H: NetHost,
    B: FnOnce(&TransportConfig) -> H + Send,
{
    let n_pods = pods.len() as u32;
    cfg.faults.validate(n_pods + 1)?;
    let mut ingest_cfg = ingest_cfg.clone();
    ingest_cfg.policy = BackpressurePolicy::Block;
    let obs = cfg.obs.clone();
    let cfg = cfg.clone();
    let prior_journal = prior_journal.to_vec();
    let (report, stats) = hive.ingest_frames(&ingest_cfg, move |tx| {
        // The producer thread hosts the whole simulated network; only
        // `tx` crosses back into the pipeline.
        let metrics = Rc::new(RefCell::new(Metrics::default()));
        let journal = Rc::new(RefCell::new(MemJournal::new()));
        let mut host = build(&cfg);
        let server_addr = Addr(n_pods);
        let n_sessions = pods.len() as u64;
        for (i, frames) in pods.into_iter().enumerate() {
            host.add_node(Box::new(
                PodClient::new(i as u64, server_addr, frames, &cfg).with_metrics(metrics.clone()),
            ));
        }
        let mut server = HiveServer::new(tx, journal.clone(), &cfg).with_metrics(metrics.clone());
        if !prior_journal.is_empty() {
            server.seed_sessions(&prior_journal);
        }
        let placed = host.add_node(Box::new(server));
        debug_assert_eq!(placed, server_addr, "server must sit at Addr(n_pods)");
        host.run();

        let m = metrics.borrow();
        let j = journal.borrow();
        let synced = j.synced_bytes().to_vec();
        let (records, scan) = journal::scan(&synced);
        debug_assert_eq!(scan.tail_error, None, "synced prefix is always intact");
        TransportReport {
            completed: m.sessions_done == n_sessions,
            delivered: m.delivered,
            tombstones: m.tombstones,
            duplicates: m.duplicates,
            retransmits: m.retransmits,
            busy_nacks: m.busy_nacks,
            shed: m.shed,
            acked: records.len() as u64,
            recoveries: m.recoveries,
            journal_syncs: j.syncs,
            journal_lost_bytes: (j.bytes().len() - synced.len()) as u64,
            recovery_tail_dropped: m.recovery_tail_dropped,
            journal_error: m.journal_error.clone(),
            journal: synced,
            net: host.stats(),
        }
    });
    publish_transport_telemetry(&obs, &report);
    Ok((report, stats))
}

/// Mirrors a finished run's [`TransportReport`] counters into the shared
/// registry (when one is attached). Pure accumulation — never feeds back
/// into transport behaviour.
fn publish_transport_telemetry(obs: &ObsHandles, report: &TransportReport) {
    let Some(reg) = obs.registry.as_ref() else {
        return;
    };
    reg.counter("transport.delivered").add(report.delivered);
    reg.counter("transport.tombstones").add(report.tombstones);
    reg.counter("transport.duplicates").add(report.duplicates);
    reg.counter("transport.retransmits").add(report.retransmits);
    reg.counter("transport.busy_nacks").add(report.busy_nacks);
    reg.counter("transport.shed").add(report.shed);
    reg.counter("transport.recoveries").add(report.recoveries);
    reg.counter("transport.journal_syncs")
        .add(report.journal_syncs);
    reg.counter("transport.journal_lost_bytes")
        .add(report.journal_lost_bytes);
    reg.counter("transport.recovery_tail_dropped")
        .add(report.recovery_tail_dropped);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_encodings_roundtrip() {
        let d = data_msg(REC_FRAME, 3, 9, b"xyz");
        assert_eq!(d[0], MSG_DATA);
        assert_eq!(d[1], REC_FRAME);
        assert_eq!(parse_u64(&d[2..10]), 3);
        assert_eq!(parse_u64(&d[10..18]), 9);
        assert_eq!(&d[18..], b"xyz");
        let a = ctl_msg(MSG_ACK, 5, 7);
        assert_eq!(
            (a[0], parse_u64(&a[1..9]), parse_u64(&a[9..17])),
            (MSG_ACK, 5, 7)
        );
    }

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let mut c = PodClient::new(
            0,
            Addr(1),
            vec![(0, vec![1, 2, 3])],
            &TransportConfig {
                ack_timeout_us: 10_000,
                max_backoff_us: 80_000,
                ..TransportConfig::default()
            },
        );
        let r0 = c.rto();
        assert!((10_000..15_000).contains(&r0), "base + jitter: {r0}");
        for _ in 0..40 {
            c.backoff_exp = (c.backoff_exp + 1).min(MAX_BACKOFF_EXP);
        }
        let r = c.rto();
        assert!((80_000..85_000).contains(&r), "capped + jitter: {r}");
        assert_eq!(c.rto(), c.rto(), "jitter is a pure function of state");
    }

    #[test]
    fn pressure_sheds_lowest_priority_newest_first() {
        let mut c = PodClient::new(
            0,
            Addr(1),
            vec![(5, vec![0]), (1, vec![1]), (1, vec![2]), (9, vec![3])],
            &TransportConfig {
                shed_budget: 1,
                ..TransportConfig::default()
            },
        );
        c.under_pressure(); // within budget
        assert!(c.frames.iter().all(|f| !f.shed));
        c.under_pressure(); // over budget: sheds seq 2 (prio 1, newest)
        let shed: Vec<usize> = c
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.shed)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(shed, vec![2]);
        c.under_pressure();
        c.under_pressure(); // next: seq 1 (prio 1)
        let shed: Vec<usize> = c
            .frames
            .iter()
            .enumerate()
            .filter(|(_, f)| f.shed)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(shed, vec![1, 2]);
    }
}
