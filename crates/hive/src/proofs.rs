//! Cumulative proofs from natural executions (paper §3.3).
//!
//! "A complete exploration of all paths leads to a proof, while a test is
//! just a weaker proof that covers a smaller subset of the paths." The
//! hive continuously scans the execution tree for *closed* subtrees —
//! every arm explored or proven infeasible — whose leaves are all
//! failure-free, and publishes a [`ProofCertificate`] for each maximal
//! one. Certificates are checked by an independent [`verify`] pass so a
//! buggy assembler cannot publish a bogus proof silently.

use serde::{Deserialize, Serialize};
use softborg_program::{BranchSiteId, ProgramId};
use softborg_tree::{ExecutionTree, NodeId};
use std::fmt;

/// The property a certificate asserts over a subtree.
pub const PROPERTY_NO_FAILURE: &str = "no-crash-deadlock-or-hang";

/// A published proof over a (sub)tree of the program's executions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProofCertificate {
    /// The program the proof is about.
    pub program: ProgramId,
    /// Decision prefix identifying the proven subtree (empty = whole
    /// program).
    pub prefix: Vec<(BranchSiteId, bool)>,
    /// The property proven.
    pub property: String,
    /// Nodes covered by the subtree.
    pub nodes: u64,
    /// Executions witnessed inside the subtree.
    pub visits: u64,
    /// Structural digest of the whole tree at publication time.
    pub tree_digest: u64,
}

impl ProofCertificate {
    /// `true` when the certificate covers the entire program.
    pub fn is_whole_program(&self) -> bool {
        self.prefix.is_empty()
    }
}

impl fmt::Display for ProofCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_whole_program() {
            write!(
                f,
                "proof[{}]: {} over the whole program ({} nodes, {} executions)",
                self.program, self.property, self.nodes, self.visits
            )
        } else {
            write!(
                f,
                "proof[{}]: {} under prefix of depth {} ({} nodes)",
                self.program,
                self.property,
                self.prefix.len(),
                self.nodes
            )
        }
    }
}

/// Why verification rejected a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProofError {
    /// The prefix does not exist in the tree.
    UnknownPrefix,
    /// The subtree has unexplored, non-infeasible arms.
    NotClosed,
    /// The subtree recorded failing executions.
    HasFailures(u64),
    /// The tree changed structurally since publication.
    DigestMismatch,
    /// Wrong program.
    WrongProgram,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProofError::UnknownPrefix => f.write_str("prefix not present in tree"),
            ProofError::NotClosed => f.write_str("subtree is not closed"),
            ProofError::HasFailures(n) => write!(f, "subtree has {n} failing executions"),
            ProofError::DigestMismatch => f.write_str("tree digest mismatch"),
            ProofError::WrongProgram => f.write_str("certificate is for another program"),
        }
    }
}

impl std::error::Error for ProofError {}

fn subtree_nodes(tree: &ExecutionTree, root: NodeId) -> u64 {
    let mut count = 0;
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        count += 1;
        stack.extend(tree.with_node(id, children_of));
    }
    count
}

/// All explored children of a node, pulled out under one arena borrow
/// (the tree may be paged, so node access is closure-scoped).
fn children_of(n: &softborg_tree::Node) -> Vec<NodeId> {
    let mut out = Vec::new();
    for site in n.sites() {
        for taken in [false, true] {
            if let Some(c) = n.child(site, taken) {
                out.push(c);
            }
        }
    }
    out
}

/// Scans the tree and assembles certificates for the *maximal* closed,
/// failure-free subtrees (a closed parent subsumes its children).
pub fn assemble(tree: &ExecutionTree) -> Vec<ProofCertificate> {
    let digest = tree.digest();
    let mut certs = Vec::new();
    let mut queue = vec![NodeId::ROOT];
    while let Some(id) = queue.pop() {
        let clean = tree.subtree_failures(id) == 0;
        let visits = tree.with_node(id, |n| n.visits);
        if clean && tree.is_closed(id) && visits > 0 {
            certs.push(ProofCertificate {
                program: tree.program(),
                prefix: tree.prefix(id),
                property: PROPERTY_NO_FAILURE.to_string(),
                nodes: subtree_nodes(tree, id),
                visits,
                tree_digest: digest,
            });
            continue; // maximality: don't descend into a proven subtree
        }
        queue.extend(tree.with_node(id, children_of));
    }
    certs
}

/// Independently re-checks a certificate against the tree.
///
/// # Errors
///
/// Returns the first [`ProofError`] found; `Ok(())` means the proof
/// still holds for this tree.
pub fn verify(cert: &ProofCertificate, tree: &ExecutionTree) -> Result<(), ProofError> {
    if cert.program != tree.program() {
        return Err(ProofError::WrongProgram);
    }
    if cert.tree_digest != tree.digest() {
        return Err(ProofError::DigestMismatch);
    }
    // Walk the prefix.
    let mut node = NodeId::ROOT;
    for (site, taken) in &cert.prefix {
        node = tree
            .with_node(node, |n| n.child(*site, *taken))
            .ok_or(ProofError::UnknownPrefix)?;
    }
    if !tree.is_closed(node) {
        return Err(ProofError::NotClosed);
    }
    let failures = tree.subtree_failures(node);
    if failures > 0 {
        return Err(ProofError::HasFailures(failures));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::cfg::Loc;
    use softborg_program::interp::{CrashKind, Outcome};

    fn s(i: u32) -> BranchSiteId {
        BranchSiteId::new(i)
    }

    fn crash() -> Outcome {
        Outcome::Crash {
            loc: Loc::default(),
            kind: CrashKind::AssertFailed,
        }
    }

    #[test]
    fn fully_explored_clean_tree_yields_whole_program_proof() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true)], &Outcome::Success);
        tree.merge_path(&[(s(0), false)], &Outcome::Success);
        let certs = assemble(&tree);
        assert_eq!(certs.len(), 1);
        assert!(certs[0].is_whole_program());
        verify(&certs[0], &tree).unwrap();
        assert!(certs[0].to_string().contains("whole program"));
    }

    #[test]
    fn failing_subtree_blocks_but_sibling_is_proven() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        // (0,true) subtree: closed and clean.
        tree.merge_path(&[(s(0), true), (s(1), true)], &Outcome::Success);
        tree.merge_path(&[(s(0), true), (s(1), false)], &Outcome::Success);
        // (0,false) subtree: crashes.
        tree.merge_path(&[(s(0), false)], &crash());
        let certs = assemble(&tree);
        assert_eq!(certs.len(), 1);
        assert_eq!(certs[0].prefix, vec![(s(0), true)]);
        verify(&certs[0], &tree).unwrap();
    }

    #[test]
    fn open_frontier_blocks_whole_program_proof() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true)], &Outcome::Success);
        // (0,false) unexplored and not infeasible: only the explored leaf
        // subtree is provable, not the whole program.
        let certs = assemble(&tree);
        assert_eq!(certs.len(), 1);
        assert!(!certs[0].is_whole_program());
        assert_eq!(certs[0].prefix, vec![(s(0), true)]);
        // Marking the other arm infeasible unlocks the whole-program
        // proof (and subsumes the leaf one).
        tree.mark_infeasible(NodeId::ROOT, s(0), false);
        let certs = assemble(&tree);
        assert_eq!(certs.len(), 1);
        assert!(certs[0].is_whole_program());
    }

    #[test]
    fn verify_rejects_stale_digest() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true)], &Outcome::Success);
        tree.merge_path(&[(s(0), false)], &Outcome::Success);
        let cert = assemble(&tree).remove(0);
        // Tree grows a new path => structural change => stale cert.
        tree.merge_path(&[(s(0), true), (s(2), true)], &Outcome::Success);
        assert_eq!(verify(&cert, &tree), Err(ProofError::DigestMismatch));
    }

    #[test]
    fn verify_rejects_wrong_program() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true)], &Outcome::Success);
        tree.merge_path(&[(s(0), false)], &Outcome::Success);
        let mut cert = assemble(&tree).remove(0);
        cert.program = ProgramId(10);
        assert_eq!(verify(&cert, &tree), Err(ProofError::WrongProgram));
    }

    #[test]
    fn verify_catches_forged_clean_claim() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true)], &crash());
        tree.merge_path(&[(s(0), false)], &Outcome::Success);
        // Forge a whole-program certificate.
        let forged = ProofCertificate {
            program: ProgramId(9),
            prefix: vec![],
            property: PROPERTY_NO_FAILURE.to_string(),
            nodes: 3,
            visits: 2,
            tree_digest: tree.digest(),
        };
        assert_eq!(verify(&forged, &tree), Err(ProofError::HasFailures(1)));
    }

    #[test]
    fn proofs_are_maximal() {
        let mut tree = ExecutionTree::new(ProgramId(9));
        tree.merge_path(&[(s(0), true), (s(1), true)], &Outcome::Success);
        tree.merge_path(&[(s(0), true), (s(1), false)], &Outcome::Success);
        tree.merge_path(&[(s(0), false)], &Outcome::Success);
        let certs = assemble(&tree);
        // One whole-program proof, not three nested ones.
        assert_eq!(certs.len(), 1);
        assert!(certs[0].is_whole_program());
        assert_eq!(certs[0].nodes, 5);
    }
}
