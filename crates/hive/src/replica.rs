//! Hive replica synchronization: a *physically distributed* hive
//! (paper §3: the hive "may be … entirely distributed, running on
//! end-users' machines, or hybrid").
//!
//! Each replica ingests the traces of its own pod shard into a local
//! execution tree and gossips newly-learned distinct paths to its peers
//! over the (lossy) network simulator. Anti-entropy: un-acknowledged
//! paths are re-gossiped on every round, so replicas converge to the
//! same tree digest despite message loss — the structural merge is
//! [`softborg_tree::ExecutionTree::absorb`]-equivalent but streamed
//! path-by-path.

use softborg_netsim::{Addr, Ctx, NetNode, Sim, SimConfig, SimTime};
use softborg_program::interp::Outcome;
use softborg_program::{BranchSiteId, ProgramId};
use softborg_tree::ExecutionTree;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// A path with its outcome class, as gossiped between replicas.
pub type OutcomePath = (Vec<(BranchSiteId, bool)>, Outcome);

/// Replica-synchronization configuration.
#[derive(Debug, Clone)]
pub struct ReplicaConfig {
    /// Number of hive replicas.
    pub replicas: u32,
    /// Network loss, parts per 1000.
    pub loss_per_mille: u32,
    /// Gossip period in µs.
    pub gossip_us: u64,
    /// Maximum paths per gossip message.
    pub batch: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Simulation horizon in µs.
    pub horizon_us: u64,
}

impl Default for ReplicaConfig {
    fn default() -> Self {
        ReplicaConfig {
            replicas: 4,
            loss_per_mille: 0,
            gossip_us: 10_000,
            batch: 64,
            seed: 0,
            horizon_us: 30_000_000,
        }
    }
}

/// Result of a replica-sync run.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Tree digests per replica at the end of the run.
    pub digests: Vec<u64>,
    /// Whether all replicas converged to one digest.
    pub converged: bool,
    /// Distinct paths in each replica's tree.
    pub paths_per_replica: Vec<u64>,
    /// Gossip messages sent / dropped.
    pub messages_sent: u64,
    /// Messages dropped.
    pub messages_dropped: u64,
}

/// Compact path encoding: u32 count, then per decision u32 site + u8
/// taken, then a u8 outcome class (structure is all the tree needs; rich
/// outcome payloads travel pod→replica, not replica→replica).
fn encode_paths(paths: &[OutcomePath]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(paths.len() as u32).to_le_bytes());
    for (decisions, outcome) in paths {
        out.extend_from_slice(&(decisions.len() as u32).to_le_bytes());
        for (site, taken) in decisions {
            out.extend_from_slice(&site.0.to_le_bytes());
            out.push(u8::from(*taken));
        }
        out.push(match outcome {
            Outcome::Success => 0,
            Outcome::Crash { .. } => 1,
            Outcome::Deadlock { .. } => 2,
            Outcome::Hang { .. } => 3,
        });
    }
    out
}

fn decode_paths(data: &[u8]) -> Option<Vec<OutcomePath>> {
    let mut pos = 0usize;
    let take_u32 = |pos: &mut usize| -> Option<u32> {
        let v = u32::from_le_bytes(data.get(*pos..*pos + 4)?.try_into().ok()?);
        *pos += 4;
        Some(v)
    };
    let n = take_u32(&mut pos)? as usize;
    if n > 1_000_000 {
        return None;
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = take_u32(&mut pos)? as usize;
        if len > 1_000_000 {
            return None;
        }
        let mut decisions = Vec::with_capacity(len);
        for _ in 0..len {
            let site = take_u32(&mut pos)?;
            let taken = *data.get(pos)? != 0;
            pos += 1;
            decisions.push((BranchSiteId::new(site), taken));
        }
        let outcome = match *data.get(pos)? {
            0 => Outcome::Success,
            1 => Outcome::Crash {
                loc: softborg_program::Loc::default(),
                kind: softborg_program::interp::CrashKind::AssertFailed,
            },
            2 => Outcome::Deadlock { cycle: vec![] },
            _ => Outcome::Hang { stuck: vec![] },
        };
        pos += 1;
        out.push((decisions, outcome));
    }
    Some(out)
}

fn path_key(p: &OutcomePath) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    p.0.hash(&mut h);
    std::mem::discriminant(&p.1).hash(&mut h);
    h.finish()
}

struct Replica {
    peers: Vec<Addr>,
    tree: Rc<RefCell<ExecutionTree>>,
    /// Everything this replica knows, by key (for dedup on receive).
    known: HashSet<u64>,
    /// Full store for anti-entropy re-gossip.
    store: Vec<OutcomePath>,
    /// Per-peer high-water mark into `store` (optimistic; loss is healed
    /// by periodic full-rotation re-sends).
    sent_to: Vec<usize>,
    gossip_us: u64,
    batch: usize,
    /// Rotates which slice of the store gets re-sent for anti-entropy.
    rotate: usize,
    next_peer: usize,
}

impl Replica {
    fn learn(&mut self, paths: Vec<OutcomePath>) {
        for p in paths {
            if self.known.insert(path_key(&p)) {
                self.tree.borrow_mut().merge_path(&p.0, &p.1);
                self.store.push(p);
            }
        }
    }

    fn gossip(&mut self, ctx: &mut Ctx<'_>) {
        if self.peers.is_empty() || self.store.is_empty() {
            return;
        }
        let peer_idx = self.next_peer % self.peers.len();
        self.next_peer += 1;
        let peer = self.peers[peer_idx];
        // New paths first; top up with an anti-entropy rotation slice.
        let hwm = self.sent_to[peer_idx];
        let mut batch: Vec<OutcomePath> = self.store[hwm.min(self.store.len())..]
            .iter()
            .take(self.batch)
            .cloned()
            .collect();
        self.sent_to[peer_idx] = (hwm + batch.len()).min(self.store.len());
        let mut i = self.rotate;
        while batch.len() < self.batch && i < self.rotate + self.batch {
            if let Some(p) = self.store.get(i % self.store.len().max(1)) {
                batch.push(p.clone());
            }
            i += 1;
        }
        self.rotate = i % self.store.len().max(1);
        if !batch.is_empty() {
            ctx.send(peer, encode_paths(&batch));
        }
    }
}

impl NetNode for Replica {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.gossip_us, 0);
    }

    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, _ctx: &mut Ctx<'_>) {
        if let Some(paths) = decode_paths(&payload) {
            self.learn(paths);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        self.gossip(ctx);
        ctx.set_timer(self.gossip_us, 0);
    }
}

/// Runs replica synchronization: `shards[i]` is the path stream replica
/// `i` ingests locally (its pod shard); the report captures whether the
/// replicas' trees converged.
pub fn run_replica_sync(
    program: ProgramId,
    shards: Vec<Vec<OutcomePath>>,
    config: &ReplicaConfig,
) -> ReplicaReport {
    let n = config.replicas as usize;
    assert!(
        shards.len() == n,
        "one shard per replica ({} shards, {} replicas)",
        shards.len(),
        n
    );
    let mut sim = Sim::new(SimConfig {
        seed: config.seed,
        link: softborg_netsim::LinkConfig {
            loss_per_mille: config.loss_per_mille,
            ..Default::default()
        },
        max_events: 5_000_000,
        ..SimConfig::default()
    });
    let addrs: Vec<Addr> = (0..n).map(|i| Addr(i as u32)).collect();
    let trees: Vec<Rc<RefCell<ExecutionTree>>> = (0..n)
        .map(|_| Rc::new(RefCell::new(ExecutionTree::new(program))))
        .collect();
    for (i, shard) in shards.into_iter().enumerate() {
        let peers: Vec<Addr> = addrs
            .iter()
            .copied()
            .filter(|a| a.0 as usize != i)
            .collect();
        let mut replica = Replica {
            peers,
            tree: trees[i].clone(),
            known: HashSet::new(),
            store: Vec::new(),
            sent_to: vec![0; n - 1],
            gossip_us: config.gossip_us,
            batch: config.batch,
            rotate: 0,
            next_peer: i, // stagger peer rotation
        };
        replica.learn(shard);
        let addr = sim.add_node(Box::new(replica));
        debug_assert_eq!(addr.0 as usize, i);
    }
    sim.run_until(SimTime(config.horizon_us));
    let digests: Vec<u64> = trees.iter().map(|t| t.borrow().digest()).collect();
    let converged = digests.windows(2).all(|w| w[0] == w[1]);
    ReplicaReport {
        converged,
        paths_per_replica: trees.iter().map(|t| t.borrow().distinct_paths()).collect(),
        digests,
        messages_sent: sim.stats().sent,
        messages_dropped: sim.stats().dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn synthetic_shards(n: usize, paths_per_shard: usize, seed: u64) -> Vec<Vec<OutcomePath>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..paths_per_shard)
                    .map(|_| {
                        let depth = rng.gen_range(1..8);
                        let decisions = (0..depth)
                            .map(|d| (BranchSiteId::new(d), rng.gen_bool(0.6)))
                            .collect();
                        (decisions, Outcome::Success)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn replicas_converge_on_a_lossless_network() {
        let cfg = ReplicaConfig::default();
        let shards = synthetic_shards(4, 50, 1);
        let report = run_replica_sync(ProgramId(1), shards, &cfg);
        assert!(report.converged, "{report:?}");
        assert!(report.paths_per_replica.iter().all(|p| *p > 0));
        // Every replica holds the union.
        let first = report.paths_per_replica[0];
        assert!(report.paths_per_replica.iter().all(|p| *p == first));
    }

    #[test]
    fn replicas_converge_despite_heavy_loss() {
        let cfg = ReplicaConfig {
            loss_per_mille: 300,
            seed: 7,
            ..ReplicaConfig::default()
        };
        let shards = synthetic_shards(4, 40, 2);
        let report = run_replica_sync(ProgramId(1), shards, &cfg);
        assert!(
            report.converged,
            "anti-entropy must heal 30% loss: {report:?}"
        );
        assert!(report.messages_dropped > 0, "loss must actually occur");
    }

    #[test]
    fn converged_replicas_match_a_centralized_tree() {
        let shards = synthetic_shards(3, 30, 3);
        let mut central = ExecutionTree::new(ProgramId(1));
        let mut seen = HashSet::new();
        for shard in &shards {
            for p in shard {
                if seen.insert(path_key(p)) {
                    central.merge_path(&p.0, &p.1);
                }
            }
        }
        let cfg = ReplicaConfig {
            replicas: 3,
            ..ReplicaConfig::default()
        };
        let report = run_replica_sync(ProgramId(1), shards, &cfg);
        assert!(report.converged);
        assert_eq!(
            report.digests[0],
            central.digest(),
            "distributed union must equal the centralized tree"
        );
    }

    #[test]
    fn path_codec_roundtrips() {
        let paths: Vec<OutcomePath> = vec![
            (vec![(BranchSiteId::new(0), true)], Outcome::Success),
            (
                vec![(BranchSiteId::new(5), false), (BranchSiteId::new(9), true)],
                Outcome::Deadlock { cycle: vec![] },
            ),
            (vec![], Outcome::Hang { stuck: vec![] }),
        ];
        let enc = encode_paths(&paths);
        let dec = decode_paths(&enc).expect("roundtrip");
        assert_eq!(dec.len(), 3);
        assert_eq!(dec[0].0, paths[0].0);
        assert!(matches!(dec[1].1, Outcome::Deadlock { .. }));
    }

    #[test]
    fn garbage_payloads_are_rejected() {
        assert!(decode_paths(&[1, 2, 3]).is_none());
        assert!(decode_paths(&u32::MAX.to_le_bytes()).is_none());
    }
}
