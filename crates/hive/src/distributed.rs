//! The distributed hive: cooperative exploration over an unreliable
//! network (paper §4).
//!
//! "One way … is to statically split the execution tree and farm off
//! subtrees to worker nodes. Unfortunately, the contents and shape of the
//! execution tree remain unknown until the tree is actually explored …
//! Instead, SoftBorg partitions the execution tree dynamically." This
//! module models both strategies on top of [`softborg_netsim`]:
//! exploration work is abstracted into *chunks* (subtree workloads); a
//! coordinator farms chunks to workers over a lossy network with node
//! outages, and experiment E10 measures completion time and duplicated
//! work as loss and churn grow.
//!
//! * **Static** partitioning pins every chunk to one worker up front;
//!   timeouts can only retransmit to that same worker.
//! * **Dynamic** partitioning hands workers one chunk at a time and
//!   reassigns timed-out chunks to *other* workers — tolerating stragglers
//!   and outages at the cost of occasional duplicated work.

use serde::{Deserialize, Serialize};
use softborg_netsim::{Addr, Ctx, FaultPlanError, NetNode, Sim, SimConfig, SimTime};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

/// Partitioning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Partitioning {
    /// Chunks pinned to workers up front.
    Static,
    /// Chunks pulled/reassigned dynamically.
    Dynamic,
}

/// A scheduled worker outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outage {
    /// Worker index (0-based).
    pub worker: u32,
    /// Outage start (µs).
    pub at_us: u64,
    /// Recovery time (µs).
    pub until_us: u64,
}

/// Distributed-exploration configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistConfig {
    /// Number of worker nodes.
    pub workers: u32,
    /// Number of work chunks (subtree workloads).
    pub n_chunks: u32,
    /// Virtual work time per chunk (µs).
    pub work_us_per_chunk: u64,
    /// Coordinator retransmission timeout (µs).
    pub timeout_us: u64,
    /// Strategy.
    pub partitioning: Partitioning,
    /// Network loss, in parts per 1000.
    pub loss_per_mille: u32,
    /// Simulation seed.
    pub seed: u64,
    /// Worker outages.
    pub outages: Vec<Outage>,
}

impl Default for DistConfig {
    fn default() -> Self {
        DistConfig {
            workers: 8,
            n_chunks: 64,
            work_us_per_chunk: 20_000,
            timeout_us: 120_000,
            partitioning: Partitioning::Dynamic,
            loss_per_mille: 0,
            seed: 0,
            outages: Vec::new(),
        }
    }
}

impl DistConfig {
    /// Validates the outage schedule and loss rate up front, so a bad
    /// sweep fails at config time instead of silently skipping entries.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultPlanError`] when an outage window is inverted
    /// (`until_us <= at_us`), an outage names a worker index out of
    /// range, or `loss_per_mille` exceeds 1000.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if self.loss_per_mille > 1000 {
            return Err(FaultPlanError::RateOutOfRange {
                what: "loss_per_mille",
                per_mille: self.loss_per_mille,
            });
        }
        for o in &self.outages {
            if o.until_us <= o.at_us {
                return Err(FaultPlanError::WindowInverted {
                    what: "outage",
                    start_us: o.at_us,
                    end_us: o.until_us,
                });
            }
            if o.worker >= self.workers {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "outage",
                    node: Addr(o.worker),
                    nodes: self.workers,
                });
            }
        }
        Ok(())
    }
}

/// Result of one distributed exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistReport {
    /// Whether every chunk completed within the simulation horizon.
    pub completed: bool,
    /// Virtual time when the last chunk completed (µs).
    pub completion_time_us: u64,
    /// Total chunk executions performed by workers.
    pub chunk_executions: u64,
    /// Executions beyond the first per chunk (wasted work).
    pub duplicated_executions: u64,
    /// Messages sent / dropped on the network.
    pub messages_sent: u64,
    /// Messages dropped by loss or dead nodes.
    pub messages_dropped: u64,
}

#[derive(Debug, Default)]
struct Shared {
    executions_per_chunk: Vec<u64>,
    done: Vec<bool>,
    completion_time: Option<u64>,
}

const TAG_TASK: u8 = 1;
const TAG_DONE: u8 = 2;

fn msg(tag: u8, chunk: u32) -> Vec<u8> {
    let mut v = vec![tag];
    v.extend_from_slice(&chunk.to_le_bytes());
    v
}

fn parse(payload: &[u8]) -> Option<(u8, u32)> {
    if payload.len() != 5 {
        return None;
    }
    Some((
        payload[0],
        u32::from_le_bytes([payload[1], payload[2], payload[3], payload[4]]),
    ))
}

struct Worker {
    coordinator: Addr,
    work_us: u64,
    completed: HashSet<u32>,
    queue: std::collections::VecDeque<u32>,
    current: Option<u32>,
    shared: Rc<RefCell<Shared>>,
}

impl Worker {
    fn start_next(&mut self, ctx: &mut Ctx<'_>) {
        if self.current.is_none() {
            if let Some(next) = self.queue.pop_front() {
                self.current = Some(next);
                ctx.set_timer(self.work_us, u64::from(next));
            }
        }
    }
}

impl NetNode for Worker {
    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        let Some((TAG_TASK, chunk)) = parse(&payload) else {
            return;
        };
        if self.completed.contains(&chunk) {
            // Already did it (the Done was probably lost): answer cheaply.
            ctx.send(self.coordinator, msg(TAG_DONE, chunk));
            return;
        }
        if self.current == Some(chunk) {
            // Retransmission of the in-flight chunk — and the recovery
            // path after an outage discarded the work timer: restart it.
            // (A duplicate fire is harmless; stale fires are ignored.)
            ctx.set_timer(self.work_us, u64::from(chunk));
            return;
        }
        if !self.queue.contains(&chunk) {
            self.queue.push_back(chunk);
        }
        match self.current {
            None => self.start_next(ctx),
            Some(cur) => {
                // Kick the in-flight chunk in case its timer was lost to
                // an outage; guarded against double-completion below.
                ctx.set_timer(self.work_us, u64::from(cur));
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        let chunk = tag as u32;
        if self.completed.contains(&chunk) || self.current != Some(chunk) {
            return; // stale duplicate
        }
        self.completed.insert(chunk);
        self.shared.borrow_mut().executions_per_chunk[chunk as usize] += 1;
        ctx.send(self.coordinator, msg(TAG_DONE, chunk));
        self.current = None;
        self.start_next(ctx);
    }
}

struct Coordinator {
    workers: Vec<Addr>,
    n_chunks: u32,
    timeout_us: u64,
    partitioning: Partitioning,
    /// Static: fixed owner per chunk. Dynamic: last assignee.
    assignee: Vec<usize>,
    queue: Vec<u32>,
    done_count: u32,
    reassign_rr: usize,
    shared: Rc<RefCell<Shared>>,
}

impl Coordinator {
    fn assign(&mut self, chunk: u32, worker_idx: usize, ctx: &mut Ctx<'_>) {
        self.assignee[chunk as usize] = worker_idx;
        ctx.send(self.workers[worker_idx], msg(TAG_TASK, chunk));
        ctx.set_timer(self.timeout_us, u64::from(chunk));
    }
}

impl NetNode for Coordinator {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        match self.partitioning {
            Partitioning::Static => {
                for chunk in 0..self.n_chunks {
                    let w = (chunk as usize) % self.workers.len();
                    self.assign(chunk, w, ctx);
                }
            }
            Partitioning::Dynamic => {
                self.queue = (0..self.n_chunks).rev().collect();
                // Two-deep prefetch: keep each worker's local queue
                // non-empty across the Done/Task round trip.
                for _ in 0..2 {
                    for w in 0..self.workers.len() {
                        if let Some(chunk) = self.queue.pop() {
                            self.assign(chunk, w, ctx);
                        }
                    }
                }
            }
        }
    }

    fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        let Some((TAG_DONE, chunk)) = parse(&payload) else {
            return;
        };
        {
            let mut s = self.shared.borrow_mut();
            if !s.done[chunk as usize] {
                s.done[chunk as usize] = true;
                self.done_count += 1;
                if self.done_count == self.n_chunks {
                    s.completion_time = Some(ctx.now().0);
                }
            }
        }
        if self.partitioning == Partitioning::Dynamic {
            if let Some(next) = self.queue.pop() {
                let w = self.workers.iter().position(|a| *a == from).unwrap_or(0);
                self.assign(next, w, ctx);
            }
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {
        let chunk = tag as u32;
        if self.shared.borrow().done[chunk as usize] {
            return;
        }
        match self.partitioning {
            Partitioning::Static => {
                // Can only retry the pinned owner.
                let w = self.assignee[chunk as usize];
                self.assign(chunk, w, ctx);
            }
            Partitioning::Dynamic => {
                // Reassign to the next worker round-robin (skipping the
                // current assignee).
                self.reassign_rr += 1;
                let mut w = self.reassign_rr % self.workers.len();
                if w == self.assignee[chunk as usize] {
                    w = (w + 1) % self.workers.len();
                }
                self.assign(chunk, w, ctx);
            }
        }
    }
}

/// Runs one distributed exploration and reports completion/duplication
/// metrics.
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when [`DistConfig::validate`] rejects the
/// outage schedule or loss rate.
pub fn run_exploration(config: &DistConfig) -> Result<DistReport, FaultPlanError> {
    config.validate()?;
    let shared = Rc::new(RefCell::new(Shared {
        executions_per_chunk: vec![0; config.n_chunks as usize],
        done: vec![false; config.n_chunks as usize],
        completion_time: None,
    }));
    let mut sim = Sim::new(SimConfig {
        seed: config.seed,
        link: softborg_netsim::LinkConfig {
            base_latency_us: 2_000,
            jitter_us: 1_000,
            loss_per_mille: config.loss_per_mille,
        },
        max_events: 2_000_000,
        ..SimConfig::default()
    });
    // Reserve the coordinator's address first so workers can know it.
    // Workers are added first; coordinator last (it needs their addrs).
    let worker_addrs: Vec<Addr> = (0..config.workers)
        .map(|_| {
            sim.add_node(Box::new(Worker {
                coordinator: Addr(config.workers), // the next node added
                work_us: config.work_us_per_chunk,
                completed: HashSet::new(),
                queue: std::collections::VecDeque::new(),
                current: None,
                shared: shared.clone(),
            }))
        })
        .collect();
    let coordinator = sim.add_node(Box::new(Coordinator {
        workers: worker_addrs.clone(),
        n_chunks: config.n_chunks,
        timeout_us: config.timeout_us,
        partitioning: config.partitioning,
        assignee: vec![0; config.n_chunks as usize],
        queue: Vec::new(),
        done_count: 0,
        reassign_rr: 0,
        shared: shared.clone(),
    }));
    debug_assert_eq!(coordinator, Addr(config.workers));
    for o in &config.outages {
        // validate() already rejected out-of-range workers and inverted
        // windows; every entry schedules.
        sim.schedule_outage(Addr(o.worker), SimTime(o.at_us), SimTime(o.until_us));
    }
    // Horizon: generous multiple of the serial time.
    let serial = config.work_us_per_chunk * u64::from(config.n_chunks);
    sim.run_until(SimTime(serial * 20 + 10_000_000));

    let s = shared.borrow();
    let executions: u64 = s.executions_per_chunk.iter().sum();
    let duplicated: u64 = s
        .executions_per_chunk
        .iter()
        .map(|&e| e.saturating_sub(1))
        .sum();
    Ok(DistReport {
        completed: s.completion_time.is_some(),
        completion_time_us: s.completion_time.unwrap_or(sim.now().0),
        chunk_executions: executions,
        duplicated_executions: duplicated,
        messages_sent: sim.stats().sent,
        messages_dropped: sim.stats().dropped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(partitioning: Partitioning) -> DistConfig {
        DistConfig {
            workers: 4,
            n_chunks: 32,
            partitioning,
            ..DistConfig::default()
        }
    }

    #[test]
    fn lossless_runs_complete_without_duplication() {
        for p in [Partitioning::Static, Partitioning::Dynamic] {
            let r = run_exploration(&base(p)).expect("valid config");
            assert!(r.completed, "{p:?} did not complete");
            assert_eq!(r.duplicated_executions, 0, "{p:?} duplicated work");
            assert_eq!(r.chunk_executions, 32);
        }
    }

    #[test]
    fn dynamic_scales_with_workers() {
        let few = run_exploration(&DistConfig {
            workers: 2,
            ..base(Partitioning::Dynamic)
        })
        .expect("valid config");
        let many = run_exploration(&DistConfig {
            workers: 16,
            ..base(Partitioning::Dynamic)
        })
        .expect("valid config");
        assert!(few.completed && many.completed);
        assert!(
            many.completion_time_us < few.completion_time_us,
            "more workers should finish sooner: {} vs {}",
            many.completion_time_us,
            few.completion_time_us
        );
    }

    #[test]
    fn lossy_network_still_completes() {
        for p in [Partitioning::Static, Partitioning::Dynamic] {
            let r = run_exploration(&DistConfig {
                loss_per_mille: 150,
                ..base(p)
            })
            .expect("valid config");
            assert!(r.completed, "{p:?} under loss did not complete: {r:?}");
            assert!(r.messages_dropped > 0);
        }
    }

    #[test]
    fn outage_hurts_static_more_than_dynamic() {
        let outages = vec![Outage {
            worker: 0,
            at_us: 1_000,
            until_us: 2_000_000,
        }];
        let stat = run_exploration(&DistConfig {
            outages: outages.clone(),
            ..base(Partitioning::Static)
        })
        .expect("valid config");
        let dyn_ = run_exploration(&DistConfig {
            outages,
            ..base(Partitioning::Dynamic)
        })
        .expect("valid config");
        assert!(stat.completed && dyn_.completed);
        assert!(
            dyn_.completion_time_us < stat.completion_time_us,
            "dynamic should route around the outage: {} vs {}",
            dyn_.completion_time_us,
            stat.completion_time_us
        );
    }

    #[test]
    fn dynamic_reassignment_can_duplicate_work() {
        // Aggressive timeout + loss: dynamic reassigns chunks whose Done
        // messages were merely lost.
        let r = run_exploration(&DistConfig {
            loss_per_mille: 300,
            timeout_us: 30_000,
            seed: 3,
            ..base(Partitioning::Dynamic)
        })
        .expect("valid config");
        assert!(r.completed);
        assert!(
            r.duplicated_executions > 0,
            "expected duplicated work under loss: {r:?}"
        );
    }

    #[test]
    fn invalid_outages_fail_loudly_at_config_time() {
        let inverted = DistConfig {
            outages: vec![Outage {
                worker: 0,
                at_us: 5_000,
                until_us: 5_000,
            }],
            ..base(Partitioning::Dynamic)
        };
        assert!(matches!(
            run_exploration(&inverted),
            Err(FaultPlanError::WindowInverted { what: "outage", .. })
        ));
        let ghost = DistConfig {
            outages: vec![Outage {
                worker: 99,
                at_us: 0,
                until_us: 1,
            }],
            ..base(Partitioning::Dynamic)
        };
        assert!(matches!(
            run_exploration(&ghost),
            Err(FaultPlanError::NodeOutOfRange { what: "outage", .. })
        ));
        let drowned = DistConfig {
            loss_per_mille: 1500,
            ..base(Partitioning::Static)
        };
        assert!(matches!(
            run_exploration(&drowned),
            Err(FaultPlanError::RateOutOfRange {
                what: "loss_per_mille",
                per_mille: 1500
            })
        ));
    }

    #[test]
    fn reports_are_deterministic() {
        let cfg = DistConfig {
            loss_per_mille: 100,
            seed: 9,
            ..base(Partitioning::Dynamic)
        };
        assert_eq!(run_exploration(&cfg), run_exploration(&cfg));
    }
}
