//! The hive's write-ahead journal: accepted frames hit durable storage
//! *before* they are merged, so a crashed hive rebuilds exact state by
//! replay (Candea's crash-only lineage: recovery is the normal startup
//! path, not a special case).
//!
//! # Record format
//!
//! Every record is length-prefixed and checksummed, reusing the wire
//! layer's FNV-1a ([`wire::fnv1a`]):
//!
//! ```text
//! u32 body_len | u64 fnv1a(body) | body
//! body = u8 kind | u64 session | u64 seq | frame bytes
//! ```
//!
//! `kind` is [`REC_FRAME`] (the frame bytes are a wire batch frame,
//! [`wire::encode_batch`]), [`REC_TOMBSTONE`] (a shed frame: the sender
//! gave up on this sequence number under backpressure; the record holds
//! the slot so per-session sequence accounting survives recovery, but
//! contributes no traces), [`REC_PROMOTE`] (a fix promotion: the frame
//! bytes carry the promoted signature + overlay so replay re-applies the
//! fix pipeline's *decision* rather than re-running its search),
//! [`REC_ROUND`] (a platform round boundary: the frame bytes carry the
//! caller's opaque round metadata), or [`REC_ABORT`] (a fence written on
//! resume: everything since the previous round boundary belongs to a
//! round that never committed and must not be merged).
//!
//! # Durability model
//!
//! Appends go to a store ([`JournalStore`]) whose `sync` is the fsync
//! barrier: on a crash, everything after the last sync is lost
//! ([`MemJournal::crash`] truncates to the synced prefix — exactly what
//! a kernel would do to an unsynced file tail). [`scan`] tolerates that
//! by design: a truncated or corrupt tail is detected, counted, and
//! dropped — never panicked on — and every record *before* the tail is
//! recovered intact.
//!
//! [`wire::encode_batch`]: softborg_trace::wire::encode_batch
//! [`wire::fnv1a`]: softborg_trace::wire::fnv1a

use softborg_trace::wire;
use std::fmt;
use std::io::Write;

/// Record kind: the body carries a wire batch frame.
pub const REC_FRAME: u8 = 0;
/// Record kind: a shed (tombstoned) sequence slot; no frame bytes.
pub const REC_TOMBSTONE: u8 = 1;
/// Record kind: a fix promotion (signature + overlay bytes); written on
/// the [`SESSION_PROMOTE`] pseudo-session.
pub const REC_PROMOTE: u8 = 2;
/// Record kind: a platform round boundary carrying opaque caller
/// metadata; written on the [`SESSION_ROUND`] pseudo-session.
pub const REC_ROUND: u8 = 3;
/// Record kind: an abort fence — frames since the last [`REC_ROUND`]
/// belong to an uncommitted round and are discarded by replay.
pub const REC_ABORT: u8 = 4;
/// Record kind: a durable pod-state image for one platform lane
/// (`session` = lane index, `seq` = round index; the frame bytes carry
/// the platform's encoded pod population for that round). Written inside
/// the committed segment, before its [`REC_ROUND`], so replay restores
/// every pod mid-stream exactly as it was when the round committed.
pub const REC_PODS: u8 = 5;
/// Highest valid record kind; [`scan`] rejects anything above it.
const MAX_KIND: u8 = REC_PODS;

/// Pseudo-session carrying [`REC_ROUND`] / [`REC_ABORT`] records. Real
/// transport sessions are small pod indices, so the top of the `u64`
/// space is free.
pub const SESSION_ROUND: u64 = u64::MAX;
/// Pseudo-session carrying [`REC_PROMOTE`] records.
pub const SESSION_PROMOTE: u64 = u64::MAX - 1;

/// Fixed per-record header size: length prefix + checksum.
const HEADER: usize = 4 + 8;
/// Fixed body prefix: kind + session + seq.
const BODY_PREFIX: usize = 1 + 8 + 8;

/// One recovered journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Record kind ([`REC_FRAME`] or [`REC_TOMBSTONE`]).
    pub kind: u8,
    /// Session the frame arrived on.
    pub session: u64,
    /// Per-session sequence number.
    pub seq: u64,
    /// The wire batch frame (empty for tombstones).
    pub frame: Vec<u8>,
}

impl JournalRecord {
    /// On-disk size of this record (header + body), letting callers map
    /// a [`scan`] position back to a byte offset in the journal.
    pub fn encoded_len(&self) -> usize {
        HEADER + BODY_PREFIX + self.frame.len()
    }
}

/// Why a scan stopped before the end of the input. A clean stop (no
/// error, no bytes left) is represented by `None` in [`ScanReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailError {
    /// The input ended mid-record (crash during an unsynced append).
    Truncated,
    /// A record's checksum did not match its body (torn or bit-rotted
    /// write).
    ChecksumMismatch {
        /// Checksum stored in the record header.
        expected: u64,
        /// Checksum computed over the body actually read.
        got: u64,
    },
    /// A record carried an unknown kind byte.
    BadKind {
        /// The offending kind value.
        kind: u8,
    },
}

impl fmt::Display for TailError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TailError::Truncated => write!(f, "journal tail truncated mid-record"),
            TailError::ChecksumMismatch { expected, got } => write!(
                f,
                "journal record checksum mismatch: header says {expected:#018x}, body hashes to {got:#018x}"
            ),
            TailError::BadKind { kind } => write!(f, "journal record has unknown kind {kind}"),
        }
    }
}

impl std::error::Error for TailError {}

/// What a [`scan`] recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanReport {
    /// Records recovered intact.
    pub records: usize,
    /// Bytes of valid journal prefix (safe truncation point).
    pub valid_len: usize,
    /// Bytes dropped from the tail (truncated or corrupt).
    pub tail_dropped: usize,
    /// Why the tail was dropped, when it was.
    pub tail_error: Option<TailError>,
}

/// Appends one record to `buf` in the journal format.
pub fn append_record(buf: &mut Vec<u8>, kind: u8, session: u64, seq: u64, frame: &[u8]) {
    let body_len = BODY_PREFIX + frame.len();
    buf.reserve(HEADER + body_len);
    buf.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = buf.len() + 8;
    buf.extend_from_slice(&[0u8; 8]); // checksum placeholder
    buf.push(kind);
    buf.extend_from_slice(&session.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(frame);
    let checksum = wire::fnv1a(&buf[body_start..]);
    buf[body_start - 8..body_start].copy_from_slice(&checksum.to_le_bytes());
}

/// Scans journal bytes, recovering every intact record and dropping the
/// truncated or corrupt tail. Total: never panics, never allocates more
/// than the input justifies.
pub fn scan(bytes: &[u8]) -> (Vec<JournalRecord>, ScanReport) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    let mut report = ScanReport::default();
    loop {
        if pos == bytes.len() {
            break; // clean end
        }
        let Some((record, next)) = read_record(bytes, pos, &mut report.tail_error) else {
            break;
        };
        records.push(record);
        report.records += 1;
        pos = next;
        report.valid_len = pos;
    }
    report.valid_len = pos.min(bytes.len());
    // Anything between the last valid record and the end is the dropped
    // tail; recompute valid_len as the prefix boundary.
    report.valid_len = records_len(&records);
    report.tail_dropped = bytes.len() - report.valid_len;
    if report.tail_dropped > 0 && report.tail_error.is_none() {
        report.tail_error = Some(TailError::Truncated);
    }
    (records, report)
}

/// Per-session next-expected sequence numbers implied by scanned
/// records: for every real transport session (frames and tombstones;
/// pseudo-sessions are skipped), the highest journaled `seq + 1`. This
/// is the dedup floor a freshly started server must honor so a
/// retransmit of an already-journaled frame is re-acked, not re-merged.
pub fn session_floors(records: &[JournalRecord]) -> std::collections::BTreeMap<u64, u64> {
    let mut floors = std::collections::BTreeMap::new();
    for r in records {
        if r.kind == REC_FRAME || r.kind == REC_TOMBSTONE {
            let f = floors.entry(r.session).or_insert(0u64);
            *f = (*f).max(r.seq + 1);
        }
    }
    floors
}

/// Byte length the given records occupy on disk (the valid prefix).
fn records_len(records: &[JournalRecord]) -> usize {
    records
        .iter()
        .map(|r| HEADER + BODY_PREFIX + r.frame.len())
        .sum()
}

fn read_record(
    bytes: &[u8],
    pos: usize,
    tail_error: &mut Option<TailError>,
) -> Option<(JournalRecord, usize)> {
    let header_end = pos.checked_add(HEADER)?;
    if header_end > bytes.len() {
        *tail_error = Some(TailError::Truncated);
        return None;
    }
    let body_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
    let expected = u64::from_le_bytes(bytes[pos + 4..header_end].try_into().unwrap());
    if body_len < BODY_PREFIX || header_end.checked_add(body_len)? > bytes.len() {
        *tail_error = Some(TailError::Truncated);
        return None;
    }
    let body = &bytes[header_end..header_end + body_len];
    let got = wire::fnv1a(body);
    if got != expected {
        *tail_error = Some(TailError::ChecksumMismatch { expected, got });
        return None;
    }
    let kind = body[0];
    if kind > MAX_KIND {
        *tail_error = Some(TailError::BadKind { kind });
        return None;
    }
    let session = u64::from_le_bytes(body[1..9].try_into().unwrap());
    let seq = u64::from_le_bytes(body[9..17].try_into().unwrap());
    Some((
        JournalRecord {
            kind,
            session,
            seq,
            frame: body[BODY_PREFIX..].to_vec(),
        },
        header_end + body_len,
    ))
}

/// A failed journal I/O operation: which operation, the OS-level error
/// kind (e.g. `StorageFull` for ENOSPC), and the rendered message.
/// Cloneable so a server can latch the first fatal error and keep
/// refusing work with it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalIoError {
    /// The operation that failed (`"append"`, `"sync"`, …).
    pub op: &'static str,
    /// The underlying [`std::io::ErrorKind`].
    pub kind: std::io::ErrorKind,
    /// The rendered OS error message.
    pub msg: String,
}

impl JournalIoError {
    pub(crate) fn from_io(op: &'static str, e: &std::io::Error) -> Self {
        JournalIoError {
            op,
            kind: e.kind(),
            msg: e.to_string(),
        }
    }
}

impl fmt::Display for JournalIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal {} failed ({:?}): {}",
            self.op, self.kind, self.msg
        )
    }
}

impl std::error::Error for JournalIoError {}

/// Where journal bytes durably live. `sync` is the fsync barrier:
/// implementations guarantee everything appended before the last `sync`
/// survives a crash; anything after it may be lost.
///
/// Both mutating operations are fallible: a full disk (ENOSPC) or a
/// failed fsync is an *observed loss of durability* and must surface as
/// a typed [`JournalIoError`], never a panic and never a silent no-op —
/// the caller decides whether to refuse further acks.
pub trait JournalStore {
    /// Appends raw record bytes (not yet durable).
    ///
    /// # Errors
    ///
    /// Returns a [`JournalIoError`] when the bytes could not be staged
    /// (e.g. ENOSPC); on error none of `bytes` count toward [`len`](Self::len).
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalIoError>;
    /// Durability barrier; returns the synced length.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalIoError`] when the barrier itself failed —
    /// after which *nothing* appended since the last successful sync may
    /// be assumed durable.
    fn sync(&mut self) -> Result<u64, JournalIoError>;
    /// Total bytes appended (synced or not).
    fn len(&self) -> u64;
    /// `true` when nothing has been appended.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory store with an explicit crash model, used by the netsim
/// transport: [`MemJournal::crash`] discards the unsynced tail, exactly
/// as an OS would for an unsynced file.
#[derive(Debug, Clone, Default)]
pub struct MemJournal {
    buf: Vec<u8>,
    synced: usize,
    /// Number of sync barriers issued (an fsync-batching gauge).
    pub syncs: u64,
}

impl MemJournal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        MemJournal::default()
    }

    /// All bytes, including the unsynced tail.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// The prefix guaranteed to survive a crash.
    pub fn synced_bytes(&self) -> &[u8] {
        &self.buf[..self.synced]
    }

    /// Simulates a crash: the unsynced tail is lost. Returns how many
    /// bytes were dropped.
    pub fn crash(&mut self) -> usize {
        let lost = self.buf.len() - self.synced;
        self.buf.truncate(self.synced);
        lost
    }
}

impl JournalStore for MemJournal {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalIoError> {
        self.buf.extend_from_slice(bytes);
        Ok(())
    }

    fn sync(&mut self) -> Result<u64, JournalIoError> {
        if self.synced < self.buf.len() {
            self.syncs += 1;
        }
        self.synced = self.buf.len();
        Ok(self.synced as u64)
    }

    fn len(&self) -> u64 {
        self.buf.len() as u64
    }
}

/// A file-backed store for real deployments: appends buffer in the OS,
/// `sync` issues `File::sync_data`. Load it back with
/// [`FileJournal::read`] + [`scan`] — a torn tail from a real crash is
/// dropped by the same scan logic the simulator exercises.
#[derive(Debug)]
pub struct FileJournal {
    file: std::fs::File,
    path: std::path::PathBuf,
    len: u64,
}

/// Fsyncs the directory containing `path`, making a just-created or
/// just-renamed directory entry itself durable — without this, a machine
/// crash can lose the *file*, not merely its tail.
pub fn fsync_parent_dir(path: &std::path::Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    std::fs::File::open(parent)?.sync_all()
}

impl FileJournal {
    /// Opens (creating or appending to) the journal at `path`. If the
    /// file did not exist, the parent directory is fsynced so the new
    /// directory entry survives a machine crash.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn open(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        let existed = path.exists();
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)?;
        if !existed {
            fsync_parent_dir(&path)?;
        }
        let len = file.metadata()?.len();
        Ok(FileJournal { file, path, len })
    }

    /// The path this journal lives at.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Reads the whole journal back for a [`scan`].
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn read(&self) -> std::io::Result<Vec<u8>> {
        std::fs::read(&self.path)
    }

    /// Truncates the journal to `len` bytes and syncs — used after a
    /// snapshot made the prefix redundant (compaction) and by recovery
    /// to cut a damaged tail at the last valid record boundary.
    ///
    /// # Errors
    ///
    /// Returns a [`JournalIoError`] when truncation or the following
    /// sync fails; the in-memory length is only updated on success.
    pub fn truncate(&mut self, len: u64) -> Result<(), JournalIoError> {
        self.file
            .set_len(len)
            .map_err(|e| JournalIoError::from_io("truncate", &e))?;
        self.file
            .sync_data()
            .map_err(|e| JournalIoError::from_io("truncate-sync", &e))?;
        self.len = len;
        Ok(())
    }
}

impl JournalStore for FileJournal {
    fn append(&mut self, bytes: &[u8]) -> Result<(), JournalIoError> {
        // An append failure (ENOSPC, EIO) is an observed loss of
        // durability: report it and leave `len` untouched so the caller
        // refuses to ack anything relying on these bytes.
        self.file
            .write_all(bytes)
            .map_err(|e| JournalIoError::from_io("append", &e))?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<u64, JournalIoError> {
        self.file
            .sync_data()
            .map_err(|e| JournalIoError::from_io("sync", &e))?;
        Ok(self.len)
    }

    fn len(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<(u8, u64, u64, Vec<u8>)> {
        vec![
            (REC_FRAME, 1, 0, vec![0xAA; 20]),
            (REC_FRAME, 1, 1, vec![0xBB; 5]),
            (REC_TOMBSTONE, 1, 2, vec![]),
            (REC_FRAME, 7, 0, vec![1, 2, 3]),
        ]
    }

    fn build() -> Vec<u8> {
        let mut buf = Vec::new();
        for (k, s, q, f) in sample_records() {
            append_record(&mut buf, k, s, q, &f);
        }
        buf
    }

    #[test]
    fn roundtrip_all_records() {
        let buf = build();
        let (recs, report) = scan(&buf);
        assert_eq!(recs.len(), 4);
        assert_eq!(report.records, 4);
        assert_eq!(report.valid_len, buf.len());
        assert_eq!(report.tail_dropped, 0);
        assert_eq!(report.tail_error, None);
        for (rec, (k, s, q, f)) in recs.iter().zip(sample_records()) {
            assert_eq!(
                (rec.kind, rec.session, rec.seq, rec.frame.clone()),
                (k, s, q, f)
            );
        }
    }

    #[test]
    fn every_truncation_recovers_the_valid_prefix() {
        let buf = build();
        let (full, _) = scan(&buf);
        for cut in 0..buf.len() {
            let (recs, report) = scan(&buf[..cut]);
            assert!(recs.len() <= full.len());
            assert_eq!(&recs[..], &full[..recs.len()], "prefix property at {cut}");
            assert_eq!(report.valid_len + report.tail_dropped, cut);
            if report.tail_dropped > 0 {
                assert!(report.tail_error.is_some());
            }
        }
    }

    #[test]
    fn corrupt_byte_drops_tail_not_head() {
        let buf = build();
        // Corrupt a byte inside the third record's body.
        let mut corrupt = buf.clone();
        let third_start = {
            let (recs, _) = scan(&buf);
            (0..buf.len())
                .find(|&i| {
                    let (r, _) = scan(&buf[..i]);
                    r.len() == 2
                })
                .unwrap_or(0)
                .max(recs.len().min(1)) // silence unused warnings conservatively
        };
        corrupt[third_start + HEADER + 2] ^= 0xFF;
        let (recs, report) = scan(&corrupt);
        assert_eq!(recs.len(), 2, "records before the corruption survive");
        assert!(matches!(
            report.tail_error,
            Some(TailError::ChecksumMismatch { .. })
        ));
        assert!(report.tail_dropped > 0);
    }

    #[test]
    fn bad_kind_is_detected() {
        let mut buf = Vec::new();
        // Hand-build a record with kind 9 and a *valid* checksum.
        let mut body = vec![9u8];
        body.extend_from_slice(&1u64.to_le_bytes());
        body.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
        buf.extend_from_slice(&wire::fnv1a(&body).to_le_bytes());
        buf.extend_from_slice(&body);
        let (recs, report) = scan(&buf);
        assert!(recs.is_empty());
        assert_eq!(report.tail_error, Some(TailError::BadKind { kind: 9 }));
    }

    #[test]
    fn garbage_never_panics() {
        for seed in 0u8..32 {
            let junk: Vec<u8> = (0..257)
                .map(|i| (i as u8).wrapping_mul(seed ^ 0x5F))
                .collect();
            let _ = scan(&junk);
        }
    }

    #[test]
    fn mem_journal_crash_loses_only_unsynced_tail() {
        let mut j = MemJournal::new();
        let mut rec = Vec::new();
        append_record(&mut rec, REC_FRAME, 1, 0, b"abc");
        j.append(&rec).unwrap();
        j.sync().unwrap();
        let mut rec2 = Vec::new();
        append_record(&mut rec2, REC_FRAME, 1, 1, b"def");
        j.append(&rec2).unwrap();
        assert_eq!(j.len() as usize, rec.len() + rec2.len());
        let lost = j.crash();
        assert_eq!(lost, rec2.len());
        let (recs, report) = scan(j.bytes());
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(report.tail_dropped, 0);
        assert_eq!(j.syncs, 1);
    }

    #[test]
    fn sync_is_idempotent_and_counts_batches() {
        let mut j = MemJournal::new();
        j.sync().unwrap();
        j.sync().unwrap();
        assert_eq!(j.syncs, 0, "empty syncs are free");
        j.append(b"x").unwrap();
        j.sync().unwrap();
        j.sync().unwrap();
        assert_eq!(j.syncs, 1, "no-op syncs are not batches");
    }

    #[test]
    fn platform_record_kinds_roundtrip() {
        let mut buf = Vec::new();
        append_record(&mut buf, REC_PROMOTE, SESSION_PROMOTE, 0, b"overlay");
        append_record(&mut buf, REC_ROUND, SESSION_ROUND, 0, b"round-meta");
        append_record(&mut buf, REC_ABORT, SESSION_ROUND, 1, &[]);
        append_record(&mut buf, REC_PODS, 0, 2, b"pod-states");
        let (recs, report) = scan(&buf);
        assert_eq!(report.records, 4);
        assert_eq!(report.tail_error, None);
        assert_eq!(recs[0].kind, REC_PROMOTE);
        assert_eq!(recs[0].session, SESSION_PROMOTE);
        assert_eq!(recs[1].kind, REC_ROUND);
        assert_eq!(recs[1].frame, b"round-meta");
        assert_eq!(recs[2].kind, REC_ABORT);
        assert_eq!(recs[3].kind, REC_PODS);
        assert_eq!(recs[3].frame, b"pod-states");
    }

    #[test]
    fn session_floors_track_frames_not_pseudo_sessions() {
        let mut buf = Vec::new();
        append_record(&mut buf, REC_FRAME, 0, 0, b"a");
        append_record(&mut buf, REC_FRAME, 0, 3, b"b");
        append_record(&mut buf, REC_TOMBSTONE, 2, 5, &[]);
        append_record(&mut buf, REC_ROUND, SESSION_ROUND, 9, b"m");
        append_record(&mut buf, REC_PROMOTE, SESSION_PROMOTE, 9, b"o");
        let (recs, _) = scan(&buf);
        let floors = session_floors(&recs);
        assert_eq!(floors.get(&0), Some(&4), "max seq + 1");
        assert_eq!(floors.get(&2), Some(&6), "tombstones hold their slot");
        assert!(!floors.contains_key(&SESSION_ROUND));
        assert!(!floors.contains_key(&SESSION_PROMOTE));
    }

    #[test]
    fn file_journal_truncate_cuts_and_survives_reopen() {
        let path =
            std::env::temp_dir().join(format!("softborg-journal-trunc-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut rec = Vec::new();
        append_record(&mut rec, REC_FRAME, 1, 0, b"keep");
        {
            let mut j = FileJournal::open(&path).expect("open");
            j.append(&rec).unwrap();
            let mut rec2 = Vec::new();
            append_record(&mut rec2, REC_FRAME, 1, 1, b"cut");
            j.append(&rec2).unwrap();
            j.sync().unwrap();
            j.truncate(rec.len() as u64).unwrap();
            assert_eq!(j.len(), rec.len() as u64);
        }
        {
            let j = FileJournal::open(&path).expect("reopen");
            assert_eq!(j.len(), rec.len() as u64, "length survives reopen");
            let (recs, report) = scan(&j.read().unwrap());
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].frame, b"keep");
            assert_eq!(report.tail_dropped, 0);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_journal_append_after_truncate_to_zero_starts_fresh() {
        let path =
            std::env::temp_dir().join(format!("softborg-journal-reset-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut j = FileJournal::open(&path).expect("open");
            let mut rec = Vec::new();
            append_record(&mut rec, REC_FRAME, 1, 0, b"old");
            j.append(&rec).unwrap();
            j.sync().unwrap();
            j.truncate(0).unwrap();
            let mut rec2 = Vec::new();
            append_record(&mut rec2, REC_FRAME, 2, 0, b"new");
            j.append(&rec2).unwrap();
            j.sync().unwrap();
            let (recs, _) = scan(&j.read().unwrap());
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].session, 2);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_journal_roundtrips_through_disk() {
        let path =
            std::env::temp_dir().join(format!("softborg-journal-test-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let mut j = FileJournal::open(&path).expect("open");
            let mut rec = Vec::new();
            append_record(&mut rec, REC_FRAME, 3, 0, b"frame-bytes");
            j.append(&rec).unwrap();
            j.sync().unwrap();
            let bytes = j.read().expect("read");
            let (recs, report) = scan(&bytes);
            assert_eq!(recs.len(), 1);
            assert_eq!(recs[0].session, 3);
            assert_eq!(recs[0].frame, b"frame-bytes");
            assert_eq!(report.tail_dropped, 0);
        }
        let _ = std::fs::remove_file(&path);
    }
}
