//! Durability across *process lifetimes*: a journal cut at any byte
//! offset (crash) or bit-flipped (torn write) still recovers a clean
//! prefix; a restarted server seeded from that journal deduplicates
//! client resends instead of double-ingesting them; and checksummed
//! snapshots reject every corruption, falling back a generation when
//! the newest one is torn.

use proptest::prelude::*;
use softborg_hive::journal::{self, REC_FRAME, REC_TOMBSTONE};
use softborg_hive::snapshot::{HiveSnapshot, SnapshotSource, SnapshotStore};
use softborg_hive::transport::{run_reliable_ingest, run_reliable_ingest_resumed, TransportConfig};
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::IngestConfig;
use softborg_program::scenarios::{self, Scenario};
use softborg_trace::{wire, ExecutionTrace};
use std::collections::BTreeMap;

fn scenario(idx: usize) -> Scenario {
    match idx % 4 {
        0 => scenarios::token_parser(),
        1 => scenarios::triangle(),
        2 => scenarios::record_processor(),
        _ => scenarios::bank_transfer(),
    }
}

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = softborg_pod::Pod::new(
        &s.program,
        softborg_pod::PodConfig {
            input_range: s.input_range,
            seed,
            ..softborg_pod::PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

/// Splits `traces` into `pods` sessions of batch frames (priority 1).
fn sessions_of(traces: &[ExecutionTrace], pods: usize, batch: usize) -> Vec<Vec<(u8, Vec<u8>)>> {
    let mut out = vec![Vec::new(); pods.max(1)];
    for (i, chunk) in traces.chunks(batch.max(1)).enumerate() {
        out[i % pods.max(1)].push((1u8, wire::encode_batch(chunk)));
    }
    out
}

fn serial_hive<'p>(s: &'p Scenario, traces: &[ExecutionTrace]) -> Hive<'p> {
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    for t in traces {
        hive.ingest(t);
    }
    hive
}

fn assert_same_state(what: &str, a: &Hive<'_>, b: &Hive<'_>) {
    assert_eq!(a.stats(), b.stats(), "{what}: HiveStats diverged");
    assert_eq!(
        a.tree().digest(),
        b.tree().digest(),
        "{what}: tree digest diverged"
    );
    assert_eq!(a.coverage(), b.coverage(), "{what}: coverage diverged");
}

/// The satellite regression: the server process crashes *after* the
/// journal sync but *before* any ack reaches the clients. On restart
/// every client resends its whole session. A server seeded from the
/// prior journal re-acks the duplicates; a naive restart double-ingests
/// every trace.
#[test]
fn resends_after_restart_are_deduplicated_not_double_ingested() {
    let s = scenario(0);
    let traces = pod_traces(&s, 11, 36);
    let reference = serial_hive(&s, &traces);
    let sessions = sessions_of(&traces, 3, 3);
    let cfg = TransportConfig::default();

    let mut first = Hive::new(&s.program, HiveConfig::default());
    let (report, _) =
        run_reliable_ingest(&mut first, sessions.clone(), &IngestConfig::default(), &cfg)
            .expect("valid default plan");
    assert!(report.completed);
    let prior = report.journal;

    // Restart: the hive rebuilds from its journal, the clients (which
    // never saw an ack) resend everything.
    let (mut restarted, rec) = Hive::recover(
        &s.program,
        HiveConfig::default(),
        &IngestConfig::default(),
        &prior,
    );
    assert!(!rec.tail_damaged);
    let (resumed, _) = run_reliable_ingest_resumed(
        &mut restarted,
        sessions.clone(),
        &IngestConfig::default(),
        &cfg,
        &prior,
    )
    .expect("valid default plan");
    let total_frames = sessions.iter().map(Vec::len).sum::<usize>() as u64;
    assert!(
        resumed.completed,
        "resends must still be acked: {resumed:?}"
    );
    assert_eq!(resumed.delivered, 0, "every resend must be deduplicated");
    assert_eq!(resumed.acked, 0, "dedup re-acks must not re-journal");
    assert!(
        resumed.duplicates >= total_frames,
        "every resent frame should be recognized: {resumed:?}"
    );
    assert_same_state("resumed restart vs serial", &reference, &restarted);

    // Negative control: without seeding, the restarted server happily
    // ingests every frame a second time.
    let (mut naive, _) = Hive::recover(
        &s.program,
        HiveConfig::default(),
        &IngestConfig::default(),
        &prior,
    );
    let (naive_report, _) =
        run_reliable_ingest(&mut naive, sessions, &IngestConfig::default(), &cfg)
            .expect("valid default plan");
    assert!(naive_report.completed);
    assert_eq!(
        naive.stats().traces,
        2 * reference.stats().traces,
        "control arm should expose the double-ingest hole"
    );
}

/// Crash part-way through the stream: some frames synced (and possibly
/// acked), the rest still owned by the clients. Recovery + a seeded
/// resumed run lands on exactly the serial state — nothing lost,
/// nothing duplicated.
#[test]
fn partial_journal_resume_completes_without_loss_or_duplication() {
    let s = scenario(2);
    let traces = pod_traces(&s, 23, 40);
    let reference = serial_hive(&s, &traces);
    let sessions = sessions_of(&traces, 4, 2);
    let cfg = TransportConfig::default();

    let mut first = Hive::new(&s.program, HiveConfig::default());
    let (report, _) =
        run_reliable_ingest(&mut first, sessions.clone(), &IngestConfig::default(), &cfg)
            .expect("valid default plan");
    // The crash cuts the journal mid-byte; scan finds the record
    // boundary for us.
    let cut = report.journal.len() * 3 / 5;
    let (records, scan) = journal::scan(&report.journal[..cut]);
    let prior = &report.journal[..scan.valid_len];
    let survivors: u64 = records.iter().filter(|r| r.kind == REC_FRAME).count() as u64;

    let (mut restarted, _) = Hive::recover(
        &s.program,
        HiveConfig::default(),
        &IngestConfig::default(),
        prior,
    );
    let (resumed, _) = run_reliable_ingest_resumed(
        &mut restarted,
        sessions,
        &IngestConfig::default(),
        &cfg,
        prior,
    )
    .expect("valid default plan");
    assert!(resumed.completed);
    assert_eq!(
        resumed.delivered + survivors,
        report.acked,
        "resumed run must deliver exactly the frames the crash lost"
    );
    assert_same_state("partial resume vs serial", &reference, &restarted);
}

/// Deterministic bytes for snapshot proptests (the vendored proptest
/// has no collection strategies — derive content from a seed instead).
fn seeded_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x & 0xFF) as u8
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any crash offset and any single bit-flip leave a scannable
    /// journal prefix whose replay equals a serial ingest of exactly the
    /// surviving frames — and a server seeded from that prefix finishes
    /// the stream to the full serial state.
    #[test]
    fn any_crash_offset_recovers_a_prefix_and_resume_finishes_the_stream(
        scenario_idx in 0usize..4,
        seed in 0u64..500,
        n in 4usize..30,
        pods in 1usize..4,
        batch in 1usize..5,
        cut_seed in 0usize..10_000,
        // Sentinel: 0 = no bit flip, else flips bit (flip - 1) % bits.
        flip in 0u64..5_000,
    ) {
        let s = scenario(scenario_idx);
        let traces = pod_traces(&s, seed, n);
        let reference = serial_hive(&s, &traces);
        let sessions = sessions_of(&traces, pods, batch);
        let cfg = TransportConfig { seed: seed ^ 0xD15C, ..TransportConfig::default() };

        let mut live = Hive::new(&s.program, HiveConfig::default());
        let (report, _) = run_reliable_ingest(
            &mut live, sessions.clone(), &IngestConfig::default(), &cfg,
        ).expect("valid default plan");
        prop_assert!(report.completed);

        // Crash: keep an arbitrary prefix, then maybe flip one bit in it.
        let mut damaged = report.journal[..cut_seed % (report.journal.len() + 1)].to_vec();
        if flip > 0 && !damaged.is_empty() {
            let bit = (flip - 1) as usize % (damaged.len() * 8);
            damaged[bit / 8] ^= 1 << (bit % 8);
        }

        // The scan yields a prefix of intact records with consistent
        // session floors.
        let (records, scan) = journal::scan(&damaged);
        prop_assert!(scan.valid_len <= damaged.len());
        prop_assert_eq!(scan.valid_len + scan.tail_dropped, damaged.len());
        let mut floors: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &records {
            if r.kind == REC_FRAME || r.kind == REC_TOMBSTONE {
                let f = floors.entry(r.session).or_insert(0);
                *f = (*f).max(r.seq + 1);
            }
        }
        prop_assert_eq!(&journal::session_floors(&records), &floors);

        // Recovery equals a serial ingest of exactly the frames that
        // survived the crash.
        let (recovered, rec) = Hive::recover(
            &s.program, HiveConfig::default(), &IngestConfig::default(), &damaged,
        );
        prop_assert_eq!(rec.tail_dropped, scan.tail_dropped as u64);
        let mut survivors = Vec::new();
        for r in records.iter().filter(|r| r.kind == REC_FRAME) {
            survivors.extend(wire::decode_batch(&r.frame).expect("intact record decodes"));
        }
        prop_assert_eq!(rec.frames_replayed + rec.tombstones_skipped, records.len() as u64);
        let partial_reference = serial_hive(&s, &survivors);
        assert_same_state("recovered vs surviving prefix", &partial_reference, &recovered);

        // A server seeded from the surviving prefix finishes the stream:
        // resent frames below the floor are deduplicated, the rest are
        // ingested once — landing on the full serial state.
        let mut restarted = recovered;
        let (resumed, _) = run_reliable_ingest_resumed(
            &mut restarted, sessions, &IngestConfig::default(), &cfg,
            &damaged[..scan.valid_len],
        ).expect("valid default plan");
        prop_assert!(resumed.completed);
        assert_same_state("crash + resume vs serial", &reference, &restarted);
    }

    /// Snapshot decode is a total function: the encoding roundtrips,
    /// and *every* truncation and every single-bit flip is rejected —
    /// never mis-decoded. A store whose newest snapshot is torn falls
    /// back to the previous generation.
    #[test]
    fn snapshot_corruption_is_always_detected_and_store_falls_back(
        state_seed in 0u64..1_000,
        state_len in 0usize..300,
        n_sessions in 0u64..5,
        wal_covered in 0u64..100_000,
        meta_len in 0usize..60,
        cut_pct in 0usize..100,
        flip in 0u64..4_000,
    ) {
        let snap = HiveSnapshot {
            state: seeded_bytes(state_seed, state_len),
            sessions: (0..n_sessions).map(|i| (i, state_seed.wrapping_add(i))).collect(),
            wal_covered,
            wal_covered_hash: state_seed.rotate_left(17),
            app_meta: seeded_bytes(!state_seed, meta_len),
        };
        let bytes = snap.encode();
        prop_assert_eq!(&HiveSnapshot::decode(&bytes).expect("roundtrip"), &snap);

        let cut = bytes.len() * cut_pct / 100;
        prop_assert!(
            HiveSnapshot::decode(&bytes[..cut]).is_err(),
            "truncation to {cut}/{} bytes must be rejected", bytes.len()
        );
        let mut flipped = bytes.clone();
        let bit = flip as usize % (flipped.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            HiveSnapshot::decode(&flipped).is_err(),
            "bit flip at {bit} must be rejected"
        );

        // Generational fallback: write two snapshots, tear the newest.
        let dir = std::env::temp_dir().join(format!(
            "softborg-snapprop-{}-{state_seed}-{cut_pct}-{flip}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).expect("store dir");
        let older = HiveSnapshot { wal_covered: wal_covered ^ 1, ..snap.clone() };
        store.write_snapshot(&older).expect("write older");
        store.write_snapshot(&snap).expect("write newer");
        std::fs::write(store.snap_path(), &bytes[..cut]).expect("tear newest");
        let (loaded, load) = store.load();
        prop_assert_eq!(load.source, SnapshotSource::Fallback);
        prop_assert!(load.primary_error.is_some());
        prop_assert_eq!(&loaded.expect("previous generation verifies"), &older);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
