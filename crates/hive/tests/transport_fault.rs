//! The reliable transport's end-to-end guarantee: for any fault plan —
//! loss, duplication, reordering, partitions, a hive crash + recovery
//! mid-stream — the hive fed over the network converges to *exactly* the
//! state of a fault-free serial ingest of the same traces, and a hive
//! rebuilt from the write-ahead journal ([`Hive::recover`]) matches both.

use proptest::prelude::*;
use softborg_hive::transport::{run_reliable_ingest, TransportConfig};
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::IngestConfig;
use softborg_netsim::{Addr, Crash, FaultPlan, LinkConfig, Partition};
use softborg_pod::{Pod, PodConfig};
use softborg_program::scenarios::{self, Scenario};
use softborg_trace::{wire, ExecutionTrace};

fn scenario(idx: usize) -> Scenario {
    match idx % 4 {
        0 => scenarios::token_parser(),
        1 => scenarios::triangle(),
        2 => scenarios::record_processor(),
        _ => scenarios::bank_transfer(),
    }
}

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

/// Splits `traces` into `pods` sessions of batch frames (priority 1).
fn sessions_of(traces: &[ExecutionTrace], pods: usize, batch: usize) -> Vec<Vec<(u8, Vec<u8>)>> {
    let mut out = vec![Vec::new(); pods.max(1)];
    for (i, chunk) in traces.chunks(batch.max(1)).enumerate() {
        out[i % pods.max(1)].push((1u8, wire::encode_batch(chunk)));
    }
    out
}

fn serial_hive<'p>(s: &'p Scenario, traces: &[ExecutionTrace]) -> Hive<'p> {
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    for t in traces {
        hive.ingest(t);
    }
    hive
}

fn assert_same_state(what: &str, a: &Hive<'_>, b: &Hive<'_>) {
    assert_eq!(a.stats(), b.stats(), "{what}: HiveStats diverged");
    assert_eq!(
        a.tree().digest(),
        b.tree().digest(),
        "{what}: tree digest diverged"
    );
    assert_eq!(a.coverage(), b.coverage(), "{what}: coverage diverged");
    assert_eq!(
        a.diagnoses().len(),
        b.diagnoses().len(),
        "{what}: diagnosis count diverged"
    );
}

#[test]
fn lossless_transport_equals_serial_ingest() {
    let s = scenario(0);
    let traces = pod_traces(&s, 42, 30);
    let reference = serial_hive(&s, &traces);

    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let (report, stats) = run_reliable_ingest(
        &mut hive,
        sessions_of(&traces, 3, 4),
        &IngestConfig::default(),
        &TransportConfig {
            // Zero jitter: a genuinely in-order network, so any
            // retransmission would be a protocol bug.
            link: LinkConfig {
                jitter_us: 0,
                ..LinkConfig::default()
            },
            ..TransportConfig::default()
        },
    )
    .expect("valid default plan");
    assert!(report.completed, "fault-free run must complete: {report:?}");
    assert_eq!(report.retransmits, 0, "no loss → no retransmits");
    assert_eq!(report.shed, 0);
    assert_eq!(stats.traces_merged, 30);
    assert_same_state("transport vs serial", &reference, &hive);
}

#[test]
fn crash_mid_stream_recovers_from_journal() {
    let s = scenario(2);
    let traces = pod_traces(&s, 7, 48);
    let reference = serial_hive(&s, &traces);
    let pods = 4;
    let cfg = TransportConfig {
        seed: 9,
        faults: FaultPlan {
            crashes: vec![Crash {
                node: Addr(pods as u32), // the hive server
                at_us: 12_000,
                restart_us: 40_000,
            }],
            ..FaultPlan::default()
        },
        ..TransportConfig::default()
    };
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let (report, _) = run_reliable_ingest(
        &mut hive,
        sessions_of(&traces, pods, 3),
        &IngestConfig::default(),
        &cfg,
    )
    .expect("valid plan");
    assert!(
        report.completed,
        "must complete through the crash: {report:?}"
    );
    assert_eq!(report.recoveries, 1);
    assert_same_state("crashed transport vs serial", &reference, &hive);

    // The journal alone rebuilds the same hive.
    let (recovered, rec) = Hive::recover(
        &s.program,
        HiveConfig::default(),
        &IngestConfig::default(),
        &report.journal,
    );
    assert_eq!(rec.frames_replayed, report.acked - report.tombstones);
    assert!(!rec.tail_damaged, "synced journal has no damaged tail");
    assert_same_state("recovered vs live", &hive, &recovered);
}

#[test]
fn backpressure_sheds_lowest_priority_first_and_journals_tombstones() {
    let s = scenario(1);
    let traces = pod_traces(&s, 3, 40);
    // One high-priority frame per session; the rest are priority 0 and
    // fair game for shedding under a starved server.
    let mut pods = sessions_of(&traces, 2, 2);
    for frames in &mut pods {
        for (p, _) in frames.iter_mut().skip(1) {
            *p = 0;
        }
    }
    let cfg = TransportConfig {
        seed: 4,
        busy_budget: 1,           // server pushes back almost immediately
        sync_interval_us: 40_000, // slow fsync → long pressure windows
        ack_timeout_us: 2_000,
        shed_budget: 2,
        ..TransportConfig::default()
    };
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let (report, _) =
        run_reliable_ingest(&mut hive, pods, &IngestConfig::default(), &cfg).expect("valid plan");
    assert!(
        report.completed,
        "shedding must not stall the stream: {report:?}"
    );
    assert!(
        report.busy_nacks > 0,
        "server never pushed back: {report:?}"
    );
    assert!(report.shed > 0, "no frames shed under pressure: {report:?}");
    assert_eq!(
        report.tombstones, report.shed,
        "every shed frame must be journaled as a tombstone"
    );
    // Whatever survived, the journal replay agrees with the live hive.
    let (recovered, _) = Hive::recover(
        &s.program,
        HiveConfig::default(),
        &IngestConfig::default(),
        &report.journal,
    );
    assert_same_state("recovered vs live (shed run)", &hive, &recovered);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The acceptance property: any composition of loss, duplication,
    /// reordering, a healing partition, and a mid-stream server crash
    /// still converges to the fault-free serial state — and the journal
    /// replay rebuilds it identically.
    #[test]
    fn any_fault_plan_converges_to_serial_state(
        scenario_idx in 0usize..4,
        seed in 0u64..500,
        n in 4usize..36,
        pods in 1usize..4,
        batch in 1usize..5,
        loss in 0u32..=200,
        dup in 0u32..=200,
        reorder in 0u32..=300,
        // Sentinel encodings (the vendored proptest has no option
        // strategy): partition_pod 3 = no partition; crash_at below
        // 5_000 = no crash.
        partition_pod in 0usize..4,
        crash_at in 0u64..60_000,
    ) {
        let s = scenario(scenario_idx);
        let traces = pod_traces(&s, seed, n);
        let reference = serial_hive(&s, &traces);
        let server = Addr(pods as u32);
        let mut faults = FaultPlan {
            dup_per_mille: dup,
            reorder_per_mille: reorder,
            reorder_window_us: if reorder > 0 { 20_000 } else { 0 },
            ..FaultPlan::default()
        };
        if partition_pod < 3 {
            faults.partitions.push(Partition {
                a: Addr((partition_pod % pods) as u32),
                b: server,
                from_us: 2_000,
                until_us: 30_000, // heals; retransmits resume after
            });
        }
        if crash_at >= 5_000 {
            faults.crashes.push(Crash {
                node: server,
                at_us: crash_at,
                restart_us: crash_at + 15_000,
            });
        }
        let cfg = TransportConfig {
            seed: seed ^ 0x5EED,
            link: LinkConfig {
                loss_per_mille: loss,
                ..LinkConfig::default()
            },
            faults,
            ack_timeout_us: 8_000,
            ..TransportConfig::default()
        };
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let (report, stats) = run_reliable_ingest(
            &mut hive,
            sessions_of(&traces, pods, batch),
            &IngestConfig::default(),
            &cfg,
        ).expect("generated plans are valid");

        prop_assert!(report.completed, "stream did not complete: {report:?}");
        prop_assert_eq!(report.shed, 0, "budget disabled, nothing may shed");
        prop_assert_eq!(stats.traces_merged, n as u64);
        prop_assert_eq!(stats.frames_corrupt, 0);
        // Zero lost accepted frames: everything acked is in the journal,
        // and every frame was eventually accepted exactly once.
        prop_assert_eq!(report.acked, report.delivered + report.tombstones);
        assert_same_state("faulty transport vs serial", &reference, &hive);

        let (recovered, rec) = Hive::recover(
            &s.program,
            HiveConfig::default(),
            &IngestConfig::default(),
            &report.journal,
        );
        prop_assert_eq!(rec.frames_replayed, report.delivered);
        assert_same_state("journal replay vs serial", &reference, &recovered);
    }
}
