//! The pipelined batch-ingest path must be observably identical to the
//! serial `Hive::ingest` loop — same `HiveStats`, same tree digest, same
//! coverage — for *any* batch size, worker count, and queue bound, and
//! corrupt frames must be counted and skipped without panicking.

use proptest::prelude::*;
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::{BackpressurePolicy, IngestConfig, MemoMode};
use softborg_pod::{Pod, PodConfig};
use softborg_program::scenarios::{self, Scenario};
use softborg_trace::{wire, ExecutionTrace};

fn scenario(idx: usize) -> Scenario {
    match idx % 4 {
        0 => scenarios::token_parser(),
        1 => scenarios::triangle(),
        2 => scenarios::record_processor(),
        _ => scenarios::bank_transfer(),
    }
}

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

fn frames_of(traces: &[ExecutionTrace], batch: usize) -> Vec<Vec<u8>> {
    traces
        .chunks(batch.max(1))
        .map(wire::encode_batch)
        .collect()
}

/// Serial reference: ingest every trace with the classic single-trace
/// entry point.
fn serial_hive<'p>(s: &'p Scenario, traces: &[ExecutionTrace]) -> Hive<'p> {
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    for t in traces {
        hive.ingest(t);
    }
    hive
}

fn assert_same_state(a: &Hive<'_>, b: &Hive<'_>) {
    assert_eq!(a.stats(), b.stats(), "HiveStats diverged");
    assert_eq!(a.tree().digest(), b.tree().digest(), "tree digest diverged");
    assert_eq!(a.coverage(), b.coverage(), "coverage diverged");
    assert_eq!(
        a.diagnoses().len(),
        b.diagnoses().len(),
        "diagnosis count diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any workload, trace count, batch size, worker count, and
    /// queue capacity, pipelined ingest reproduces serial ingest
    /// exactly.
    #[test]
    fn pipelined_equals_serial(
        scenario_idx in 0usize..4,
        seed in 0u64..1_000,
        n in 1usize..48,
        batch in 1usize..17,
        workers in 1usize..5,
        queue_capacity in 1usize..9,
        memo in 0usize..2,
        shared_memo in 0usize..2,
    ) {
        let s = scenario(scenario_idx);
        let traces = pod_traces(&s, seed, n);
        let reference = serial_hive(&s, &traces);

        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let stats = hive.ingest_batch(
            frames_of(&traces, batch),
            &IngestConfig {
                workers,
                queue_capacity,
                merge_capacity: queue_capacity,
                policy: BackpressurePolicy::Block,
                // Exercise the recycling path, the cold path, and the
                // pool-shared cache.
                memo_capacity: memo * 4096,
                memo_mode: if shared_memo == 1 {
                    MemoMode::Shared { stripes: 8 }
                } else {
                    MemoMode::PerWorker
                },
                ..IngestConfig::default()
            },
        );
        assert_same_state(&reference, &hive);
        prop_assert_eq!(stats.frames_corrupt, 0);
        prop_assert_eq!(stats.frames_dropped, 0);
        prop_assert_eq!(stats.traces_merged, n as u64);
        prop_assert_eq!(stats.frames_merged, frames_of(&traces, batch).len() as u64);
    }
}

#[test]
fn corrupt_frame_is_counted_and_skipped() {
    let s = scenarios::token_parser();
    let traces = pod_traces(&s, 7, 30);
    // Serial reference sees only the surviving traces (first and last
    // ten): the middle frame will be corrupted.
    let surviving: Vec<ExecutionTrace> =
        traces[..10].iter().chain(&traces[20..]).cloned().collect();
    let reference = serial_hive(&s, &surviving);

    let mut frames = frames_of(&traces, 10);
    assert_eq!(frames.len(), 3);
    // Flip a payload byte in the middle frame: checksum must catch it.
    let mid = frames[1].len() / 2;
    frames[1][mid] ^= 0xA5;

    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let stats = hive.ingest_batch(frames, &IngestConfig::default());
    assert_eq!(stats.frames_corrupt, 1, "corruption must be counted");
    assert_eq!(
        stats.frames_merged, 3,
        "corrupt frame still consumes its slot"
    );
    assert_eq!(stats.traces_merged, 20);
    assert_same_state(&reference, &hive);
}

#[test]
fn truncated_and_garbage_frames_never_panic() {
    let s = scenarios::triangle();
    let traces = pod_traces(&s, 1, 8);
    let good = wire::encode_batch(&traces);
    for cut in 0..good.len() {
        let mut hive = Hive::new(&s.program, HiveConfig::default());
        let stats = hive.ingest_batch(vec![good[..cut].to_vec()], &IngestConfig::default());
        assert_eq!(stats.frames_corrupt, 1, "cut at {cut}");
        assert_eq!(hive.stats().traces, 0);
    }
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let garbage = vec![vec![0xFF; 64], Vec::new(), vec![0x00; 3]];
    let stats = hive.ingest_batch(garbage, &IngestConfig::default());
    assert_eq!(stats.frames_corrupt, 3);
}

#[test]
fn unknown_overlay_version_counts_unreconstructed_in_both_paths() {
    let s = scenarios::token_parser();
    let mut traces = pod_traces(&s, 3, 12);
    for t in traces.iter_mut().skip(6) {
        t.overlay_version = 99; // version the hive never distributed
    }
    let reference = serial_hive(&s, &traces);
    assert_eq!(reference.stats().unreconstructed, 6);

    let mut hive = Hive::new(&s.program, HiveConfig::default());
    hive.ingest_batch(frames_of(&traces, 5), &IngestConfig::default());
    assert_same_state(&reference, &hive);
}

#[test]
fn drop_oldest_sheds_frames_but_keeps_accounting_consistent() {
    let s = scenarios::token_parser();
    let traces = pod_traces(&s, 11, 200);
    let frames = frames_of(&traces, 2);
    let n_frames = frames.len() as u64;
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let stats = hive.ingest_batch(
        frames,
        &IngestConfig {
            workers: 1,
            queue_capacity: 1,
            merge_capacity: 1,
            policy: BackpressurePolicy::DropOldest,
            memo_capacity: 0,
            ..IngestConfig::default()
        },
    );
    assert_eq!(stats.frames_submitted, n_frames);
    assert_eq!(
        stats.frames_merged + stats.frames_dropped,
        n_frames,
        "every frame is either merged or accounted as dropped"
    );
    assert_eq!(hive.stats().traces, stats.traces_merged);
    // Whatever survived must have been merged in order and reconstruct
    // cleanly.
    assert_eq!(hive.stats().unreconstructed, 0);
}
