//! Property suite for the durable [`PodState`] encoding: arbitrary
//! state → encode → corrupt-or-not → decode. The contract is exactly
//! two-sided: pristine bytes decode to the identical state, and *any*
//! corruption (single byte flip, truncation, trailing garbage) is a
//! typed error — the storage layer may lose a pod image, but it may
//! never silently resurrect a different population.

use proptest::prelude::*;
use softborg_fix::TestCase;
use softborg_guidance::Directive;
use softborg_pod::{Pod, PodConfig, PodState};
use softborg_program::interp::{CrashKind, Outcome};
use softborg_program::sched::ScheduleHint;
use softborg_program::syscall::{EnvConfig, ForcedFault};
use softborg_program::{cfg::Loc, scenarios, BlockId, BranchSiteId, LockId, ThreadId};

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministically synthesizes a populated state from one seed (the
/// vendored proptest has no recursive collection strategies, so content
/// is derived rather than composed).
fn synth_state(seed: u64) -> PodState {
    let mut z = seed;
    let mut rng = [0u64; 4];
    for w in &mut rng {
        *w = splitmix(&mut z);
    }
    let case = |z: &mut u64| TestCase {
        inputs: (0..(splitmix(z) % 4)).map(|_| splitmix(z) as i64).collect(),
        schedule: (0..(splitmix(z) % 5))
            .map(|_| ThreadId::new((splitmix(z) % 3) as u32))
            .collect(),
        env: EnvConfig {
            seed: splitmix(z),
            short_read_per_mille: (splitmix(z) % 1001) as u32,
            open_fail_per_mille: (splitmix(z) % 1001) as u32,
            fd_limit: (splitmix(z) % 64) as u32,
            forced: (0..(splitmix(z) % 3))
                .map(|_| ForcedFault {
                    call_index: splitmix(z) % 100,
                    ret: splitmix(z) as i64 % 128,
                })
                .collect(),
        },
    };
    let outcome = |z: &mut u64| match splitmix(z) % 4 {
        0 => Outcome::Success,
        1 => Outcome::Crash {
            loc: Loc {
                thread: ThreadId::new((splitmix(z) % 4) as u32),
                block: BlockId::new((splitmix(z) % 16) as u32),
                stmt: (splitmix(z) % 8) as u32,
            },
            kind: match splitmix(z) % 4 {
                0 => CrashKind::AssertFailed,
                1 => CrashKind::DivByZero,
                2 => CrashKind::RemByZero,
                _ => CrashKind::UnlockNotHeld,
            },
        },
        2 => Outcome::Deadlock {
            cycle: (0..1 + (splitmix(z) % 3))
                .map(|_| {
                    (
                        ThreadId::new((splitmix(z) % 4) as u32),
                        LockId::new((splitmix(z) % 4) as u32),
                    )
                })
                .collect(),
        },
        _ => Outcome::Hang {
            stuck: (0..1 + (splitmix(z) % 2))
                .map(|_| Loc {
                    thread: ThreadId::new((splitmix(z) % 4) as u32),
                    block: BlockId::new((splitmix(z) % 16) as u32),
                    stmt: (splitmix(z) % 8) as u32,
                })
                .collect(),
        },
    };
    let directive = |z: &mut u64| match splitmix(z) % 3 {
        0 => Directive::InputSeed {
            inputs: (0..(splitmix(z) % 4)).map(|_| splitmix(z) as i64).collect(),
            target: (
                BranchSiteId::new((splitmix(z) % 32) as u32),
                splitmix(z).is_multiple_of(2),
            ),
        },
        1 => Directive::Schedule(ScheduleHint {
            order: (0..(splitmix(z) % 4))
                .map(|_| ThreadId::new((splitmix(z) % 4) as u32))
                .collect(),
            bias_per_mille: (splitmix(z) % 1001) as u32,
        }),
        _ => Directive::FaultInjection {
            forced: (0..(splitmix(z) % 3))
                .map(|_| ForcedFault {
                    call_index: splitmix(z) % 64,
                    ret: -((splitmix(z) % 3) as i64),
                })
                .collect(),
            short_read_per_mille: (splitmix(z) % 1001) as u32,
        },
    };
    PodState {
        rng,
        overlay: softborg_program::Overlay::empty(),
        overlay_version: splitmix(&mut z) % 100,
        directives: (0..(splitmix(&mut z) % 5))
            .map(|_| directive(&mut z))
            .collect(),
        stats: softborg_pod::PodStats {
            executions: splitmix(&mut z) % 10_000,
            failures: splitmix(&mut z) % 1000,
            directed: splitmix(&mut z) % 1000,
            overlay_hits: splitmix(&mut z) % 1000,
        },
        failing_cases: (0..(splitmix(&mut z) % 4))
            .map(|_| (case(&mut z), outcome(&mut z)))
            .collect(),
        passing_cases: (0..(splitmix(&mut z) % 5)).map(|_| case(&mut z)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pristine_bytes_roundtrip_exactly(seed in any::<u64>()) {
        let state = synth_state(seed);
        let bytes = state.encode();
        prop_assert_eq!(PodState::decode(&bytes).expect("pristine decode"), state);
    }

    #[test]
    fn any_single_byte_corruption_is_a_typed_error(
        seed in any::<u64>(),
        at in any::<u32>(),
        flip in 1u8..=255,
    ) {
        let bytes = synth_state(seed).encode();
        let mut bad = bytes.clone();
        let i = at as usize % bad.len();
        bad[i] ^= flip;
        prop_assert!(
            PodState::decode(&bad).is_err(),
            "corruption at byte {} (xor {:#04x}) was silently accepted", i, flip
        );
    }

    #[test]
    fn any_truncation_is_a_typed_error(seed in any::<u64>(), cut in any::<u32>()) {
        let bytes = synth_state(seed).encode();
        let cut = cut as usize % bytes.len();
        prop_assert!(PodState::decode(&bytes[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn exported_pod_state_roundtrips_after_real_executions(
        seed in any::<u64>(),
        runs in 0usize..8,
    ) {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(
            &s.program,
            PodConfig { input_range: (0, 99), seed, ..PodConfig::default() },
        );
        for _ in 0..runs {
            pod.run_once();
        }
        let image = pod.export_state();
        let back = PodState::decode(&image.encode()).expect("roundtrip");
        prop_assert_eq!(&back, &image);
        // Restoring into a fresh pod reproduces the next draw exactly.
        let mut resumed = Pod::new(
            &s.program,
            PodConfig { input_range: (0, 99), seed: seed ^ 0xDEAD, ..PodConfig::default() },
        );
        resumed.restore_state(back);
        let a = pod.run_once();
        let b = resumed.run_once();
        prop_assert_eq!(a.trace, b.trace);
    }
}
