//! Durable pod state: everything a pod carries *between* rounds,
//! serialized so a killed-and-resumed platform restores its population
//! mid-stream instead of rebuilding pods from derived seeds.
//!
//! Process-equivalence is the whole point: a resumed pod must produce
//! the exact RNG draws, retain the exact repair-lab corpus, and consume
//! the exact pending guidance directives that the uninterrupted process
//! would have — otherwise the campaign's history diverges silently
//! after the first restart. The record is therefore *complete* (RNG
//! position, overlay + version, directive queue, stats, failing and
//! passing cases) and *self-verifying*: a version byte up front and an
//! FNV-1a checksum over the whole envelope at the back, so storage
//! bit-rot is a typed [`PodStateError`], never a silently different
//! population.

use crate::{Pod, PodStats};
use rand::rngs::SmallRng;
use softborg_fix::TestCase;
use softborg_guidance::Directive;
use softborg_program::codec::{self, CodecError, Reader};
use softborg_program::interp::Outcome;
use softborg_program::sched::ScheduleHint;
use softborg_program::syscall::{EnvConfig, ForcedFault};
use softborg_program::{cfg::Loc, BranchSiteId, LockId, ThreadId};
use softborg_program::{interp::CrashKind, Overlay};
use softborg_trace::wire;

/// Current on-disk version of the [`PodState`] encoding.
pub const POD_STATE_VERSION: u8 = 1;

/// A complete, restorable image of one pod's mutable state.
#[derive(Debug, Clone, PartialEq)]
pub struct PodState {
    /// xoshiro256++ state words — the pod's RNG position mid-stream.
    pub rng: [u64; 4],
    /// Installed fix overlay.
    pub overlay: Overlay,
    /// Installed overlay version.
    pub overlay_version: u64,
    /// Pending guidance directives, in FIFO order.
    pub directives: Vec<Directive>,
    /// Execution counters.
    pub stats: PodStats,
    /// Locally retained failing cases with their outcomes.
    pub failing_cases: Vec<(TestCase, Outcome)>,
    /// Locally retained passing cases.
    pub passing_cases: Vec<TestCase>,
}

/// Why a [`PodState`] record failed to decode. Total: decoding never
/// panics on any input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PodStateError {
    /// The record is shorter than its fixed envelope.
    Truncated,
    /// The version byte names an encoding this build cannot read.
    BadVersion(u8),
    /// The envelope checksum does not match the bytes.
    BadChecksum {
        /// Checksum stored in the record.
        expected: u64,
        /// Checksum computed over the bytes actually read.
        got: u64,
    },
    /// The (checksum-valid) body failed structural decoding.
    Codec(CodecError),
}

impl std::fmt::Display for PodStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PodStateError::Truncated => write!(f, "pod state record truncated"),
            PodStateError::BadVersion(v) => write!(f, "pod state record has unknown version {v}"),
            PodStateError::BadChecksum { expected, got } => write!(
                f,
                "pod state checksum mismatch: record says {expected:#018x}, bytes hash to {got:#018x}"
            ),
            PodStateError::Codec(e) => write!(f, "pod state body malformed: {e}"),
        }
    }
}

impl std::error::Error for PodStateError {}

impl From<CodecError> for PodStateError {
    fn from(e: CodecError) -> Self {
        PodStateError::Codec(e)
    }
}

fn put_env(buf: &mut Vec<u8>, env: &EnvConfig) {
    codec::put_u64(buf, env.seed);
    codec::put_u32(buf, env.short_read_per_mille);
    codec::put_u32(buf, env.open_fail_per_mille);
    codec::put_u32(buf, env.fd_limit);
    codec::put_u32(buf, env.forced.len() as u32);
    for f in &env.forced {
        codec::put_u64(buf, f.call_index);
        codec::put_i64(buf, f.ret);
    }
}

fn take_env(r: &mut Reader<'_>) -> Result<EnvConfig, CodecError> {
    let seed = r.u64("EnvConfig.seed")?;
    let short_read_per_mille = r.u32("EnvConfig.short_read")?;
    let open_fail_per_mille = r.u32("EnvConfig.open_fail")?;
    let fd_limit = r.u32("EnvConfig.fd_limit")?;
    let n = r.seq_len("EnvConfig.forced", 16)?;
    let mut forced = Vec::with_capacity(n);
    for _ in 0..n {
        forced.push(ForcedFault {
            call_index: r.u64("ForcedFault.call_index")?,
            ret: r.i64("ForcedFault.ret")?,
        });
    }
    Ok(EnvConfig {
        seed,
        short_read_per_mille,
        open_fail_per_mille,
        fd_limit,
        forced,
    })
}

fn put_case(buf: &mut Vec<u8>, case: &TestCase) {
    codec::put_u32(buf, case.inputs.len() as u32);
    for &v in &case.inputs {
        codec::put_i64(buf, v);
    }
    codec::put_u32(buf, case.schedule.len() as u32);
    for t in &case.schedule {
        codec::put_u32(buf, t.0);
    }
    put_env(buf, &case.env);
}

fn take_case(r: &mut Reader<'_>) -> Result<TestCase, CodecError> {
    let n = r.seq_len("TestCase.inputs", 8)?;
    let mut inputs = Vec::with_capacity(n);
    for _ in 0..n {
        inputs.push(r.i64("TestCase.input")?);
    }
    let n = r.seq_len("TestCase.schedule", 4)?;
    let mut schedule = Vec::with_capacity(n);
    for _ in 0..n {
        schedule.push(ThreadId::new(r.u32("TestCase.pick")?));
    }
    Ok(TestCase {
        inputs,
        schedule,
        env: take_env(r)?,
    })
}

fn put_outcome(buf: &mut Vec<u8>, outcome: &Outcome) {
    match outcome {
        Outcome::Success => codec::put_u8(buf, 0),
        Outcome::Crash { loc, kind } => {
            codec::put_u8(buf, 1);
            loc.encode_into(buf);
            kind.encode_into(buf);
        }
        Outcome::Deadlock { cycle } => {
            codec::put_u8(buf, 2);
            codec::put_u32(buf, cycle.len() as u32);
            for (t, l) in cycle {
                codec::put_u32(buf, t.0);
                codec::put_u32(buf, l.0);
            }
        }
        Outcome::Hang { stuck } => {
            codec::put_u8(buf, 3);
            codec::put_u32(buf, stuck.len() as u32);
            for loc in stuck {
                loc.encode_into(buf);
            }
        }
    }
}

fn take_outcome(r: &mut Reader<'_>) -> Result<Outcome, CodecError> {
    match r.u8("Outcome")? {
        0 => Ok(Outcome::Success),
        1 => Ok(Outcome::Crash {
            loc: Loc::decode(r)?,
            kind: CrashKind::decode(r)?,
        }),
        2 => {
            let n = r.seq_len("Outcome.cycle", 8)?;
            let mut cycle = Vec::with_capacity(n);
            for _ in 0..n {
                let t = ThreadId::new(r.u32("Outcome.cycle_thread")?);
                cycle.push((t, LockId::new(r.u32("Outcome.cycle_lock")?)));
            }
            Ok(Outcome::Deadlock { cycle })
        }
        3 => {
            let n = r.seq_len("Outcome.stuck", 12)?;
            let mut stuck = Vec::with_capacity(n);
            for _ in 0..n {
                stuck.push(Loc::decode(r)?);
            }
            Ok(Outcome::Hang { stuck })
        }
        tag => Err(CodecError::BadTag {
            what: "Outcome",
            tag,
        }),
    }
}

fn put_directive(buf: &mut Vec<u8>, d: &Directive) {
    match d {
        Directive::InputSeed { inputs, target } => {
            codec::put_u8(buf, 0);
            codec::put_u32(buf, inputs.len() as u32);
            for &v in inputs {
                codec::put_i64(buf, v);
            }
            codec::put_u32(buf, target.0 .0);
            codec::put_u8(buf, u8::from(target.1));
        }
        Directive::Schedule(hint) => {
            codec::put_u8(buf, 1);
            codec::put_u32(buf, hint.order.len() as u32);
            for t in &hint.order {
                codec::put_u32(buf, t.0);
            }
            codec::put_u32(buf, hint.bias_per_mille);
        }
        Directive::FaultInjection {
            forced,
            short_read_per_mille,
        } => {
            codec::put_u8(buf, 2);
            codec::put_u32(buf, forced.len() as u32);
            for f in forced {
                codec::put_u64(buf, f.call_index);
                codec::put_i64(buf, f.ret);
            }
            codec::put_u32(buf, *short_read_per_mille);
        }
    }
}

fn take_directive(r: &mut Reader<'_>) -> Result<Directive, CodecError> {
    match r.u8("Directive")? {
        0 => {
            let n = r.seq_len("Directive.inputs", 8)?;
            let mut inputs = Vec::with_capacity(n);
            for _ in 0..n {
                inputs.push(r.i64("Directive.input")?);
            }
            let site = BranchSiteId::new(r.u32("Directive.target_site")?);
            let arm = r.u8("Directive.target_arm")? != 0;
            Ok(Directive::InputSeed {
                inputs,
                target: (site, arm),
            })
        }
        1 => {
            let n = r.seq_len("Directive.order", 4)?;
            let mut order = Vec::with_capacity(n);
            for _ in 0..n {
                order.push(ThreadId::new(r.u32("Directive.order_thread")?));
            }
            Ok(Directive::Schedule(ScheduleHint {
                order,
                bias_per_mille: r.u32("Directive.bias")?,
            }))
        }
        2 => {
            let n = r.seq_len("Directive.forced", 16)?;
            let mut forced = Vec::with_capacity(n);
            for _ in 0..n {
                forced.push(ForcedFault {
                    call_index: r.u64("Directive.call_index")?,
                    ret: r.i64("Directive.ret")?,
                });
            }
            Ok(Directive::FaultInjection {
                forced,
                short_read_per_mille: r.u32("Directive.short_read")?,
            })
        }
        tag => Err(CodecError::BadTag {
            what: "Directive",
            tag,
        }),
    }
}

impl PodState {
    /// Serializes the state into its self-verifying envelope:
    /// `u8 version | body | u64 fnv1a(version + body)`.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::put_u8(&mut buf, POD_STATE_VERSION);
        for &word in &self.rng {
            codec::put_u64(&mut buf, word);
        }
        codec::put_u64(&mut buf, self.overlay_version);
        self.overlay.encode_into(&mut buf);
        codec::put_u32(&mut buf, self.directives.len() as u32);
        for d in &self.directives {
            put_directive(&mut buf, d);
        }
        codec::put_u64(&mut buf, self.stats.executions);
        codec::put_u64(&mut buf, self.stats.failures);
        codec::put_u64(&mut buf, self.stats.directed);
        codec::put_u64(&mut buf, self.stats.overlay_hits);
        codec::put_u32(&mut buf, self.failing_cases.len() as u32);
        for (case, outcome) in &self.failing_cases {
            put_case(&mut buf, case);
            put_outcome(&mut buf, outcome);
        }
        codec::put_u32(&mut buf, self.passing_cases.len() as u32);
        for case in &self.passing_cases {
            put_case(&mut buf, case);
        }
        let checksum = wire::fnv1a(&buf);
        codec::put_u64(&mut buf, checksum);
        buf
    }

    /// Decodes and checksum-verifies an encoded state. Total function:
    /// truncated, bit-flipped, or trailing-garbage input returns a typed
    /// [`PodStateError`], never panics, and never yields a state that
    /// differs from the one encoded.
    ///
    /// # Errors
    ///
    /// See [`PodStateError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, PodStateError> {
        if bytes.len() < 1 + 8 {
            return Err(PodStateError::Truncated);
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let expected = u64::from_le_bytes(tail.try_into().expect("8-byte checksum tail"));
        let got = wire::fnv1a(body);
        if expected != got {
            return Err(PodStateError::BadChecksum { expected, got });
        }
        let mut r = Reader::new(body);
        let version = r.u8("PodState.version")?;
        if version != POD_STATE_VERSION {
            return Err(PodStateError::BadVersion(version));
        }
        let mut rng = [0u64; 4];
        for word in &mut rng {
            *word = r.u64("PodState.rng")?;
        }
        let overlay_version = r.u64("PodState.overlay_version")?;
        let overlay = Overlay::decode(&mut r)?;
        let n = r.seq_len("PodState.directives", 1)?;
        let mut directives = Vec::with_capacity(n);
        for _ in 0..n {
            directives.push(take_directive(&mut r)?);
        }
        let stats = PodStats {
            executions: r.u64("PodState.executions")?,
            failures: r.u64("PodState.failures")?,
            directed: r.u64("PodState.directed")?,
            overlay_hits: r.u64("PodState.overlay_hits")?,
        };
        let n = r.seq_len("PodState.failing_cases", 1)?;
        let mut failing_cases = Vec::with_capacity(n);
        for _ in 0..n {
            let case = take_case(&mut r)?;
            failing_cases.push((case, take_outcome(&mut r)?));
        }
        let n = r.seq_len("PodState.passing_cases", 1)?;
        let mut passing_cases = Vec::with_capacity(n);
        for _ in 0..n {
            passing_cases.push(take_case(&mut r)?);
        }
        if !r.is_empty() {
            return Err(PodStateError::Codec(CodecError::BadLen {
                what: "PodState.trailing",
                len: r.remaining(),
            }));
        }
        Ok(PodState {
            rng,
            overlay,
            overlay_version,
            directives,
            stats,
            failing_cases,
            passing_cases,
        })
    }
}

impl<'p> Pod<'p> {
    /// Captures this pod's complete mutable state for the durable round
    /// commit.
    pub fn export_state(&self) -> PodState {
        PodState {
            rng: self.rng.state(),
            overlay: self.overlay.clone(),
            overlay_version: self.overlay_version,
            directives: self.directives.iter().cloned().collect(),
            stats: self.stats,
            failing_cases: self.failing_cases.clone(),
            passing_cases: self.passing_cases.clone(),
        }
    }

    /// Restores a state captured by [`export_state`](Self::export_state)
    /// — the resume path's process-equivalence step. After this, the pod
    /// produces the same RNG draws, validates against the same local
    /// corpus, and consumes the same pending directives as the pod that
    /// exported the state.
    pub fn restore_state(&mut self, state: PodState) {
        self.rng = SmallRng::from_state(state.rng);
        self.overlay = state.overlay;
        self.overlay_version = state.overlay_version;
        self.directives = state.directives.into();
        self.stats = state.stats;
        self.failing_cases = state.failing_cases;
        self.passing_cases = state.passing_cases;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PodConfig;
    use softborg_program::scenarios;

    #[test]
    fn export_restore_is_process_equivalent() {
        let s = scenarios::token_parser();
        let mk = || {
            Pod::new(
                &s.program,
                PodConfig {
                    input_range: (0, 99),
                    seed: 41,
                    ..PodConfig::default()
                },
            )
        };
        let mut reference = mk();
        let mut victim = mk();
        for _ in 0..5 {
            reference.run_once();
            victim.run_once();
        }
        // Kill the victim; restore a fresh pod from its exported state.
        let image = victim.export_state();
        let bytes = image.encode();
        let decoded = PodState::decode(&bytes).expect("roundtrip");
        assert_eq!(decoded, image);
        let mut resumed = mk();
        resumed.restore_state(decoded);
        for _ in 0..5 {
            let a = reference.run_once();
            let b = resumed.run_once();
            assert_eq!(a.trace, b.trace, "resumed pod diverged");
        }
        assert_eq!(reference.stats(), resumed.stats());
        assert_eq!(reference.failing_cases(), resumed.failing_cases());
        assert_eq!(reference.passing_cases(), resumed.passing_cases());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 7,
                ..PodConfig::default()
            },
        );
        for _ in 0..4 {
            pod.run_once();
        }
        let bytes = pod.export_state().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x20;
            assert!(PodState::decode(&bad).is_err(), "flip at byte {i}");
        }
        for cut in 0..bytes.len() {
            assert!(PodState::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn directive_queue_survives_the_roundtrip_in_order() {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(&s.program, PodConfig::default());
        pod.receive_guidance([
            Directive::InputSeed {
                inputs: vec![1, 2, 3],
                target: (BranchSiteId::new(4), true),
            },
            Directive::Schedule(ScheduleHint {
                order: vec![ThreadId::new(1), ThreadId::new(0)],
                bias_per_mille: 700,
            }),
            Directive::FaultInjection {
                forced: vec![ForcedFault {
                    call_index: 9,
                    ret: -1,
                }],
                short_read_per_mille: 250,
            },
        ]);
        let image = pod.export_state();
        let back = PodState::decode(&image.encode()).expect("roundtrip");
        assert_eq!(back.directives.len(), 3);
        assert_eq!(back, image);
    }
}
