//! # softborg-pod — the per-instance recording/steering agent
//!
//! A pod "lies underneath" one instance of a program (paper §3, Fig. 1):
//! it executes the program on behalf of its simulated user, records
//! execution by-products under a [`RecordingPolicy`], applies the fix
//! overlays the hive distributes, honors guidance directives (input
//! seeds, schedule hints, fault injection), anonymizes traces before
//! shipping them, and classifies outcomes — including the *inferred*
//! user feedback of a hang (step-budget exhaustion stands in for "an
//! erratically jerked mouse suggests a program is being unusually slow",
//! §3.1).

#![warn(missing_docs)]

pub mod state;

pub use state::{PodState, PodStateError, POD_STATE_VERSION};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softborg_fix::TestCase;
use softborg_guidance::Directive;
use softborg_program::interp::{ExecConfig, ExecResult, Executor};
use softborg_program::overlay::Overlay;
use softborg_program::sched::{PrioritySched, RandomSched, Scheduler};
use softborg_program::syscall::{DefaultEnv, EnvConfig};
use softborg_program::{Program, ProgramId, ThreadId};
use softborg_trace::anonymize::Anonymizer;
use softborg_trace::{ExecutionTrace, RecordingPolicy, TraceRecorder};
use std::collections::VecDeque;

/// Bound on locally retained failing cases.
const MAX_FAILING_CASES: usize = 8;
/// Bound on locally retained passing cases.
const MAX_PASSING_CASES: usize = 16;

enum PodSched {
    Random(RandomSched),
    Priority(PrioritySched),
}

impl Scheduler for PodSched {
    fn pick(&mut self, runnable: &[ThreadId], step: u64) -> ThreadId {
        match self {
            PodSched::Random(s) => s.pick(runnable, step),
            PodSched::Priority(s) => s.pick(runnable, step),
        }
    }
}

impl PodSched {
    fn into_picks(self) -> Vec<ThreadId> {
        match self {
            PodSched::Random(s) => s.into_picks(),
            PodSched::Priority(s) => s.into_picks(),
        }
    }
}

/// Pod configuration.
#[derive(Debug, Clone)]
pub struct PodConfig {
    /// What to record per execution.
    pub policy: RecordingPolicy,
    /// Interpreter limits (the hang threshold).
    pub exec: ExecConfig,
    /// Anonymization applied before a trace leaves the pod.
    pub anonymizer: Anonymizer,
    /// The "natural" input range of this pod's user.
    pub input_range: (i64, i64),
    /// Seed driving this pod's user behaviour (inputs, schedules, env).
    pub seed: u64,
}

impl Default for PodConfig {
    fn default() -> Self {
        PodConfig {
            policy: RecordingPolicy::InputDependent,
            exec: ExecConfig { max_steps: 50_000 },
            anonymizer: Anonymizer::None,
            input_range: (0, 999),
            seed: 0,
        }
    }
}

/// Counters kept by a pod.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PodStats {
    /// Executions performed.
    pub executions: u64,
    /// Failing executions.
    pub failures: u64,
    /// Executions driven by a guidance directive.
    pub directed: u64,
    /// Overlay rules that fired across all executions.
    pub overlay_hits: u64,
}

/// The result of one pod execution.
#[derive(Debug, Clone)]
pub struct PodRun {
    /// The (anonymized) trace to ship to the hive.
    pub trace: ExecutionTrace,
    /// The raw execution result (outcome, emitted stream, counters).
    pub result: ExecResult,
    /// Whether a guidance directive drove this run.
    pub directed: bool,
}

/// One pod instance. See the [crate docs](self).
#[derive(Debug)]
pub struct Pod<'p> {
    executor: Executor<'p>,
    program_id: ProgramId,
    config: PodConfig,
    overlay: Overlay,
    overlay_version: u64,
    directives: VecDeque<Directive>,
    rng: SmallRng,
    stats: PodStats,
    multi_threaded: bool,
    failing_cases: Vec<(TestCase, softborg_program::interp::Outcome)>,
    passing_cases: Vec<TestCase>,
}

impl<'p> Pod<'p> {
    /// Creates a pod for one program instance.
    pub fn new(program: &'p Program, config: PodConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed);
        Pod {
            program_id: program.id(),
            executor: Executor::new(program).with_config(config.exec),
            multi_threaded: program.threads.len() > 1,
            config,
            overlay: Overlay::empty(),
            overlay_version: 0,
            directives: VecDeque::new(),
            rng,
            stats: PodStats::default(),
            failing_cases: Vec::new(),
            passing_cases: Vec::new(),
        }
    }

    /// The program this pod runs.
    pub fn program_id(&self) -> ProgramId {
        self.program_id
    }

    /// Statistics so far.
    pub fn stats(&self) -> PodStats {
        self.stats
    }

    /// Currently installed overlay version.
    pub fn overlay_version(&self) -> u64 {
        self.overlay_version
    }

    /// Installs a fix overlay distributed by the hive. Newer versions
    /// replace older ones; equal or older versions are ignored.
    pub fn install_fix(&mut self, overlay: Overlay, version: u64) {
        if version > self.overlay_version {
            self.overlay = overlay;
            self.overlay_version = version;
        }
    }

    /// Queues guidance directives (consumed one per run, FIFO).
    pub fn receive_guidance(&mut self, directives: impl IntoIterator<Item = Directive>) {
        self.directives.extend(directives);
    }

    /// Pending directive count.
    pub fn pending_directives(&self) -> usize {
        self.directives.len()
    }

    /// Executes the program once — naturally, or per the next queued
    /// directive — and returns the trace plus raw result.
    pub fn run_once(&mut self) -> PodRun {
        let directive = self.directives.pop_front();
        let directed = directive.is_some();

        // Natural inputs unless a seed directive overrides them.
        let n_inputs = self.executor.program().n_inputs;
        let (lo, hi) = self.config.input_range;
        let mut inputs: Vec<i64> = (0..n_inputs).map(|_| self.rng.gen_range(lo..=hi)).collect();
        let mut env_config = EnvConfig {
            seed: self.rng.gen(),
            ..EnvConfig::default()
        };
        let mut schedule_hint = None;
        if let Some(d) = directive {
            match d {
                Directive::InputSeed { inputs: seed, .. } => {
                    if seed.len() == inputs.len() {
                        inputs = seed;
                    }
                }
                Directive::Schedule(hint) => schedule_hint = Some(hint),
                Directive::FaultInjection {
                    forced,
                    short_read_per_mille,
                } => {
                    env_config.forced = forced;
                    env_config.short_read_per_mille = short_read_per_mille;
                }
            }
        }

        let mut env = DefaultEnv::new(env_config.clone());
        let mut recorder = TraceRecorder::new(
            self.program_id,
            self.config.policy,
            self.overlay_version,
            self.multi_threaded,
        );
        let sched_seed = self.rng.gen();
        let mut sched = match schedule_hint {
            Some(hint) => PodSched::Priority(PrioritySched::new(hint, sched_seed)),
            None => PodSched::Random(RandomSched::seeded(sched_seed)),
        };
        let result = self
            .executor
            .run(&inputs, &mut env, &mut sched, &self.overlay, &mut recorder)
            .expect("pod-generated inputs match program arity");

        self.stats.executions += 1;
        if result.outcome.is_failure() {
            self.stats.failures += 1;
        }
        self.stats.overlay_hits += result.overlay_hits;
        if directed {
            self.stats.directed += 1;
        }

        // Retain a bounded local corpus of replayable cases; the hive's
        // repair lab validates fix candidates against them *on the pod*
        // (inputs never leave the machine — the privacy-preserving trial
        // mechanism).
        let case = TestCase {
            inputs,
            schedule: sched.into_picks(),
            env: env_config,
        };
        if result.outcome.is_failure() {
            if self.failing_cases.len() < MAX_FAILING_CASES {
                self.failing_cases.push((case, result.outcome.clone()));
            }
        } else if self.passing_cases.len() < MAX_PASSING_CASES {
            self.passing_cases.push(case);
        }

        let raw = recorder.finish(result.outcome.clone(), result.steps);
        let trace = self.config.anonymizer.apply(&raw);
        PodRun {
            trace,
            result,
            directed,
        }
    }

    /// Locally retained failing cases with their outcomes (for pod-side
    /// fix validation and mode matching).
    pub fn failing_cases(&self) -> &[(TestCase, softborg_program::interp::Outcome)] {
        &self.failing_cases
    }

    /// Locally retained passing cases.
    pub fn passing_cases(&self) -> &[TestCase] {
        &self.passing_cases
    }

    /// Validates a fix candidate against this pod's local corpus — the
    /// repair lab's distributed trial step (paper §3.3).
    pub fn validate_candidate(
        &self,
        candidate: &softborg_fix::FixCandidate,
    ) -> softborg_fix::Validation {
        let failing: Vec<TestCase> = self.failing_cases.iter().map(|(c, _)| c.clone()).collect();
        softborg_fix::validate(
            self.executor.program(),
            &self.overlay,
            candidate,
            &failing,
            &self.passing_cases,
            softborg_fix::LabConfig {
                max_steps: self.config.exec.max_steps,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::interp::Outcome;
    use softborg_program::scenarios;
    use softborg_program::BranchSiteId;

    #[test]
    fn pod_runs_and_records_naturally() {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 7,
                ..PodConfig::default()
            },
        );
        let run = pod.run_once();
        assert_eq!(run.trace.program, s.program.id());
        assert!(!run.directed);
        assert!(
            !run.trace.bits.is_empty(),
            "parser has input-dependent sites"
        );
        assert_eq!(pod.stats().executions, 1);
    }

    #[test]
    fn pods_are_deterministic_given_seed() {
        let s = scenarios::token_parser();
        let run = |seed| {
            let mut pod = Pod::new(
                &s.program,
                PodConfig {
                    input_range: (0, 99),
                    seed,
                    ..PodConfig::default()
                },
            );
            let r = pod.run_once();
            (r.trace, r.result)
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn input_seed_directive_drives_the_trigger() {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 1,
                ..PodConfig::default()
            },
        );
        pod.receive_guidance([Directive::InputSeed {
            inputs: vec![13, 95, 7, 0, 0, 0],
            target: (BranchSiteId::new(0), true),
        }]);
        let run = pod.run_once();
        assert!(run.directed);
        assert!(
            matches!(run.result.outcome, Outcome::Crash { .. }),
            "directed run must hit the div-by-zero: {:?}",
            run.result.outcome
        );
        assert_eq!(pod.stats().directed, 1);
        assert_eq!(pod.pending_directives(), 0);
    }

    #[test]
    fn fault_injection_directive_provokes_short_read_bug() {
        let s = scenarios::short_read_client();
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 0),
                seed: 2,
                ..PodConfig::default()
            },
        );
        // Natural run: fine.
        assert_eq!(pod.run_once().result.outcome, Outcome::Success);
        // Directed fault injection: crash.
        pod.receive_guidance([Directive::FaultInjection {
            forced: vec![],
            short_read_per_mille: 1000,
        }]);
        let run = pod.run_once();
        assert!(matches!(run.result.outcome, Outcome::Crash { .. }));
    }

    #[test]
    fn installed_fix_prevents_failures_and_stamps_version() {
        use softborg_fix::crash_guards;
        let s = scenarios::token_parser();
        let loc = softborg_program::gen::find_assert_loc(&s.program, 66).unwrap();
        let guard = &crash_guards(&s.program, loc)[0];
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 99),
                seed: 3,
                ..PodConfig::default()
            },
        );
        pod.install_fix(guard.overlay.clone(), 1);
        assert_eq!(pod.overlay_version(), 1);
        pod.receive_guidance([Directive::InputSeed {
            inputs: vec![1, 2, 3, 4, 85, 66],
            target: (BranchSiteId::new(0), false),
        }]);
        let run = pod.run_once();
        assert_eq!(run.result.outcome, Outcome::Success, "guard averts crash");
        assert!(run.result.overlay_hits > 0);
        assert_eq!(run.trace.overlay_version, 1);
    }

    #[test]
    fn stale_fix_versions_are_ignored() {
        let s = scenarios::token_parser();
        let mut pod = Pod::new(&s.program, PodConfig::default());
        let mut o1 = Overlay::empty();
        o1.name = "v3".into();
        pod.install_fix(o1, 3);
        let mut o2 = Overlay::empty();
        o2.name = "v2".into();
        pod.install_fix(o2, 2);
        assert_eq!(pod.overlay_version(), 3);
    }

    #[test]
    fn anonymizer_is_applied_before_shipping() {
        let s = scenarios::short_read_client();
        let mut pod = Pod::new(
            &s.program,
            PodConfig {
                input_range: (0, 0),
                anonymizer: Anonymizer::OutcomeOnly,
                seed: 4,
                ..PodConfig::default()
            },
        );
        let run = pod.run_once();
        assert!(run.trace.bits.is_empty());
        assert!(run.trace.syscall_rets.is_empty());
    }

    #[test]
    fn schedule_hint_biases_interleavings_toward_deadlock() {
        let s = scenarios::bank_transfer();
        let deadlocks = |hinted: bool| {
            let mut count = 0;
            for seed in 0..60 {
                let mut pod = Pod::new(
                    &s.program,
                    PodConfig {
                        input_range: (0, 99),
                        seed,
                        ..PodConfig::default()
                    },
                );
                if hinted {
                    pod.receive_guidance([Directive::Schedule(
                        softborg_program::sched::ScheduleHint {
                            order: vec![
                                softborg_program::ThreadId::new(seed as u32 % 2),
                                softborg_program::ThreadId::new((seed as u32 + 1) % 2),
                            ],
                            // Biased but not absolute: both threads must
                            // still take their first lock.
                            bias_per_mille: 500,
                        },
                    )]);
                }
                if matches!(pod.run_once().result.outcome, Outcome::Deadlock { .. }) {
                    count += 1;
                }
            }
            count
        };
        let natural = deadlocks(false);
        let hinted = deadlocks(true);
        assert!(natural > 0, "bank scenario must deadlock naturally");
        assert!(hinted > 0, "hinted runs must still find the deadlock");
    }
}
