//! Round-trip fidelity of the corpus text format ([`FaultPlan::to_text`]
//! / [`FaultPlan::from_text`]).
//!
//! The divergence corpus stores minimized fault plans as text and
//! replays them as a regression suite, so the format must be lossless
//! over the *entire* plan space — every knob, every element, every
//! ordering. These proptests generate arbitrary plans (including ones
//! [`FaultPlan::validate`] would reject: the format must not silently
//! "fix" a plan), round-trip them, and re-run a seeded simulation under
//! the decoded plan to prove the replayed fault schedule is
//! event-for-event identical to the original's.

use proptest::prelude::*;
use softborg_netsim::{
    Addr, Crash, Ctx, DiskCrashPoint, FaultPlan, LinkConfig, NetNode, Partition, Sim, SimConfig,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Decodes one `(selector, arg)` pair into a disk crash point, covering
/// every variant of the enum.
fn disk_point(selector: u8, arg: u64) -> DiskCrashPoint {
    match selector % 6 {
        0 => DiskCrashPoint::AtRoundBoundary { round: arg % 100 },
        1 => DiskCrashPoint::TruncateWalTail {
            drop_bytes: arg % 10_000,
        },
        2 => DiskCrashPoint::FlipWalBit {
            back_offset: arg % 10_000,
        },
        3 => DiskCrashPoint::TornSnapshot {
            keep_per_mille: (arg % 1001) as u32,
        },
        4 => DiskCrashPoint::FlipSnapshotBit {
            offset: arg % 10_000,
        },
        _ => DiskCrashPoint::BetweenRenameAndTruncate,
    }
}

/// Builds a fully-arbitrary plan — no validity constraints; the format
/// must encode whatever struct it is handed.
#[allow(clippy::type_complexity)]
fn wild_plan(
    dup: u32,
    reorder: u32,
    window: u64,
    parts: Vec<(u32, u32, u64, u64)>,
    crashes: Vec<(u32, u64, u64)>,
    disk: Vec<(u8, u64)>,
) -> FaultPlan {
    FaultPlan {
        dup_per_mille: dup,
        reorder_per_mille: reorder,
        reorder_window_us: window,
        partitions: parts
            .into_iter()
            .map(|(a, b, from_us, until_us)| Partition {
                a: Addr(a),
                b: Addr(b),
                from_us,
                until_us,
            })
            .collect(),
        crashes: crashes
            .into_iter()
            .map(|(node, at_us, restart_us)| Crash {
                node: Addr(node),
                at_us,
                restart_us,
            })
            .collect(),
        disk: disk.into_iter().map(|(s, a)| disk_point(s, a)).collect(),
    }
}

/// Builds a *valid* plan over a two-node sim: bounded rates, in-range
/// addresses, non-empty forward windows (what the search generator
/// actually emits and the corpus actually stores).
fn valid_plan(
    dup: u32,
    reorder: u32,
    window: u64,
    parts: Vec<(u64, u64)>,
    crashes: Vec<(u64, u64)>,
) -> FaultPlan {
    FaultPlan {
        dup_per_mille: dup,
        reorder_per_mille: reorder,
        reorder_window_us: if reorder > 0 { window } else { 0 },
        partitions: parts
            .into_iter()
            .map(|(from_us, len)| Partition {
                a: Addr(0),
                b: Addr(1),
                from_us,
                until_us: from_us + len,
            })
            .collect(),
        crashes: crashes
            .into_iter()
            .map(|(at_us, len)| Crash {
                node: Addr(0),
                at_us,
                restart_us: at_us + len,
            })
            .collect(),
        disk: Vec::new(),
    }
}

/// `(virtual instant, payload)` pairs observed by the probe.
type DeliveryLog = Rc<RefCell<Vec<(u64, Vec<u8>)>>>;

struct Probe {
    log: DeliveryLog,
}

impl NetNode for Probe {
    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        self.log.borrow_mut().push((ctx.now().0, payload));
    }
}

struct Pinger {
    to: Addr,
    remaining: u32,
}

impl NetNode for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(1_000, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        ctx.send(self.to, self.remaining.to_le_bytes().to_vec());
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(1_000, 0);
        }
    }
}

/// Runs a seeded two-node sim under `plan` and returns every observable:
/// the delivery log with virtual timestamps, the final clock, and stats.
fn replay(plan: FaultPlan, seed: u64) -> (Vec<(u64, Vec<u8>)>, u64, softborg_netsim::SimStats) {
    let mut sim = Sim::new(SimConfig {
        seed,
        link: LinkConfig {
            base_latency_us: 500,
            jitter_us: 200,
            loss_per_mille: 0,
        },
        max_events: 100_000,
        faults: plan,
    });
    let log = Rc::new(RefCell::new(Vec::new()));
    let probe = sim.add_node(Box::new(Probe { log: log.clone() }));
    sim.add_node(Box::new(Pinger {
        to: probe,
        remaining: 47,
    }));
    sim.run();
    let observed = log.borrow().clone();
    (observed, sim.now().0, sim.stats())
}

proptest! {
    /// Any plan — even one `validate` would reject — decodes back to
    /// exactly the struct it was encoded from.
    #[test]
    fn any_plan_round_trips_exactly(
        dup in any::<u32>(),
        reorder in any::<u32>(),
        window in any::<u64>(),
        parts in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()), 0..5),
        crashes in proptest::collection::vec(
            (any::<u32>(), any::<u64>(), any::<u64>()), 0..4),
        disk in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..4),
    ) {
        let plan = wild_plan(dup, reorder, window, parts, crashes, disk);
        let text = plan.to_text();
        prop_assert_eq!(FaultPlan::from_text(&text), Ok(plan));
    }

    /// Encoding is stable: re-encoding the decoded plan yields the same
    /// bytes, so corpus entries never churn on rewrite.
    #[test]
    fn encoding_is_a_fixpoint(
        dup in any::<u32>(),
        reorder in any::<u32>(),
        window in any::<u64>(),
        parts in proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u64>(), any::<u64>()), 0..5),
        crashes in proptest::collection::vec(
            (any::<u32>(), any::<u64>(), any::<u64>()), 0..4),
        disk in proptest::collection::vec((any::<u8>(), any::<u64>()), 0..4),
    ) {
        let plan = wild_plan(dup, reorder, window, parts, crashes, disk);
        let text = plan.to_text();
        let decoded = FaultPlan::from_text(&text).expect("round trip");
        prop_assert_eq!(decoded.to_text(), text);
    }

    /// A corpus-stored plan replays the *same fault schedule*: a seeded
    /// sim under the decoded plan is event-for-event identical to one
    /// under the original, so a minimized reproducer keeps reproducing.
    #[test]
    fn decoded_plan_replays_identically(
        dup in 0u32..=1000,
        reorder in 0u32..=1000,
        window in 0u64..50_000,
        parts in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
        crashes in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
        seed in 0u64..u64::MAX,
    ) {
        let plan = valid_plan(dup, reorder, window, parts, crashes);
        plan.validate(2).expect("generator emits valid plans");
        let decoded = FaultPlan::from_text(&plan.to_text()).expect("round trip");
        prop_assert_eq!(replay(plan, seed), replay(decoded, seed));
    }

    /// Shrink candidates round-trip too — the corpus stores *minimized*
    /// plans, which are products of the shrinker, not the generator.
    #[test]
    fn shrink_candidates_round_trip(
        dup in 0u32..=1000,
        reorder in 0u32..=1000,
        window in 0u64..50_000,
        parts in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
        crashes in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
    ) {
        let plan = valid_plan(dup, reorder, window, parts, crashes);
        for cand in plan.shrink_candidates() {
            let text = cand.to_text();
            prop_assert_eq!(FaultPlan::from_text(&text), Ok(cand));
        }
    }
}
