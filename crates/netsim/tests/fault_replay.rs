//! Replay determinism of [`FaultPlan::for_link`] under virtual time.
//!
//! The sharded transport derives one plan per pod→shard link from a
//! fleet template; the virtual-time scheduler replays whole fleet days
//! from a seed. Both rest on the same contract: a (template, link,
//! jitter) triple must always produce the *same* derived plan, and a
//! simulation driven by that plan must fire every partition drop and
//! crash/restart at the *same virtual instant* on every run. These
//! proptests pin that contract down over arbitrary templates.

use proptest::prelude::*;
use softborg_netsim::{
    Addr, Crash, Ctx, FaultPlan, LinkConfig, NetNode, Partition, Sim, SimConfig,
};
use std::cell::RefCell;
use std::rc::Rc;

/// Events observed by the probe node, with the virtual instant each
/// callback ran at.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Message(u64, Vec<u8>),
    Crash,
    Restart(u64),
}

struct Probe {
    log: Rc<RefCell<Vec<Observed>>>,
}

impl NetNode for Probe {
    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        self.log
            .borrow_mut()
            .push(Observed::Message(ctx.now().0, payload));
    }
    fn on_crash(&mut self) {
        self.log.borrow_mut().push(Observed::Crash);
    }
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.log.borrow_mut().push(Observed::Restart(ctx.now().0));
    }
}

/// Sends one tagged message every `gap_us`, starting at `gap_us`.
struct Pinger {
    to: Addr,
    gap_us: u64,
    remaining: u32,
}

impl NetNode for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.gap_us, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        ctx.send(self.to, self.remaining.to_le_bytes().to_vec());
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(self.gap_us, 0);
        }
    }
}

fn template(
    partitions: Vec<(u64, u64)>,
    crashes: Vec<(u64, u64)>,
    dup: u32,
    reorder: u32,
) -> FaultPlan {
    FaultPlan {
        dup_per_mille: dup,
        reorder_per_mille: reorder,
        reorder_window_us: if reorder > 0 { 20_000 } else { 0 },
        partitions: partitions
            .into_iter()
            .map(|(from_us, len)| Partition {
                a: Addr(0),
                b: Addr(1),
                from_us,
                until_us: from_us + len,
            })
            .collect(),
        crashes: crashes
            .into_iter()
            .map(|(at_us, len)| Crash {
                node: Addr(0),
                at_us,
                restart_us: at_us + len,
            })
            .collect(),
        disk: Vec::new(),
    }
}

/// Runs a two-node sim under the given derived plan and returns
/// everything observable: the probe's callback log (with virtual
/// timestamps), the final virtual clock, and the stats counters.
fn run_under(plan: FaultPlan, seed: u64) -> (Vec<Observed>, u64, softborg_netsim::SimStats) {
    plan.validate(2).expect("derived plan must stay valid");
    let mut sim = Sim::new(SimConfig {
        seed,
        link: LinkConfig {
            base_latency_us: 500,
            jitter_us: 200,
            loss_per_mille: 0,
        },
        max_events: 100_000,
        faults: plan,
    });
    let log = Rc::new(RefCell::new(Vec::new()));
    let probe = sim.add_node(Box::new(Probe { log: log.clone() }));
    sim.add_node(Box::new(Pinger {
        to: probe,
        gap_us: 1_000,
        remaining: 63,
    }));
    sim.run();
    let observed = log.borrow().clone();
    (observed, sim.now().0, sim.stats())
}

proptest! {
    /// Same (template, link, jitter): the derived plan is identical and a
    /// seeded sim replays the exact same fault schedule — every message,
    /// crash, and restart at the same virtual instant.
    #[test]
    fn same_link_same_jitter_replays_identically(
        parts in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..4),
        crashes in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
        dup in 0u32..300,
        reorder in 0u32..300,
        link in 0u64..1_000,
        jitter in 0u64..10_000,
        seed in 0u64..u64::MAX,
    ) {
        let t = template(parts, crashes, dup, reorder);
        let a = t.for_link(link, jitter);
        let b = t.for_link(link, jitter);
        prop_assert_eq!(&a, &b, "plan derivation must be a pure function");
        prop_assert_eq!(run_under(a, seed), run_under(b, seed));
    }

    /// Derived windows are the template's windows shifted forward by at
    /// most `jitter_us`, durations intact — faults fire at predictable
    /// virtual instants, never earlier than the template schedules them.
    #[test]
    fn for_link_shifts_are_bounded_and_duration_preserving(
        parts in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..4),
        crashes in proptest::collection::vec((0u64..50_000, 1u64..30_000), 0..3),
        link in 0u64..1_000,
        jitter in 0u64..10_000,
    ) {
        let t = template(parts, crashes, 0, 0);
        let d = t.for_link(link, jitter);
        for (dp, tp) in d.partitions.iter().zip(&t.partitions) {
            prop_assert!(dp.from_us >= tp.from_us && dp.from_us <= tp.from_us + jitter);
            prop_assert_eq!(dp.until_us - dp.from_us, tp.until_us - tp.from_us);
        }
        for (dc, tc) in d.crashes.iter().zip(&t.crashes) {
            prop_assert!(dc.at_us >= tc.at_us && dc.at_us <= tc.at_us + jitter);
            prop_assert_eq!(dc.restart_us - dc.at_us, tc.restart_us - tc.at_us);
        }
        prop_assert_eq!(d.validate(2), Ok(()));
    }

    /// A crash window in the derived plan actually manifests in the sim:
    /// exactly one crash and one restart per scheduled window, with the
    /// restart at the window's (shifted) end instant.
    #[test]
    fn derived_crash_windows_fire_at_their_shifted_instants(
        at in 1_000u64..40_000,
        len in 1_000u64..20_000,
        link in 0u64..1_000,
        jitter in 0u64..5_000,
        seed in 0u64..u64::MAX,
    ) {
        let t = template(vec![], vec![(at, len)], 0, 0);
        let d = t.for_link(link, jitter);
        let expected_restart = d.crashes[0].restart_us;
        let (observed, _, stats) = run_under(d, seed);
        prop_assert_eq!(stats.crashes, 1);
        let crash_count = observed.iter().filter(|o| matches!(o, Observed::Crash)).count();
        prop_assert_eq!(crash_count, 1);
        let restarts: Vec<_> = observed
            .iter()
            .filter_map(|o| match o {
                Observed::Restart(t) => Some(*t),
                _ => None,
            })
            .collect();
        prop_assert_eq!(restarts, vec![expected_restart]);
    }

    /// Distinct links sharing a template keep identical fault *rates*
    /// but (with a wide enough jitter budget) decorrelated windows.
    #[test]
    fn links_share_rates_but_not_windows(
        at in 0u64..50_000,
        len in 1u64..30_000,
        dup in 0u32..1000,
        reorder in 0u32..1000,
    ) {
        let t = template(vec![(at, len)], vec![(at, len)], dup, reorder);
        let a = t.for_link(1, 1_000_000);
        let b = t.for_link(2, 1_000_000);
        prop_assert_eq!(a.dup_per_mille, b.dup_per_mille);
        prop_assert_eq!(a.reorder_per_mille, b.reorder_per_mille);
        // With a 1s jitter budget a collision on both windows is ~1e-12;
        // lockstep failure across links would defeat the fault matrix.
        prop_assert_ne!((a.partitions, a.crashes), (b.partitions, b.crashes));
    }
}
