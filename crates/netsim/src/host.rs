//! Hosting [`NetNode`] impls outside [`Sim`](crate::Sim).
//!
//! [`Ctx`] deliberately hides its internals so nodes cannot bypass the
//! link model. That also means an *external* event loop — the
//! `softborg-sim` virtual-time scheduler hosting the same node code —
//! could not invoke callbacks at all. These free functions are the
//! sanctioned bridge: each drives one callback with a fresh outbox and
//! returns the [`Action`]s the node queued, in order. The host is
//! responsible for applying [`Sim`](crate::Sim)'s semantics to them
//! (latency/loss/fault draws on `Send`, the ≥ 1µs clamp on `Timer`);
//! `on_crash` takes no `Ctx` — call it directly on the node.

use crate::{Action, Addr, Ctx, NetNode, SimTime};

fn with_ctx(
    node: &mut dyn NetNode,
    now: SimTime,
    me: Addr,
    f: impl FnOnce(&mut dyn NetNode, &mut Ctx<'_>),
) -> Vec<Action> {
    let mut outbox = Vec::new();
    let mut ctx = Ctx {
        now,
        me,
        outbox: &mut outbox,
    };
    f(node, &mut ctx);
    outbox
}

/// Drives [`NetNode::on_start`]; returns the queued actions.
pub fn start(node: &mut dyn NetNode, now: SimTime, me: Addr) -> Vec<Action> {
    with_ctx(node, now, me, |n, ctx| n.on_start(ctx))
}

/// Drives [`NetNode::on_message`]; returns the queued actions.
pub fn message(
    node: &mut dyn NetNode,
    now: SimTime,
    me: Addr,
    from: Addr,
    payload: Vec<u8>,
) -> Vec<Action> {
    with_ctx(node, now, me, |n, ctx| n.on_message(from, payload, ctx))
}

/// Drives [`NetNode::on_timer`]; returns the queued actions.
pub fn timer(node: &mut dyn NetNode, now: SimTime, me: Addr, tag: u64) -> Vec<Action> {
    with_ctx(node, now, me, |n, ctx| n.on_timer(tag, ctx))
}

/// Drives [`NetNode::on_restart`]; returns the queued actions.
pub fn restart(node: &mut dyn NetNode, now: SimTime, me: Addr) -> Vec<Action> {
    with_ctx(node, now, me, |n, ctx| n.on_restart(ctx))
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echoer;
    impl NetNode for Echoer {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 7); // hosts must clamp to 1µs
        }
        fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
            assert_eq!(ctx.me(), Addr(3));
            assert_eq!(ctx.now(), SimTime(50));
            ctx.send(from, payload);
        }
    }

    #[test]
    fn host_functions_surface_actions_in_order() {
        let mut n = Echoer;
        assert_eq!(
            start(&mut n, SimTime(0), Addr(3)),
            vec![Action::Timer {
                delay_us: 0,
                tag: 7
            }]
        );
        assert_eq!(
            message(&mut n, SimTime(50), Addr(3), Addr(1), b"hi".to_vec()),
            vec![Action::Send {
                to: Addr(1),
                payload: b"hi".to_vec()
            }]
        );
        assert_eq!(timer(&mut n, SimTime(60), Addr(3), 7), vec![]);
        assert_eq!(restart(&mut n, SimTime(70), Addr(3)), vec![]);
    }
}
