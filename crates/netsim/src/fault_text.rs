//! The divergence-corpus serialization of a [`FaultPlan`]: a versioned,
//! line-oriented text format that round-trips every plan exactly.
//!
//! The vendored `serde` is an API stub (derives are markers, there is no
//! data model behind them), so the corpus format is hand-rolled here —
//! one `key = value` line per scalar knob and one line per scheduled
//! element, parsed back with typed [`PlanTextError`]s. The contract,
//! property-tested in `tests/fault_text.rs`, is
//! `FaultPlan::from_text(&plan.to_text()) == Ok(plan)` for **any** plan:
//! a minimized failure written into `divergence_corpus/` must replay the
//! exact schedule (and therefore the exact `sched_trace_hash`) forever.
//!
//! ```text
//! softborg-fault-plan v1
//! dup_per_mille = 3
//! reorder_per_mille = 20
//! reorder_window_us = 50000
//! partition = 8 0 21600000000 22500000000
//! crash = 0 28800000000 29400000000
//! disk = truncate_wal_tail 64
//! ```
//!
//! Zero-valued rates and empty element lists are omitted on encode (the
//! minimal reproducer for a single crash is three lines), `#` lines and
//! blank lines are ignored on decode, and an unknown header version or
//! key fails loudly instead of degrading into a partial plan.

use crate::fault::{Crash, DiskCrashPoint, FaultPlan, Partition, SectorCorruption};
use crate::Addr;
use std::fmt;

/// The header every serialized plan must start with.
pub const PLAN_TEXT_HEADER: &str = "softborg-fault-plan v1";

/// A malformed serialized fault plan, reported with the offending
/// 1-based line number. Parsing is all-or-nothing: a corpus entry that
/// cannot be reproduced exactly must never half-load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanTextError {
    /// The first non-blank line was not [`PLAN_TEXT_HEADER`].
    BadHeader,
    /// A line had no `key = value` / `key = operands` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
    },
    /// A line named a key this version does not know.
    UnknownKey {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric operand failed to parse, or an element had the wrong
    /// operand count.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// What was being parsed.
        what: &'static str,
    },
}

impl fmt::Display for PlanTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanTextError::BadHeader => {
                write!(
                    f,
                    "missing or unsupported header (want {PLAN_TEXT_HEADER:?})"
                )
            }
            PlanTextError::Malformed { line } => {
                write!(f, "line {line}: not a `key = value` line")
            }
            PlanTextError::UnknownKey { line } => write!(f, "line {line}: unknown key"),
            PlanTextError::BadValue { line, what } => {
                write!(f, "line {line}: bad value for {what}")
            }
        }
    }
}

impl std::error::Error for PlanTextError {}

fn parse_u64(s: &str, line: usize, what: &'static str) -> Result<u64, PlanTextError> {
    s.parse()
        .map_err(|_| PlanTextError::BadValue { line, what })
}

fn parse_u32(s: &str, line: usize, what: &'static str) -> Result<u32, PlanTextError> {
    s.parse()
        .map_err(|_| PlanTextError::BadValue { line, what })
}

fn corruption_text(kind: &SectorCorruption) -> String {
    match *kind {
        SectorCorruption::FlipBit { bit } => format!("flip_bit {bit}"),
        SectorCorruption::ZeroRange { sectors } => format!("zero_range {sectors}"),
        SectorCorruption::TornWrite { keep_bytes } => format!("torn_write {keep_bytes}"),
    }
}

fn parse_corruption(what: &str, n: &str, line: usize) -> Result<SectorCorruption, PlanTextError> {
    match what {
        "flip_bit" => Ok(SectorCorruption::FlipBit {
            bit: parse_u32(n, line, "corruption.flip_bit")?,
        }),
        "zero_range" => Ok(SectorCorruption::ZeroRange {
            sectors: parse_u32(n, line, "corruption.zero_range")?,
        }),
        "torn_write" => Ok(SectorCorruption::TornWrite {
            keep_bytes: parse_u32(n, line, "corruption.torn_write")?,
        }),
        _ => Err(PlanTextError::BadValue {
            line,
            what: "sector corruption kind",
        }),
    }
}

impl FaultPlan {
    /// Serializes the plan into the corpus text format (see the [module
    /// docs](self)). Elements are emitted in their in-plan order, which
    /// [`from_text`](Self::from_text) preserves — the round trip is
    /// exact, not just equivalent.
    pub fn to_text(&self) -> String {
        let mut out = String::from(PLAN_TEXT_HEADER);
        out.push('\n');
        if self.dup_per_mille > 0 {
            out.push_str(&format!("dup_per_mille = {}\n", self.dup_per_mille));
        }
        if self.reorder_per_mille > 0 {
            out.push_str(&format!("reorder_per_mille = {}\n", self.reorder_per_mille));
        }
        if self.reorder_window_us > 0 {
            out.push_str(&format!("reorder_window_us = {}\n", self.reorder_window_us));
        }
        for p in &self.partitions {
            out.push_str(&format!(
                "partition = {} {} {} {}\n",
                p.a.0, p.b.0, p.from_us, p.until_us
            ));
        }
        for c in &self.crashes {
            out.push_str(&format!(
                "crash = {} {} {}\n",
                c.node.0, c.at_us, c.restart_us
            ));
        }
        for d in &self.disk {
            let line = match d {
                DiskCrashPoint::AtRoundBoundary { round } => {
                    format!("disk = at_round_boundary {round}")
                }
                DiskCrashPoint::TruncateWalTail { drop_bytes } => {
                    format!("disk = truncate_wal_tail {drop_bytes}")
                }
                DiskCrashPoint::FlipWalBit { back_offset } => {
                    format!("disk = flip_wal_bit {back_offset}")
                }
                DiskCrashPoint::TornSnapshot { keep_per_mille } => {
                    format!("disk = torn_snapshot {keep_per_mille}")
                }
                DiskCrashPoint::FlipSnapshotBit { offset } => {
                    format!("disk = flip_snapshot_bit {offset}")
                }
                DiskCrashPoint::BetweenRenameAndTruncate => {
                    "disk = between_rename_and_truncate".to_string()
                }
                DiskCrashPoint::CorruptWal { sector, kind } => {
                    format!("disk = corrupt_wal {sector} {}", corruption_text(kind))
                }
                DiskCrashPoint::CorruptSnapshot { sector, kind } => {
                    format!("disk = corrupt_snapshot {sector} {}", corruption_text(kind))
                }
                DiskCrashPoint::CorruptChainRecord { back, sector, kind } => {
                    format!(
                        "disk = corrupt_chain_record {back} {sector} {}",
                        corruption_text(kind)
                    )
                }
                DiskCrashPoint::CorruptPage { page, sector, kind } => {
                    format!(
                        "disk = corrupt_page {page} {sector} {}",
                        corruption_text(kind)
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parses a plan serialized by [`to_text`](Self::to_text). Blank
    /// lines and `#` comments are skipped; everything else must parse or
    /// the whole load fails.
    ///
    /// # Errors
    ///
    /// Returns a [`PlanTextError`] naming the first offending line: a
    /// missing/unsupported header, a line without `key = …` shape, an
    /// unknown key, or a malformed operand.
    pub fn from_text(text: &str) -> Result<FaultPlan, PlanTextError> {
        let mut lines = text
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some((_, header)) if header == PLAN_TEXT_HEADER => {}
            _ => return Err(PlanTextError::BadHeader),
        }
        let mut plan = FaultPlan::default();
        for (line, l) in lines {
            let (key, value) = l
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or(PlanTextError::Malformed { line })?;
            match key {
                "dup_per_mille" => {
                    plan.dup_per_mille = parse_u32(value, line, "dup_per_mille")?;
                }
                "reorder_per_mille" => {
                    plan.reorder_per_mille = parse_u32(value, line, "reorder_per_mille")?;
                }
                "reorder_window_us" => {
                    plan.reorder_window_us = parse_u64(value, line, "reorder_window_us")?;
                }
                "partition" => {
                    let ops: Vec<&str> = value.split_whitespace().collect();
                    let [a, b, from, until] = ops[..] else {
                        return Err(PlanTextError::BadValue {
                            line,
                            what: "partition (want: a b from_us until_us)",
                        });
                    };
                    plan.partitions.push(Partition {
                        a: Addr(parse_u32(a, line, "partition.a")?),
                        b: Addr(parse_u32(b, line, "partition.b")?),
                        from_us: parse_u64(from, line, "partition.from_us")?,
                        until_us: parse_u64(until, line, "partition.until_us")?,
                    });
                }
                "crash" => {
                    let ops: Vec<&str> = value.split_whitespace().collect();
                    let [node, at, restart] = ops[..] else {
                        return Err(PlanTextError::BadValue {
                            line,
                            what: "crash (want: node at_us restart_us)",
                        });
                    };
                    plan.crashes.push(Crash {
                        node: Addr(parse_u32(node, line, "crash.node")?),
                        at_us: parse_u64(at, line, "crash.at_us")?,
                        restart_us: parse_u64(restart, line, "crash.restart_us")?,
                    });
                }
                "disk" => {
                    let ops: Vec<&str> = value.split_whitespace().collect();
                    let point = match ops[..] {
                        ["at_round_boundary", r] => DiskCrashPoint::AtRoundBoundary {
                            round: parse_u64(r, line, "disk.at_round_boundary")?,
                        },
                        ["truncate_wal_tail", n] => DiskCrashPoint::TruncateWalTail {
                            drop_bytes: parse_u64(n, line, "disk.truncate_wal_tail")?,
                        },
                        ["flip_wal_bit", n] => DiskCrashPoint::FlipWalBit {
                            back_offset: parse_u64(n, line, "disk.flip_wal_bit")?,
                        },
                        ["torn_snapshot", n] => DiskCrashPoint::TornSnapshot {
                            keep_per_mille: parse_u32(n, line, "disk.torn_snapshot")?,
                        },
                        ["flip_snapshot_bit", n] => DiskCrashPoint::FlipSnapshotBit {
                            offset: parse_u64(n, line, "disk.flip_snapshot_bit")?,
                        },
                        ["between_rename_and_truncate"] => DiskCrashPoint::BetweenRenameAndTruncate,
                        ["corrupt_wal", s, what, n] => DiskCrashPoint::CorruptWal {
                            sector: parse_u64(s, line, "disk.corrupt_wal.sector")?,
                            kind: parse_corruption(what, n, line)?,
                        },
                        ["corrupt_snapshot", s, what, n] => DiskCrashPoint::CorruptSnapshot {
                            sector: parse_u64(s, line, "disk.corrupt_snapshot.sector")?,
                            kind: parse_corruption(what, n, line)?,
                        },
                        ["corrupt_chain_record", b, s, what, n] => {
                            DiskCrashPoint::CorruptChainRecord {
                                back: parse_u64(b, line, "disk.corrupt_chain_record.back")?,
                                sector: parse_u64(s, line, "disk.corrupt_chain_record.sector")?,
                                kind: parse_corruption(what, n, line)?,
                            }
                        }
                        ["corrupt_page", p, s, what, n] => DiskCrashPoint::CorruptPage {
                            page: parse_u64(p, line, "disk.corrupt_page.page")?,
                            sector: parse_u64(s, line, "disk.corrupt_page.sector")?,
                            kind: parse_corruption(what, n, line)?,
                        },
                        _ => {
                            return Err(PlanTextError::BadValue {
                                line,
                                what: "disk crash point",
                            })
                        }
                    };
                    plan.disk.push(point);
                }
                _ => return Err(PlanTextError::UnknownKey { line }),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rich_plan() -> FaultPlan {
        FaultPlan {
            dup_per_mille: 3,
            reorder_per_mille: 20,
            reorder_window_us: 50_000,
            partitions: vec![
                Partition {
                    a: Addr(8),
                    b: Addr(0),
                    from_us: 21_600_000_000,
                    until_us: 22_500_000_000,
                },
                Partition {
                    a: Addr(2),
                    b: Addr(3),
                    from_us: 0,
                    until_us: 1,
                },
            ],
            crashes: vec![Crash {
                node: Addr(0),
                at_us: 28_800_000_000,
                restart_us: 29_400_000_000,
            }],
            disk: vec![
                DiskCrashPoint::AtRoundBoundary { round: 3 },
                DiskCrashPoint::TruncateWalTail { drop_bytes: 64 },
                DiskCrashPoint::FlipWalBit { back_offset: 32 },
                DiskCrashPoint::TornSnapshot {
                    keep_per_mille: 500,
                },
                DiskCrashPoint::FlipSnapshotBit { offset: 7 },
                DiskCrashPoint::BetweenRenameAndTruncate,
                DiskCrashPoint::CorruptWal {
                    sector: 9,
                    kind: SectorCorruption::FlipBit { bit: 137 },
                },
                DiskCrashPoint::CorruptWal {
                    sector: 0,
                    kind: SectorCorruption::ZeroRange { sectors: 4 },
                },
                DiskCrashPoint::CorruptSnapshot {
                    sector: 2,
                    kind: SectorCorruption::TornWrite { keep_bytes: 100 },
                },
                DiskCrashPoint::CorruptChainRecord {
                    back: 1,
                    sector: 0,
                    kind: SectorCorruption::FlipBit { bit: 9 },
                },
                DiskCrashPoint::CorruptPage {
                    page: 3,
                    sector: 1,
                    kind: SectorCorruption::ZeroRange { sectors: 2 },
                },
            ],
        }
    }

    #[test]
    fn rich_plan_round_trips_exactly() {
        let p = rich_plan();
        assert_eq!(FaultPlan::from_text(&p.to_text()), Ok(p));
    }

    #[test]
    fn empty_plan_is_just_the_header() {
        let p = FaultPlan::default();
        assert_eq!(p.to_text(), format!("{PLAN_TEXT_HEADER}\n"));
        assert_eq!(FaultPlan::from_text(&p.to_text()), Ok(p));
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text =
            format!("\n# a corpus entry\n{PLAN_TEXT_HEADER}\n\n# one crash\ncrash = 1 5 10\n");
        let p = FaultPlan::from_text(&text).expect("parses");
        assert_eq!(p.crashes.len(), 1);
        assert_eq!(p.crashes[0].node, Addr(1));
    }

    #[test]
    fn bad_inputs_fail_loudly_with_line_numbers() {
        assert_eq!(
            FaultPlan::from_text("softborg-fault-plan v99\n"),
            Err(PlanTextError::BadHeader)
        );
        assert_eq!(FaultPlan::from_text(""), Err(PlanTextError::BadHeader));
        let t = format!("{PLAN_TEXT_HEADER}\nnot a directive\n");
        assert_eq!(
            FaultPlan::from_text(&t),
            Err(PlanTextError::Malformed { line: 2 })
        );
        let t = format!("{PLAN_TEXT_HEADER}\nwibble = 3\n");
        assert_eq!(
            FaultPlan::from_text(&t),
            Err(PlanTextError::UnknownKey { line: 2 })
        );
        let t = format!("{PLAN_TEXT_HEADER}\ncrash = 1 5\n");
        assert!(matches!(
            FaultPlan::from_text(&t),
            Err(PlanTextError::BadValue { line: 2, .. })
        ));
        let t = format!("{PLAN_TEXT_HEADER}\ndisk = melt_cpu 4\n");
        assert!(matches!(
            FaultPlan::from_text(&t),
            Err(PlanTextError::BadValue { line: 2, .. })
        ));
    }

    #[test]
    fn display_of_errors_names_the_line() {
        let shown = PlanTextError::BadValue {
            line: 7,
            what: "crash.at_us",
        }
        .to_string();
        assert!(shown.contains("line 7"), "{shown}");
        assert!(shown.contains("crash.at_us"), "{shown}");
    }
}
