//! # softborg-netsim — a discrete-event network simulator
//!
//! The paper's hive nodes are "mostly end-user machines communicating
//! over a potentially unreliable network" (§4). This crate provides the
//! deterministic substrate for simulating that: virtual time, nodes with
//! message/timer callbacks, links with latency, jitter, and loss, and
//! node churn (crash/recover). The distributed-hive experiments (E10)
//! run entirely on top of it.
//!
//! # Examples
//!
//! ```
//! use softborg_netsim::{Addr, Ctx, NetNode, Sim, SimConfig};
//!
//! struct Echo;
//! impl NetNode for Echo {
//!     fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
//!         ctx.send(from, payload); // bounce it back
//!     }
//! }
//!
//! struct Probe {
//!     peer: Addr,
//!     got_reply: bool,
//! }
//! impl NetNode for Probe {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_>) {
//!         ctx.send(self.peer, b"ping".to_vec());
//!     }
//!     fn on_message(&mut self, _from: Addr, _payload: Vec<u8>, _ctx: &mut Ctx<'_>) {
//!         self.got_reply = true;
//!     }
//! }
//!
//! let mut sim = Sim::new(SimConfig::default());
//! let echo = sim.add_node(Box::new(Echo));
//! let probe = sim.add_node(Box::new(Probe { peer: echo, got_reply: false }));
//! sim.run();
//! assert!(sim.stats().delivered >= 2);
//! # let _ = probe;
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod fault_text;
pub mod host;

pub use fault::{
    Crash, DiskCrashPoint, FaultPlan, FaultPlanError, Partition, SectorCorruption, SECTOR_BYTES,
};
pub use fault_text::{PlanTextError, PLAN_TEXT_HEADER};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// A node address within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u32);

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Virtual time in microseconds since simulation start.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Adds a duration in microseconds.
    pub fn after(self, us: u64) -> SimTime {
        SimTime(self.0 + us)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

/// Link characteristics (applied to every message).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Base one-way latency in microseconds.
    pub base_latency_us: u64,
    /// Uniform jitter added on top, in microseconds.
    pub jitter_us: u64,
    /// Probability of silently dropping a message, in parts per 1000.
    pub loss_per_mille: u32,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            base_latency_us: 1_000,
            jitter_us: 500,
            loss_per_mille: 0,
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimConfig {
    /// RNG seed (latency jitter, loss, churn).
    pub seed: u64,
    /// Link model between every pair of nodes.
    pub link: LinkConfig,
    /// Safety cap on processed events.
    pub max_events: u64,
    /// Injected faults on top of the link model (duplication, reordering,
    /// partitions, scheduled crash/restart). Validate with
    /// [`FaultPlan::validate`] once the node count is known.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            link: LinkConfig::default(),
            max_events: 1_000_000,
            faults: FaultPlan::default(),
        }
    }
}

/// Counters accumulated over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Messages submitted via [`Ctx::send`].
    pub sent: u64,
    /// Messages delivered to a live node.
    pub delivered: u64,
    /// Messages dropped by loss or dead destination.
    pub dropped: u64,
    /// Messages dropped by an active link partition (also counted in
    /// `dropped`).
    pub partition_dropped: u64,
    /// Extra deliveries injected by [`FaultPlan::dup_per_mille`].
    pub duplicated: u64,
    /// Node crash events executed (scheduled crashes and outages).
    pub crashes: u64,
    /// Payload bytes delivered.
    pub bytes_delivered: u64,
    /// Timers fired.
    pub timers: u64,
}

/// Behaviour of one simulated node.
///
/// All callbacks receive a [`Ctx`] for sending messages and arming
/// timers. Default implementations do nothing.
#[allow(unused_variables)]
pub trait NetNode {
    /// Called once when the simulation starts (or the node is added).
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {}
    /// A message arrived.
    fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {}
    /// A timer armed with [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_>) {}
    /// The node crashed (scheduled [`Crash`] or
    /// [`Sim::schedule_outage`]). Stateful nodes should discard whatever
    /// would not survive a real process death (volatile queues, unsynced
    /// buffers); durable state (a journal's synced prefix) survives. No
    /// `Ctx` is provided — a dead node cannot send or arm timers.
    fn on_crash(&mut self) {}
    /// The node restarted after a crash; timers armed before the crash
    /// that came due while it was down have been discarded, so re-arm
    /// whatever the recovery path needs.
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {}
}

/// Node-side API surface during a callback.
#[derive(Debug)]
pub struct Ctx<'a> {
    now: SimTime,
    me: Addr,
    outbox: &'a mut Vec<Action>,
}

/// One intent a node expressed during a callback. [`Sim`] interprets
/// these internally; external hosts (a virtual-time scheduler embedding
/// `NetNode` impls) obtain them through [`host`] and must apply the same
/// semantics: `Send` is subject to link latency/loss/faults, `Timer`
/// delays are clamped to ≥ 1µs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send `payload` to `to` over the (faulty) link.
    Send {
        /// Destination node.
        to: Addr,
        /// Message bytes.
        payload: Vec<u8>,
    },
    /// Arm a one-shot timer on the calling node.
    Timer {
        /// Delay before firing, in µs (hosts clamp to ≥ 1).
        delay_us: u64,
        /// Tag passed back to [`NetNode::on_timer`].
        tag: u64,
    },
}

impl Ctx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's address.
    pub fn me(&self) -> Addr {
        self.me
    }

    /// Sends `payload` to `to` (subject to link latency and loss).
    pub fn send(&mut self, to: Addr, payload: Vec<u8>) {
        self.outbox.push(Action::Send { to, payload });
    }

    /// Arms a one-shot timer that fires after `delay_us` with `tag`.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        self.outbox.push(Action::Timer { delay_us, tag });
    }
}

#[derive(Debug)]
enum Event {
    Deliver {
        from: Addr,
        to: Addr,
        payload: Vec<u8>,
    },
    Timer {
        node: Addr,
        tag: u64,
    },
    NodeUp(Addr),
    NodeDown(Addr),
}

/// The simulator. Add nodes, then [`Sim::run`].
pub struct Sim {
    config: SimConfig,
    rng: SmallRng,
    now: SimTime,
    queue: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    events: Vec<Option<Event>>,
    nodes: Vec<Option<Box<dyn NetNode>>>,
    alive: Vec<bool>,
    started: Vec<bool>,
    stats: SimStats,
    seq: u64,
}

impl fmt::Debug for Sim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sim")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("pending", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Sim {
    /// Creates a simulator. Crashes scheduled in the config's
    /// [`FaultPlan`] are queued immediately (validate the plan with
    /// [`FaultPlan::validate`] first — an unknown address is silently
    /// inert at fire time).
    pub fn new(config: SimConfig) -> Self {
        let mut sim = Sim {
            rng: SmallRng::seed_from_u64(config.seed),
            now: SimTime(0),
            queue: BinaryHeap::new(),
            events: Vec::new(),
            nodes: Vec::new(),
            alive: Vec::new(),
            started: Vec::new(),
            stats: SimStats::default(),
            seq: 0,
            config,
        };
        for c in sim.config.faults.crashes.clone() {
            sim.push_event(SimTime(c.at_us), Event::NodeDown(c.node));
            sim.push_event(SimTime(c.restart_us), Event::NodeUp(c.node));
        }
        sim
    }

    /// Adds a node; its `on_start` runs when the simulation (re)starts.
    pub fn add_node(&mut self, node: Box<dyn NetNode>) -> Addr {
        let addr = Addr(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        self.alive.push(true);
        self.started.push(false);
        addr
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Schedules a node crash at `at`; it stays down until `until`.
    /// Messages to a down node are dropped, and its timers are discarded
    /// while it is down.
    pub fn schedule_outage(&mut self, node: Addr, at: SimTime, until: SimTime) {
        self.push_event(at, Event::NodeDown(node));
        self.push_event(until, Event::NodeUp(node));
    }

    fn push_event(&mut self, at: SimTime, event: Event) {
        let idx = self.events.len() as u32;
        self.events.push(Some(event));
        self.queue.push(Reverse((at, self.seq, idx)));
        self.seq += 1;
    }

    /// One independent latency draw: base + jitter, plus the reordering
    /// window when that fault fires.
    fn delivery_delay(&mut self) -> u64 {
        let link = self.config.link;
        let mut delay = link.base_latency_us;
        if link.jitter_us > 0 {
            delay += self.rng.gen_range(0..=link.jitter_us);
        }
        let reorder_pm = self.config.faults.reorder_per_mille;
        let window = self.config.faults.reorder_window_us;
        if reorder_pm > 0 && window > 0 && self.rng.gen_range(0..1000) < reorder_pm {
            delay += self.rng.gen_range(0..=window);
        }
        delay
    }

    fn flush_actions(&mut self, me: Addr, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    self.stats.sent += 1;
                    if self.config.faults.partitioned(me, to, self.now) {
                        self.stats.dropped += 1;
                        self.stats.partition_dropped += 1;
                        continue;
                    }
                    let lost = self.config.link.loss_per_mille > 0
                        && self.rng.gen_range(0..1000) < self.config.link.loss_per_mille;
                    if lost {
                        self.stats.dropped += 1;
                        continue;
                    }
                    let dup_pm = self.config.faults.dup_per_mille;
                    if dup_pm > 0 && self.rng.gen_range(0..1000) < dup_pm {
                        self.stats.duplicated += 1;
                        let at = self.now.after(self.delivery_delay());
                        self.push_event(
                            at,
                            Event::Deliver {
                                from: me,
                                to,
                                payload: payload.clone(),
                            },
                        );
                    }
                    let at = self.now.after(self.delivery_delay());
                    self.push_event(
                        at,
                        Event::Deliver {
                            from: me,
                            to,
                            payload,
                        },
                    );
                }
                Action::Timer { delay_us, tag } => {
                    let at = self.now.after(delay_us.max(1));
                    self.push_event(at, Event::Timer { node: me, tag });
                }
            }
        }
    }

    fn start_pending(&mut self) {
        for i in 0..self.nodes.len() {
            if self.started[i] || !self.alive[i] {
                continue;
            }
            self.started[i] = true;
            let addr = Addr(i as u32);
            let mut outbox = Vec::new();
            if let Some(node) = self.nodes[i].as_mut() {
                let mut ctx = Ctx {
                    now: self.now,
                    me: addr,
                    outbox: &mut outbox,
                };
                node.on_start(&mut ctx);
            }
            self.flush_actions(addr, outbox);
        }
    }

    /// Runs until the event queue is empty or the event cap is reached.
    /// Returns the number of events processed.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until `deadline` (exclusive), the queue drains, or the event
    /// cap is reached. Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_pending();
        let mut processed = 0u64;
        while processed < self.config.max_events {
            let Some(Reverse((at, _, idx))) = self.queue.peek().copied() else {
                break;
            };
            if at >= deadline {
                break;
            }
            self.queue.pop();
            self.now = at;
            processed += 1;
            let event = self.events[idx as usize]
                .take()
                .expect("event consumed once");
            match event {
                Event::Deliver { from, to, payload } => {
                    let ti = to.0 as usize;
                    if ti >= self.nodes.len() || !self.alive[ti] {
                        self.stats.dropped += 1;
                        continue;
                    }
                    self.stats.delivered += 1;
                    self.stats.bytes_delivered += payload.len() as u64;
                    let mut outbox = Vec::new();
                    if let Some(node) = self.nodes[ti].as_mut() {
                        let mut ctx = Ctx {
                            now: self.now,
                            me: to,
                            outbox: &mut outbox,
                        };
                        node.on_message(from, payload, &mut ctx);
                    }
                    self.flush_actions(to, outbox);
                }
                Event::Timer { node, tag } => {
                    let ni = node.0 as usize;
                    if ni >= self.nodes.len() || !self.alive[ni] {
                        continue;
                    }
                    self.stats.timers += 1;
                    let mut outbox = Vec::new();
                    if let Some(n) = self.nodes[ni].as_mut() {
                        let mut ctx = Ctx {
                            now: self.now,
                            me: node,
                            outbox: &mut outbox,
                        };
                        n.on_timer(tag, &mut ctx);
                    }
                    self.flush_actions(node, outbox);
                }
                Event::NodeDown(a) => {
                    let i = a.0 as usize;
                    if i < self.alive.len() && self.alive[i] {
                        self.alive[i] = false;
                        self.stats.crashes += 1;
                        if let Some(node) = self.nodes[i].as_mut() {
                            node.on_crash();
                        }
                    }
                }
                Event::NodeUp(a) => {
                    let i = a.0 as usize;
                    if i < self.alive.len() && !self.alive[i] {
                        self.alive[i] = true;
                        let mut outbox = Vec::new();
                        if let Some(node) = self.nodes[i].as_mut() {
                            let mut ctx = Ctx {
                                now: self.now,
                                me: a,
                                outbox: &mut outbox,
                            };
                            node.on_restart(&mut ctx);
                        }
                        self.flush_actions(a, outbox);
                    }
                }
            }
        }
        processed
    }

    /// Mutable access to a node (for inspecting state after a run).
    ///
    /// # Panics
    ///
    /// Panics when `addr` is unknown.
    pub fn node_mut(&mut self, addr: Addr) -> &mut dyn NetNode {
        self.nodes[addr.0 as usize]
            .as_mut()
            .expect("node present")
            .as_mut()
    }

    /// Takes a node out of the simulator (for downcasting in callers).
    ///
    /// # Panics
    ///
    /// Panics when `addr` is unknown or already taken.
    pub fn take_node(&mut self, addr: Addr) -> Box<dyn NetNode> {
        self.nodes[addr.0 as usize].take().expect("node present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    struct Counter {
        hits: Rc<Cell<u64>>,
    }
    impl NetNode for Counter {
        fn on_message(&mut self, _f: Addr, _p: Vec<u8>, _c: &mut Ctx<'_>) {
            self.hits.set(self.hits.get() + 1);
        }
    }

    struct Sender {
        to: Addr,
        n: u32,
    }
    impl NetNode for Sender {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            for i in 0..self.n {
                ctx.send(self.to, vec![i as u8]);
            }
        }
    }

    #[test]
    fn messages_are_delivered_with_latency() {
        let mut sim = Sim::new(SimConfig::default());
        let hits = Rc::new(Cell::new(0));
        let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
        sim.add_node(Box::new(Sender { to: c, n: 5 }));
        sim.run();
        assert_eq!(hits.get(), 5);
        assert!(sim.now().0 >= 1_000, "latency must advance time");
        assert_eq!(sim.stats().delivered, 5);
    }

    #[test]
    fn total_loss_drops_everything() {
        let mut sim = Sim::new(SimConfig {
            link: LinkConfig {
                loss_per_mille: 1000,
                ..LinkConfig::default()
            },
            ..SimConfig::default()
        });
        let hits = Rc::new(Cell::new(0));
        let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
        sim.add_node(Box::new(Sender { to: c, n: 10 }));
        sim.run();
        assert_eq!(hits.get(), 0);
        assert_eq!(sim.stats().dropped, 10);
    }

    #[test]
    fn partial_loss_is_seeded_and_partial() {
        let run = |seed| {
            let mut sim = Sim::new(SimConfig {
                seed,
                link: LinkConfig {
                    loss_per_mille: 500,
                    ..LinkConfig::default()
                },
                ..SimConfig::default()
            });
            let hits = Rc::new(Cell::new(0));
            let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
            sim.add_node(Box::new(Sender { to: c, n: 100 }));
            sim.run();
            hits.get()
        };
        let a = run(1);
        let b = run(1);
        assert_eq!(a, b, "same seed, same delivery");
        assert!(a > 10 && a < 90, "roughly half delivered, got {a}");
    }

    struct Ticker {
        ticks: Rc<Cell<u64>>,
        remaining: u32,
    }
    impl NetNode for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(100, 0);
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
            self.ticks.set(self.ticks.get() + 1);
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.set_timer(100, 0);
            }
        }
    }

    #[test]
    fn timers_fire_in_order() {
        let mut sim = Sim::new(SimConfig::default());
        let ticks = Rc::new(Cell::new(0));
        sim.add_node(Box::new(Ticker {
            ticks: ticks.clone(),
            remaining: 4,
        }));
        sim.run();
        assert_eq!(ticks.get(), 5);
        assert_eq!(sim.now().0, 500);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Sim::new(SimConfig::default());
        let ticks = Rc::new(Cell::new(0));
        sim.add_node(Box::new(Ticker {
            ticks: ticks.clone(),
            remaining: 100,
        }));
        sim.run_until(SimTime(250));
        assert_eq!(ticks.get(), 2, "only timers before 250us fire");
        sim.run();
        assert_eq!(ticks.get(), 101);
    }

    #[test]
    fn outage_drops_messages_then_recovers() {
        struct DelayedSender {
            to: Addr,
            delay: u64,
        }
        impl NetNode for DelayedSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(self.delay, 0);
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                ctx.send(self.to, vec![1]);
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let hits = Rc::new(Cell::new(0));
        let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
        sim.add_node(Box::new(DelayedSender { to: c, delay: 10 }));
        sim.add_node(Box::new(DelayedSender {
            to: c,
            delay: 50_000,
        }));
        sim.schedule_outage(c, SimTime(0), SimTime(10_000));
        sim.run();
        assert_eq!(hits.get(), 1, "only the post-recovery message lands");
        assert_eq!(sim.stats().dropped, 1);
    }

    #[test]
    fn determinism_across_identical_runs() {
        let build_and_run = || {
            let mut sim = Sim::new(SimConfig {
                seed: 42,
                link: LinkConfig {
                    loss_per_mille: 100,
                    jitter_us: 700,
                    base_latency_us: 900,
                },
                ..SimConfig::default()
            });
            let hits = Rc::new(Cell::new(0));
            let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
            sim.add_node(Box::new(Sender { to: c, n: 50 }));
            sim.run();
            (hits.get(), sim.now(), sim.stats())
        };
        assert_eq!(build_and_run(), build_and_run());
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut sim = Sim::new(SimConfig {
            faults: FaultPlan {
                dup_per_mille: 1000,
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        let hits = Rc::new(Cell::new(0));
        let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
        sim.add_node(Box::new(Sender { to: c, n: 10 }));
        sim.run();
        assert_eq!(hits.get(), 20, "every message doubled");
        assert_eq!(sim.stats().duplicated, 10);
    }

    #[test]
    fn reordering_window_shuffles_arrival_order() {
        struct OrderProbe {
            got: Rc<RefCell<Vec<u8>>>,
        }
        impl NetNode for OrderProbe {
            fn on_message(&mut self, _f: Addr, p: Vec<u8>, _c: &mut Ctx<'_>) {
                self.got.borrow_mut().push(p[0]);
            }
        }
        let run = |reorder_pm| {
            let mut sim = Sim::new(SimConfig {
                seed: 7,
                link: LinkConfig {
                    jitter_us: 0,
                    ..LinkConfig::default()
                },
                faults: FaultPlan {
                    reorder_per_mille: reorder_pm,
                    reorder_window_us: if reorder_pm > 0 { 50_000 } else { 0 },
                    ..FaultPlan::default()
                },
                ..SimConfig::default()
            });
            let got = Rc::new(RefCell::new(Vec::new()));
            let probe = sim.add_node(Box::new(OrderProbe { got: got.clone() }));
            sim.add_node(Box::new(Sender { to: probe, n: 30 }));
            sim.run();
            let order = got.borrow().clone();
            order
        };
        let in_order = run(0);
        assert!(in_order.windows(2).all(|w| w[0] <= w[1]), "no jitter, FIFO");
        let shuffled = run(500);
        assert_eq!(shuffled.len(), 30, "reordering never loses messages");
        assert!(
            shuffled.windows(2).any(|w| w[0] > w[1]),
            "a 50ms window over 1ms latency must overtake: {shuffled:?}"
        );
    }

    #[test]
    fn partition_blocks_both_directions_then_heals() {
        struct TimedSender {
            to: Addr,
            at: Vec<u64>,
        }
        impl NetNode for TimedSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                for (i, t) in self.at.iter().enumerate() {
                    ctx.set_timer(*t, i as u64);
                }
            }
            fn on_timer(&mut self, _t: u64, ctx: &mut Ctx<'_>) {
                ctx.send(self.to, vec![1]);
            }
        }
        let mut sim = Sim::new(SimConfig {
            faults: FaultPlan {
                partitions: vec![Partition {
                    a: Addr(0),
                    b: Addr(1),
                    from_us: 0,
                    until_us: 100_000,
                }],
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        let hits = Rc::new(Cell::new(0));
        let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
        sim.add_node(Box::new(TimedSender {
            to: c,
            at: vec![10, 200_000],
        }));
        sim.run();
        assert_eq!(hits.get(), 1, "only the post-heal message lands");
        assert_eq!(sim.stats().partition_dropped, 1);
    }

    #[test]
    fn scheduled_crash_fires_callbacks_and_discards_state() {
        struct Crashy {
            volatile: u32,
            crashes: Rc<Cell<u32>>,
            restarts: Rc<Cell<u32>>,
        }
        impl NetNode for Crashy {
            fn on_message(&mut self, _f: Addr, _p: Vec<u8>, _c: &mut Ctx<'_>) {
                self.volatile += 1;
            }
            fn on_crash(&mut self) {
                self.volatile = 0;
                self.crashes.set(self.crashes.get() + 1);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
                self.restarts.set(self.restarts.get() + 1);
                ctx.set_timer(10, 99); // recovery path can re-arm timers
            }
        }
        let crashes = Rc::new(Cell::new(0));
        let restarts = Rc::new(Cell::new(0));
        let mut sim = Sim::new(SimConfig {
            faults: FaultPlan {
                crashes: vec![Crash {
                    node: Addr(0),
                    at_us: 5_000,
                    restart_us: 20_000,
                }],
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        });
        sim.add_node(Box::new(Crashy {
            volatile: 0,
            crashes: crashes.clone(),
            restarts: restarts.clone(),
        }));
        let victim = Addr(0);
        sim.add_node(Box::new(Sender { to: victim, n: 3 }));
        sim.run();
        assert_eq!(crashes.get(), 1);
        assert_eq!(restarts.get(), 1);
        assert_eq!(sim.stats().crashes, 1);
        assert!(sim.stats().timers >= 1, "restart timer fired");
    }

    #[test]
    fn faulty_runs_stay_deterministic() {
        let build_and_run = || {
            let mut sim = Sim::new(SimConfig {
                seed: 11,
                link: LinkConfig {
                    loss_per_mille: 100,
                    ..LinkConfig::default()
                },
                faults: FaultPlan {
                    dup_per_mille: 200,
                    reorder_per_mille: 300,
                    reorder_window_us: 30_000,
                    ..FaultPlan::default()
                },
                ..SimConfig::default()
            });
            let hits = Rc::new(Cell::new(0));
            let c = sim.add_node(Box::new(Counter { hits: hits.clone() }));
            sim.add_node(Box::new(Sender { to: c, n: 64 }));
            sim.run();
            (hits.get(), sim.now(), sim.stats())
        };
        assert_eq!(build_and_run(), build_and_run());
    }

    #[test]
    fn event_cap_stops_runaway_simulations() {
        struct PingPong {
            peer: Option<Addr>,
        }
        impl NetNode for PingPong {
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                if let Some(p) = self.peer {
                    ctx.send(p, vec![0]);
                }
            }
            fn on_message(&mut self, from: Addr, p: Vec<u8>, ctx: &mut Ctx<'_>) {
                ctx.send(from, p); // forever
            }
        }
        let mut sim = Sim::new(SimConfig {
            max_events: 500,
            ..SimConfig::default()
        });
        let a = sim.add_node(Box::new(PingPong { peer: None }));
        sim.add_node(Box::new(PingPong { peer: Some(a) }));
        let processed = sim.run();
        assert_eq!(processed, 500);
    }
}
