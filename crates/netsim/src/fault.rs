//! Composable fault plans: what the network and the nodes are allowed to
//! do to you.
//!
//! A [`FaultPlan`] extends the per-link loss/jitter model of
//! [`LinkConfig`](crate::LinkConfig) with the failure modes a deployed
//! hive actually sees (paper §4: "mostly end-user machines communicating
//! over a potentially unreliable network"):
//!
//! * **Duplication** — a message is delivered twice, with independent
//!   latency draws (retransmit-happy middleboxes, at-least-once relays).
//! * **Reordering** — a fraction of messages pick up an extra delay drawn
//!   from a configurable window, so later sends can overtake them by far
//!   more than ordinary jitter allows.
//! * **Partitions** — a pair of addresses cannot exchange messages during
//!   a time window (checked symmetrically at send time).
//! * **Crash/restart** — a node goes down at a scheduled time and comes
//!   back later; unlike a plain [`Sim::schedule_outage`] the node is told
//!   about it via [`NetNode::on_crash`] / [`NetNode::on_restart`], so
//!   stateful nodes can model volatile-state loss and recovery.
//!
//! Plans are *validated up front* ([`FaultPlan::validate`]) with typed
//! [`FaultPlanError`]s — an inverted window or out-of-range node is a
//! configuration bug and must fail loudly at config time, never degrade
//! into a silent no-op mid-experiment.
//!
//! [`Sim::schedule_outage`]: crate::Sim::schedule_outage
//! [`NetNode::on_crash`]: crate::NetNode::on_crash
//! [`NetNode::on_restart`]: crate::NetNode::on_restart

use crate::{Addr, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A symmetric link partition: no messages flow between `a` and `b`
/// (either direction) from `from_us` until `until_us` (exclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// One endpoint.
    pub a: Addr,
    /// The other endpoint.
    pub b: Addr,
    /// Partition start (µs, inclusive).
    pub from_us: u64,
    /// Partition end (µs, exclusive).
    pub until_us: u64,
}

impl Partition {
    /// `true` while the partition separates `x` and `y` at `now`.
    pub fn blocks(&self, x: Addr, y: Addr, now: SimTime) -> bool {
        let pair = (x == self.a && y == self.b) || (x == self.b && y == self.a);
        pair && now.0 >= self.from_us && now.0 < self.until_us
    }
}

/// A scheduled crash: the node goes down at `at_us` (its volatile state
/// is declared lost via [`NetNode::on_crash`](crate::NetNode::on_crash))
/// and restarts at `restart_us`
/// ([`NetNode::on_restart`](crate::NetNode::on_restart)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crash {
    /// The node to crash.
    pub node: Addr,
    /// Crash time (µs).
    pub at_us: u64,
    /// Restart time (µs); must be strictly after `at_us`.
    pub restart_us: u64,
}

/// Sector granularity of the disk-corruption model: damage is injected
/// in units of this many bytes, matching the physical reality that
/// media errors and torn writes destroy sectors, not arbitrary byte
/// ranges.
pub const SECTOR_BYTES: u64 = 512;

/// How one disk sector gets damaged. All positions are taken modulo the
/// relevant extent (sector count for the sector index, sector size for
/// offsets within it), so any `u64`/`u32` draw names *some* valid
/// damage on any non-empty file — generators never produce a no-op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SectorCorruption {
    /// One flipped bit inside the sector (`bit` wrapped modulo the bits
    /// actually present): the classic undetected-by-the-drive bit rot.
    FlipBit {
        /// Bit position within the sector (wrapped).
        bit: u32,
    },
    /// This sector and the following `sectors − 1` read back as zeroes
    /// (a remapped-but-lost region). Must cover at least one sector.
    ZeroRange {
        /// Number of consecutive sectors destroyed (≥ 1).
        sectors: u32,
    },
    /// A torn sector write: the first `keep_bytes` (wrapped modulo the
    /// sector's extent) survive, the rest of the sector reads back as
    /// the drive's scribble pattern `0xA5`.
    TornWrite {
        /// Bytes of the sector that reached the platter (wrapped).
        keep_bytes: u32,
    },
}

impl SectorCorruption {
    /// Applies this damage to `bytes`, targeting sector `sector` (taken
    /// modulo the file's sector count). Returns `false` — nothing to
    /// corrupt — only for an empty file. The file's length never
    /// changes: sector damage scribbles contents, it does not truncate.
    pub fn apply(self, bytes: &mut [u8], sector: u64) -> bool {
        if bytes.is_empty() {
            return false;
        }
        let n_sectors = (bytes.len() as u64).div_ceil(SECTOR_BYTES);
        let s = sector % n_sectors;
        let start = (s * SECTOR_BYTES) as usize;
        let end = bytes.len().min(start + SECTOR_BYTES as usize);
        match self {
            SectorCorruption::FlipBit { bit } => {
                let span_bits = (end - start) as u64 * 8;
                let b = u64::from(bit) % span_bits;
                bytes[start + (b / 8) as usize] ^= 1 << (b % 8);
            }
            SectorCorruption::ZeroRange { sectors } => {
                let last = bytes
                    .len()
                    .min(start + (u64::from(sectors.max(1)) * SECTOR_BYTES) as usize);
                bytes[start..last].fill(0);
            }
            SectorCorruption::TornWrite { keep_bytes } => {
                let keep = (u64::from(keep_bytes) % (end - start) as u64) as usize;
                bytes[start + keep..end].fill(0xA5);
            }
        }
        true
    }
}

/// A crash point targeting *durable storage* rather than the network:
/// what the disk looks like when the process comes back. The simulator
/// itself has no filesystem — these are declarative instructions that a
/// durability harness (the platform's kill/restart driver) interprets
/// against the real snapshot + write-ahead-journal files. Keeping them
/// in the fault plan gives one vocabulary for "everything the
/// environment may do to you", network and disk alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiskCrashPoint {
    /// Kill the process cleanly at a round boundary, immediately after
    /// round `round` (0-based) commits. Disk is intact; recovery must
    /// resume from exactly that round.
    AtRoundBoundary {
        /// The committed round after which the process dies.
        round: u64,
    },
    /// Crash with the write-ahead journal missing its last `drop_bytes`
    /// bytes (an unsynced tail the OS never persisted).
    TruncateWalTail {
        /// Bytes removed from the journal's end (clamped to its length).
        drop_bytes: u64,
    },
    /// Crash leaving one flipped bit `back_offset` bytes before the
    /// journal's end (sector scribble / medium error in the tail).
    FlipWalBit {
        /// Distance from the end of the journal (clamped to its length).
        back_offset: u64,
    },
    /// A torn snapshot write: the process dies mid-`write`, leaving only
    /// the first `keep_per_mille`/1000 of the new snapshot record on
    /// disk. Recovery must fall back to the previous snapshot.
    TornSnapshot {
        /// Fraction of the snapshot record that reached disk (‰, ≤1000).
        keep_per_mille: u32,
    },
    /// One flipped bit at byte `offset` (taken modulo the file length)
    /// of the current snapshot. The checksum must reject it and recovery
    /// must fall back.
    FlipSnapshotBit {
        /// Byte position of the flip (wrapped modulo the file length).
        offset: u64,
    },
    /// Crash after the new snapshot is renamed into place but before the
    /// journal truncate: the journal still holds records the snapshot
    /// already covers, and recovery must not double-apply them.
    BetweenRenameAndTruncate,
    /// Sector-granularity media damage to the write-ahead journal while
    /// the process is down. The scrubber must detect it and either
    /// repair around it (truncate to the last valid prefix, quarantining
    /// the damaged tail) or fail loudly — never replay garbage.
    CorruptWal {
        /// Target sector (wrapped modulo the journal's sector count).
        sector: u64,
        /// The damage applied to it.
        kind: SectorCorruption,
    },
    /// Sector-granularity media damage to the current snapshot while the
    /// process is down. The scrubber must detect it, quarantine the
    /// generation, and recover from an older valid one — never load a
    /// corrupt image.
    CorruptSnapshot {
        /// Target sector (wrapped modulo the snapshot's sector count).
        sector: u64,
        /// The damage applied to it.
        kind: SectorCorruption,
    },
    /// Sector-granularity media damage to one record file of the
    /// delta-snapshot chain while the process is down. The scrubber
    /// must quarantine the record and recovery must rebuild from the
    /// surviving lineage (or refuse loudly) — never fold a rotten
    /// delta. A no-op on campaigns not running in chain mode.
    CorruptChainRecord {
        /// Which record, counted back from the newest (0 = chain head).
        back: u64,
        /// Target sector (wrapped modulo the record's sector count).
        sector: u64,
        /// The damage applied to it.
        kind: SectorCorruption,
    },
    /// Sector-granularity media damage to one page file of the paged
    /// tree store while the process is down. Page files are a rebuilt
    /// cache, so resume must wipe or overwrite them — rot here may
    /// never influence post-resume state, and the scrubber still
    /// reports it. A no-op on campaigns not running with paging.
    CorruptPage {
        /// Target page file (wrapped modulo the page-file count).
        page: u64,
        /// Target sector (wrapped modulo the file's sector count).
        sector: u64,
        /// The damage applied to it.
        kind: SectorCorruption,
    },
}

impl DiskCrashPoint {
    /// The media-damage payload of a corruption point (`None` for kill
    /// and torn-write points).
    pub fn corruption(&self) -> Option<SectorCorruption> {
        match *self {
            DiskCrashPoint::CorruptWal { kind, .. }
            | DiskCrashPoint::CorruptSnapshot { kind, .. }
            | DiskCrashPoint::CorruptChainRecord { kind, .. }
            | DiskCrashPoint::CorruptPage { kind, .. } => Some(kind),
            _ => None,
        }
    }

    fn corruption_mut(&mut self) -> Option<&mut SectorCorruption> {
        match self {
            DiskCrashPoint::CorruptWal { kind, .. }
            | DiskCrashPoint::CorruptSnapshot { kind, .. }
            | DiskCrashPoint::CorruptChainRecord { kind, .. }
            | DiskCrashPoint::CorruptPage { kind, .. } => Some(kind),
            _ => None,
        }
    }
}

/// A composable set of injected faults, applied on top of the base
/// [`LinkConfig`](crate::LinkConfig). The default plan injects nothing.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a sent message is delivered twice, in parts per 1000.
    pub dup_per_mille: u32,
    /// Probability a delivery picks up an extra reordering delay, in
    /// parts per 1000.
    pub reorder_per_mille: u32,
    /// Upper bound on the extra reordering delay (µs, uniform draw).
    pub reorder_window_us: u64,
    /// Scheduled link partitions between address pairs.
    pub partitions: Vec<Partition>,
    /// Scheduled node crash/restart events.
    pub crashes: Vec<Crash>,
    /// On-disk crash points for durability harnesses (no effect inside
    /// the network simulation itself).
    pub disk: Vec<DiskCrashPoint>,
}

/// An invalid fault plan (or outage schedule), reported at config time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPlanError {
    /// A probability exceeded 1000 parts per mille.
    RateOutOfRange {
        /// Which knob was out of range.
        what: &'static str,
        /// The offending value.
        per_mille: u32,
    },
    /// A time window ends at or before it starts.
    WindowInverted {
        /// Which schedule entry was inverted.
        what: &'static str,
        /// Window start (µs).
        start_us: u64,
        /// Window end (µs).
        end_us: u64,
    },
    /// A schedule entry names a node the simulation does not have.
    NodeOutOfRange {
        /// Which schedule entry named the node.
        what: &'static str,
        /// The out-of-range address.
        node: Addr,
        /// Number of nodes actually in the simulation.
        nodes: u32,
    },
    /// A partition names the same address on both ends.
    SelfPartition {
        /// The address partitioned from itself.
        node: Addr,
    },
    /// Reordering is enabled but the delay window is zero (a no-op that
    /// almost certainly means a misconfigured sweep).
    EmptyReorderWindow,
    /// A zeroed-range corruption covering zero sectors (a no-op that
    /// almost certainly means a misconfigured generator).
    EmptyCorruptionRange,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::RateOutOfRange { what, per_mille } => {
                write!(f, "{what} = {per_mille}‰ exceeds 1000‰")
            }
            FaultPlanError::WindowInverted {
                what,
                start_us,
                end_us,
            } => write!(
                f,
                "{what} window [{start_us}, {end_us}) is inverted or empty"
            ),
            FaultPlanError::NodeOutOfRange { what, node, nodes } => {
                write!(
                    f,
                    "{what} names {node} but the simulation has {nodes} nodes"
                )
            }
            FaultPlanError::SelfPartition { node } => {
                write!(f, "partition of {node} from itself")
            }
            FaultPlanError::EmptyReorderWindow => {
                write!(f, "reorder_per_mille > 0 but reorder_window_us = 0")
            }
            FaultPlanError::EmptyCorruptionRange => {
                write!(f, "zero_range corruption covers 0 sectors")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl FaultPlan {
    /// `true` when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        *self == FaultPlan::default()
    }

    /// Validates every invariant against a simulation of `nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found: rates over 1000‰,
    /// inverted time windows, out-of-range node addresses, self
    /// partitions, and reordering with an empty window.
    pub fn validate(&self, nodes: u32) -> Result<(), FaultPlanError> {
        for (what, per_mille) in [
            ("dup_per_mille", self.dup_per_mille),
            ("reorder_per_mille", self.reorder_per_mille),
        ] {
            if per_mille > 1000 {
                return Err(FaultPlanError::RateOutOfRange { what, per_mille });
            }
        }
        if self.reorder_per_mille > 0 && self.reorder_window_us == 0 {
            return Err(FaultPlanError::EmptyReorderWindow);
        }
        for p in &self.partitions {
            if p.a == p.b {
                return Err(FaultPlanError::SelfPartition { node: p.a });
            }
            if p.until_us <= p.from_us {
                return Err(FaultPlanError::WindowInverted {
                    what: "partition",
                    start_us: p.from_us,
                    end_us: p.until_us,
                });
            }
            for (what, addr) in [("partition", p.a), ("partition", p.b)] {
                if addr.0 >= nodes {
                    return Err(FaultPlanError::NodeOutOfRange {
                        what,
                        node: addr,
                        nodes,
                    });
                }
            }
        }
        for d in &self.disk {
            match *d {
                DiskCrashPoint::TornSnapshot { keep_per_mille } if keep_per_mille > 1000 => {
                    return Err(FaultPlanError::RateOutOfRange {
                        what: "torn_snapshot.keep_per_mille",
                        per_mille: keep_per_mille,
                    });
                }
                d if matches!(
                    d.corruption(),
                    Some(SectorCorruption::ZeroRange { sectors: 0 })
                ) =>
                {
                    return Err(FaultPlanError::EmptyCorruptionRange);
                }
                _ => {}
            }
        }
        for c in &self.crashes {
            if c.restart_us <= c.at_us {
                return Err(FaultPlanError::WindowInverted {
                    what: "crash",
                    start_us: c.at_us,
                    end_us: c.restart_us,
                });
            }
            if c.node.0 >= nodes {
                return Err(FaultPlanError::NodeOutOfRange {
                    what: "crash",
                    node: c.node,
                    nodes,
                });
            }
        }
        Ok(())
    }

    /// `true` when a partition blocks `from → to` at `now`.
    pub fn partitioned(&self, from: Addr, to: Addr, now: SimTime) -> bool {
        self.partitions.iter().any(|p| p.blocks(from, to, now))
    }

    /// Derives the fault plan for one pod→shard link from this
    /// fleet-wide template: rates (duplication, reordering) carry over
    /// unchanged, while every partition and crash window is shifted
    /// forward by a deterministic per-link offset in `[0, jitter_us]` —
    /// so shard links sharing a template do **not** fail in lockstep.
    /// Perfectly correlated failure across shards is the pathological
    /// case a sharded transport must not silently assume away; jittering
    /// per link keeps a fault-matrix sweep honest while staying fully
    /// reproducible (same `link` + `jitter_us` → same plan).
    ///
    /// Window *durations* are preserved (both edges shift together), so
    /// a plan that [`validate`](Self::validate)s keeps validating.
    /// Disk crash points are not link-scoped and carry over unchanged.
    /// `jitter_us = 0` returns the template verbatim.
    #[must_use]
    pub fn for_link(&self, link: u64, jitter_us: u64) -> FaultPlan {
        let mut plan = self.clone();
        if jitter_us == 0 {
            return plan;
        }
        for (i, p) in plan.partitions.iter_mut().enumerate() {
            let shift = splitmix64(link ^ (0xA11C_E000 + i as u64)) % (jitter_us + 1);
            p.from_us += shift;
            p.until_us += shift;
        }
        for (i, c) in plan.crashes.iter_mut().enumerate() {
            let shift = splitmix64(link ^ (0xC8A5_8000 + i as u64)) % (jitter_us + 1);
            c.at_us += shift;
            c.restart_us += shift;
        }
        plan
    }
}

/// Bit-length of `x` (0 for 0): the magnitude term of
/// [`FaultPlan::weight`]. Halving a positive quantity always drops its
/// bit-length by exactly one, which is what makes window/rate halving a
/// *strictly* weight-decreasing shrink step.
fn bits(x: u64) -> u64 {
    u64::from(64 - x.leading_zeros())
}

impl FaultPlan {
    /// Structural complexity of the plan: the quantity delta-debugging
    /// drives toward zero. One unit per scheduled element (partition,
    /// crash, disk crash point) plus the bit-length of every rate and
    /// window width. Every plan produced by
    /// [`shrink_candidates`](Self::shrink_candidates) has **strictly
    /// smaller** weight, so a shrink loop that only adopts candidates
    /// terminates within `weight()` adoptions — the bounded-step
    /// invariant `softborg-search` proptests.
    pub fn weight(&self) -> u64 {
        let mut w = bits(u64::from(self.dup_per_mille))
            + bits(u64::from(self.reorder_per_mille))
            + bits(self.reorder_window_us);
        for p in &self.partitions {
            w += 1 + bits(p.until_us - p.from_us);
        }
        for c in &self.crashes {
            w += 1 + bits(c.restart_us - c.at_us);
        }
        for d in &self.disk {
            w += 1;
            if let Some(SectorCorruption::ZeroRange { sectors }) = d.corruption() {
                // Extra weight for every sector beyond the first, so
                // halving a wide zeroed range is a real shrink step.
                w += bits(u64::from(sectors.saturating_sub(1)));
            }
        }
        w
    }

    /// One-step shrink candidates for delta-debugging: every way to make
    /// the plan *strictly simpler* while staying valid. Aggressive
    /// chunk removals come first (drop half the partitions/crashes at
    /// once), then single-element removals, rate zeroing/halving, and
    /// window narrowing from either edge. Guarantees, given a plan that
    /// [`validate`](Self::validate)s:
    ///
    /// * every candidate also validates (for the same node count), and
    /// * every candidate's [`weight`](Self::weight) is strictly smaller.
    ///
    /// An empty return means the plan is already the empty plan (or
    /// contains nothing shrinkable) — the delta-debug fixpoint.
    pub fn shrink_candidates(&self) -> Vec<FaultPlan> {
        let mut out = Vec::new();
        let mut with = |f: &dyn Fn(&mut FaultPlan)| {
            let mut p = self.clone();
            f(&mut p);
            debug_assert!(
                p.weight() < self.weight(),
                "shrink candidate must strictly reduce weight"
            );
            out.push(p);
        };
        // Chunk removals: halve the element lists in one step so large
        // generated plans collapse in O(log n) adoptions, ddmin-style.
        if self.partitions.len() > 1 {
            let mid = self.partitions.len() / 2;
            with(&|p| {
                p.partitions.drain(..mid);
            });
            with(&|p| {
                p.partitions.truncate(mid);
            });
        }
        if self.crashes.len() > 1 {
            let mid = self.crashes.len() / 2;
            with(&|p| {
                p.crashes.drain(..mid);
            });
            with(&|p| {
                p.crashes.truncate(mid);
            });
        }
        if self.disk.len() > 1 {
            let mid = self.disk.len() / 2;
            with(&|p| {
                p.disk.drain(..mid);
            });
            with(&|p| {
                p.disk.truncate(mid);
            });
        }
        // Single-element removals.
        for i in 0..self.partitions.len() {
            with(&|p| {
                p.partitions.remove(i);
            });
        }
        for i in 0..self.crashes.len() {
            with(&|p| {
                p.crashes.remove(i);
            });
        }
        for i in 0..self.disk.len() {
            with(&|p| {
                p.disk.remove(i);
            });
        }
        // Rates: zero first (most aggressive), then halve.
        if self.dup_per_mille > 0 {
            with(&|p| p.dup_per_mille = 0);
            if self.dup_per_mille > 1 {
                with(&|p| p.dup_per_mille /= 2);
            }
        }
        if self.reorder_per_mille > 0 {
            // Zeroing the rate also zeroes the (now inert) window so the
            // minimal plan carries no dead knobs.
            with(&|p| {
                p.reorder_per_mille = 0;
                p.reorder_window_us = 0;
            });
            if self.reorder_per_mille > 1 {
                with(&|p| p.reorder_per_mille /= 2);
            }
            if self.reorder_window_us > 1 {
                with(&|p| p.reorder_window_us /= 2);
            }
        } else if self.reorder_window_us > 0 {
            // Inert window left behind by a hand-written plan.
            with(&|p| p.reorder_window_us = 0);
        }
        // Window narrowing: halve each partition window keeping either
        // the leading or the trailing edge, and halve crash downtime.
        for i in 0..self.partitions.len() {
            let width = self.partitions[i].until_us - self.partitions[i].from_us;
            if width > 1 {
                with(&|p| p.partitions[i].until_us = p.partitions[i].from_us + width / 2);
                with(&|p| p.partitions[i].from_us = p.partitions[i].until_us - width / 2);
            }
        }
        for i in 0..self.crashes.len() {
            let down = self.crashes[i].restart_us - self.crashes[i].at_us;
            if down > 1 {
                with(&|p| p.crashes[i].restart_us = p.crashes[i].at_us + down / 2);
            }
        }
        // Narrow zeroed corruption ranges (a one-sector hole is the
        // minimal form of "a region of the file went dark").
        for i in 0..self.disk.len() {
            if let Some(SectorCorruption::ZeroRange { sectors }) = self.disk[i].corruption() {
                if sectors > 1 {
                    with(&|p| {
                        if let Some(SectorCorruption::ZeroRange { sectors }) =
                            p.disk[i].corruption_mut()
                        {
                            *sectors = (*sectors / 2).max(1);
                        }
                    });
                }
            }
        }
        out
    }
}

/// SplitMix64: a tiny stateless bit-mixer for per-link schedule jitter.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> FaultPlan {
        FaultPlan {
            dup_per_mille: 100,
            reorder_per_mille: 50,
            reorder_window_us: 10_000,
            partitions: vec![Partition {
                a: Addr(0),
                b: Addr(1),
                from_us: 5,
                until_us: 10,
            }],
            crashes: vec![Crash {
                node: Addr(1),
                at_us: 100,
                restart_us: 200,
            }],
            disk: vec![
                DiskCrashPoint::AtRoundBoundary { round: 3 },
                DiskCrashPoint::TornSnapshot {
                    keep_per_mille: 500,
                },
                DiskCrashPoint::BetweenRenameAndTruncate,
                DiskCrashPoint::CorruptWal {
                    sector: 7,
                    kind: SectorCorruption::ZeroRange { sectors: 6 },
                },
                DiskCrashPoint::CorruptSnapshot {
                    sector: 1,
                    kind: SectorCorruption::FlipBit { bit: 4000 },
                },
                DiskCrashPoint::CorruptChainRecord {
                    back: 2,
                    sector: 0,
                    kind: SectorCorruption::TornWrite { keep_bytes: 17 },
                },
                DiskCrashPoint::CorruptPage {
                    page: 5,
                    sector: 2,
                    kind: SectorCorruption::ZeroRange { sectors: 3 },
                },
            ],
        }
    }

    #[test]
    fn valid_plan_passes() {
        assert_eq!(plan().validate(2), Ok(()));
        assert!(FaultPlan::default().is_empty());
        assert!(!plan().is_empty());
    }

    #[test]
    fn rates_over_one_thousand_are_rejected() {
        let p = FaultPlan {
            dup_per_mille: 1001,
            ..FaultPlan::default()
        };
        assert_eq!(
            p.validate(1),
            Err(FaultPlanError::RateOutOfRange {
                what: "dup_per_mille",
                per_mille: 1001
            })
        );
    }

    #[test]
    fn inverted_windows_are_rejected() {
        let mut p = plan();
        p.partitions[0].until_us = p.partitions[0].from_us;
        assert!(matches!(
            p.validate(2),
            Err(FaultPlanError::WindowInverted {
                what: "partition",
                ..
            })
        ));
        let mut p = plan();
        p.crashes[0].restart_us = p.crashes[0].at_us;
        assert!(matches!(
            p.validate(2),
            Err(FaultPlanError::WindowInverted { what: "crash", .. })
        ));
    }

    #[test]
    fn out_of_range_nodes_are_rejected() {
        assert!(matches!(
            plan().validate(1),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn self_partition_is_rejected() {
        let p = FaultPlan {
            partitions: vec![Partition {
                a: Addr(3),
                b: Addr(3),
                from_us: 0,
                until_us: 5,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(
            p.validate(9),
            Err(FaultPlanError::SelfPartition { node: Addr(3) })
        );
    }

    #[test]
    fn torn_snapshot_over_one_thousand_per_mille_is_rejected() {
        let p = FaultPlan {
            disk: vec![DiskCrashPoint::TornSnapshot {
                keep_per_mille: 1001,
            }],
            ..FaultPlan::default()
        };
        assert_eq!(
            p.validate(1),
            Err(FaultPlanError::RateOutOfRange {
                what: "torn_snapshot.keep_per_mille",
                per_mille: 1001
            })
        );
    }

    #[test]
    fn zero_sector_corruption_range_is_rejected() {
        let p = FaultPlan {
            disk: vec![DiskCrashPoint::CorruptSnapshot {
                sector: 3,
                kind: SectorCorruption::ZeroRange { sectors: 0 },
            }],
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(1), Err(FaultPlanError::EmptyCorruptionRange));
    }

    #[test]
    fn flip_bit_flips_exactly_one_in_bounds_bit() {
        let mut bytes = vec![0u8; 700]; // 2 sectors, the second partial
        let pristine = bytes.clone();
        // Sector index wraps (5 % 2 = 1); the bit wraps into the 188
        // bytes the partial sector actually has.
        assert!(SectorCorruption::FlipBit { bit: 123_456 }.apply(&mut bytes, 5));
        let flipped: Vec<usize> = (0..bytes.len())
            .filter(|&i| bytes[i] != pristine[i])
            .collect();
        assert_eq!(flipped.len(), 1);
        assert!(flipped[0] >= SECTOR_BYTES as usize, "hit the wrong sector");
        assert_eq!((bytes[flipped[0]] ^ pristine[flipped[0]]).count_ones(), 1);
        assert!(!SectorCorruption::FlipBit { bit: 0 }.apply(&mut [], 0));
    }

    #[test]
    fn zero_range_clears_whole_sectors_and_clamps_to_the_file() {
        let mut bytes = vec![0xFFu8; 1100]; // 3 sectors, the last partial
        assert!(SectorCorruption::ZeroRange { sectors: 9 }.apply(&mut bytes, 1));
        assert!(bytes[..512].iter().all(|&b| b == 0xFF), "sector 0 damaged");
        assert!(bytes[512..].iter().all(|&b| b == 0), "range not zeroed");
        assert_eq!(bytes.len(), 1100, "corruption must never change length");
    }

    #[test]
    fn torn_write_keeps_a_prefix_and_scribbles_the_rest() {
        let mut bytes = vec![0x11u8; 600];
        assert!(SectorCorruption::TornWrite { keep_bytes: 100 }.apply(&mut bytes, 0));
        assert!(bytes[..100].iter().all(|&b| b == 0x11));
        assert!(bytes[100..512].iter().all(|&b| b == 0xA5));
        assert!(bytes[512..].iter().all(|&b| b == 0x11), "wrong sector torn");
    }

    #[test]
    fn reorder_without_window_is_rejected() {
        let p = FaultPlan {
            reorder_per_mille: 10,
            reorder_window_us: 0,
            ..FaultPlan::default()
        };
        assert_eq!(p.validate(1), Err(FaultPlanError::EmptyReorderWindow));
    }

    #[test]
    fn for_link_with_zero_jitter_is_verbatim() {
        assert_eq!(plan().for_link(3, 0), plan());
    }

    #[test]
    fn for_link_is_deterministic_and_decorrelates_links() {
        let a = plan().for_link(1, 5_000);
        assert_eq!(a, plan().for_link(1, 5_000));
        let b = plan().for_link(2, 5_000);
        assert_ne!(a, b, "distinct links should see shifted fault windows");
        // Shifts move both edges together: every window keeps its duration
        // (and therefore stays valid).
        for (derived, base) in a.partitions.iter().zip(&plan().partitions) {
            assert_eq!(
                derived.until_us - derived.from_us,
                base.until_us - base.from_us
            );
            assert!(derived.from_us >= base.from_us);
            assert!(derived.from_us <= base.from_us + 5_000);
        }
        for (derived, base) in a.crashes.iter().zip(&plan().crashes) {
            assert_eq!(
                derived.restart_us - derived.at_us,
                base.restart_us - base.at_us
            );
        }
        // Rates and disk crash points are never jittered.
        assert_eq!(a.dup_per_mille, plan().dup_per_mille);
        assert_eq!(a.reorder_per_mille, plan().reorder_per_mille);
        assert_eq!(a.disk, plan().disk);
        assert_eq!(a.validate(2), Ok(()));
        assert_eq!(b.validate(2), Ok(()));
    }

    #[test]
    fn weight_is_zero_only_for_the_empty_plan() {
        assert_eq!(FaultPlan::default().weight(), 0);
        assert!(plan().weight() > 0);
    }

    #[test]
    fn empty_plan_has_no_shrink_candidates() {
        assert!(FaultPlan::default().shrink_candidates().is_empty());
    }

    #[test]
    fn shrink_candidates_strictly_reduce_weight_and_stay_valid() {
        let p = plan();
        let cands = p.shrink_candidates();
        assert!(!cands.is_empty());
        for c in &cands {
            assert!(c.weight() < p.weight(), "{c:?} did not shrink {p:?}");
            assert_eq!(c.validate(2), Ok(()), "{c:?} must stay valid");
        }
    }

    #[test]
    fn repeated_shrinking_reaches_the_empty_plan() {
        // Always adopting the first candidate must drain the plan in at
        // most weight() adoptions — the bounded-termination invariant.
        let mut cur = plan();
        let budget = cur.weight();
        let mut steps = 0u64;
        while let Some(next) = cur.shrink_candidates().into_iter().next() {
            cur = next;
            steps += 1;
            assert!(steps <= budget, "shrink exceeded weight bound {budget}");
        }
        assert!(cur.is_empty(), "fixpoint must be the empty plan: {cur:?}");
    }

    #[test]
    fn zeroing_reorder_takes_the_inert_window_with_it() {
        let p = FaultPlan {
            reorder_per_mille: 10,
            reorder_window_us: 5_000,
            ..FaultPlan::default()
        };
        assert!(p
            .shrink_candidates()
            .iter()
            .any(|c| c.reorder_per_mille == 0 && c.reorder_window_us == 0));
    }

    #[test]
    fn partition_windows_are_symmetric_and_half_open() {
        let p = plan();
        assert!(!p.partitioned(Addr(0), Addr(1), SimTime(4)));
        assert!(p.partitioned(Addr(0), Addr(1), SimTime(5)));
        assert!(p.partitioned(Addr(1), Addr(0), SimTime(9)));
        assert!(!p.partitioned(Addr(0), Addr(1), SimTime(10)));
        assert!(!p.partitioned(Addr(0), Addr(2), SimTime(7)));
    }
}
