//! The collective execution tree (paper §3.2, Figures 2 & 3).
//!
//! Every program encodes a decision tree; each execution materializes one
//! root-to-leaf path. The hive aggregates naturally-occurring paths into
//! an (incomplete) execution tree: merging a path walks the existing tree
//! from the root, finds the lowest common ancestor — the first divergence
//! point — and splices the new suffix in. Because every merged path came
//! from a real execution, every node is *feasible by construction*; no
//! constraint solving is needed (the paper's key observation).
//!
//! Nodes carry visit and outcome tallies; arms can be marked *infeasible*
//! by symbolic analysis, which is what lets finite exploration close a
//! subtree (and ultimately yield a proof, §3.3).
//!
//! Storage-wise the arena lives behind [`softborg_store::ItemStore`]:
//! in-memory by default, or paged to checksummed page files under a
//! resident budget ([`ExecutionTree::enable_paging`]) so the tree can
//! outgrow RAM. The tree also tracks which nodes changed since the last
//! [`mark_clean`](ExecutionTree::mark_clean), which is what lets the
//! durability layer snapshot a *delta* ([`encode_delta_into`]
//! (ExecutionTree::encode_delta_into)) instead of the whole arena.

use serde::{Deserialize, Serialize};
use softborg_program::codec::{self, CodecError};
use softborg_program::interp::Outcome;
use softborg_program::{BranchSiteId, ProgramId};
use softborg_store::{ItemStore, PageItem, PageStats, PagedConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};

/// Index of a node in the tree arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node's id.
    pub const ROOT: NodeId = NodeId(0);

    fn index(self) -> usize {
        self.0 as usize
    }
}

/// Counts of execution outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeTally {
    /// Successful terminations.
    pub success: u64,
    /// Crashes.
    pub crash: u64,
    /// Deadlocks.
    pub deadlock: u64,
    /// Hangs.
    pub hang: u64,
}

impl OutcomeTally {
    /// Adds one outcome.
    pub fn add(&mut self, outcome: &Outcome) {
        match outcome {
            Outcome::Success => self.success += 1,
            Outcome::Crash { .. } => self.crash += 1,
            Outcome::Deadlock { .. } => self.deadlock += 1,
            Outcome::Hang { .. } => self.hang += 1,
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &OutcomeTally) {
        self.success += other.success;
        self.crash += other.crash;
        self.deadlock += other.deadlock;
        self.hang += other.hang;
    }

    /// Total outcomes counted.
    pub fn total(&self) -> u64 {
        self.success + self.crash + self.deadlock + self.hang
    }

    /// Non-success outcomes counted.
    pub fn failures(&self) -> u64 {
        self.crash + self.deadlock + self.hang
    }
}

/// One decision edge out of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct EdgeRec {
    site: BranchSiteId,
    taken: bool,
    child: NodeId,
}

/// A node of the execution tree: the state "after this decision prefix".
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Incoming edge (parent, site, taken); `None` for the root.
    parent: Option<(NodeId, BranchSiteId, bool)>,
    /// Outgoing decision edges (usually one site with up to two arms;
    /// thread interleavings can surface different sites at one prefix).
    edges: Vec<EdgeRec>,
    /// Arms proven infeasible by symbolic analysis.
    infeasible: Vec<(BranchSiteId, bool)>,
    /// Executions that passed through this node.
    pub visits: u64,
    /// Executions that *ended* at this node, by outcome.
    pub terminal: OutcomeTally,
}

impl Node {
    fn new(parent: Option<(NodeId, BranchSiteId, bool)>) -> Self {
        Node {
            parent,
            edges: Vec::new(),
            infeasible: Vec::new(),
            visits: 0,
            terminal: OutcomeTally::default(),
        }
    }

    /// The child along `(site, taken)`, if explored.
    pub fn child(&self, site: BranchSiteId, taken: bool) -> Option<NodeId> {
        self.edges
            .iter()
            .find(|e| e.site == site && e.taken == taken)
            .map(|e| e.child)
    }

    /// Branch sites observed at this node.
    pub fn sites(&self) -> Vec<BranchSiteId> {
        let mut s: Vec<BranchSiteId> = self.edges.iter().map(|e| e.site).collect();
        s.sort();
        s.dedup();
        s
    }

    /// Whether `(site, taken)` has been proven infeasible here.
    pub fn is_infeasible(&self, site: BranchSiteId, taken: bool) -> bool {
        self.infeasible.contains(&(site, taken))
    }

    /// `true` when at least one execution terminated here.
    pub fn is_terminal(&self) -> bool {
        self.terminal.total() > 0
    }
}

/// Writes one node in the durable byte format (shared by full snapshots,
/// delta records, and page files — one codec, three containers).
fn encode_node_into(n: &Node, buf: &mut Vec<u8>) {
    match n.parent {
        None => codec::put_u8(buf, 0),
        Some((parent, site, taken)) => {
            codec::put_u8(buf, 1);
            codec::put_u32(buf, parent.0);
            codec::put_u32(buf, site.0);
            codec::put_u8(buf, u8::from(taken));
        }
    }
    codec::put_u32(buf, n.edges.len() as u32);
    for e in &n.edges {
        codec::put_u32(buf, e.site.0);
        codec::put_u8(buf, u8::from(e.taken));
        codec::put_u32(buf, e.child.0);
    }
    codec::put_u32(buf, n.infeasible.len() as u32);
    for (site, taken) in &n.infeasible {
        codec::put_u32(buf, site.0);
        codec::put_u8(buf, u8::from(*taken));
    }
    codec::put_u64(buf, n.visits);
    codec::put_u64(buf, n.terminal.success);
    codec::put_u64(buf, n.terminal.crash);
    codec::put_u64(buf, n.terminal.deadlock);
    codec::put_u64(buf, n.terminal.hang);
}

/// Reads one node written by [`encode_node_into`]; total (typed errors,
/// never panics).
fn decode_node(r: &mut codec::Reader<'_>) -> Result<Node, CodecError> {
    let parent = match r.u8("Node.parent")? {
        0 => None,
        1 => {
            let p = NodeId(r.u32("Node.parent.id")?);
            let site = BranchSiteId::new(r.u32("Node.parent.site")?);
            let taken = r.u8("Node.parent.taken")? != 0;
            Some((p, site, taken))
        }
        tag => {
            return Err(CodecError::BadTag {
                what: "Node.parent",
                tag,
            })
        }
    };
    let n_edges = r.seq_len("Node.edges", 9)?;
    let mut edges = Vec::with_capacity(n_edges);
    for _ in 0..n_edges {
        edges.push(EdgeRec {
            site: BranchSiteId::new(r.u32("Edge.site")?),
            taken: r.u8("Edge.taken")? != 0,
            child: NodeId(r.u32("Edge.child")?),
        });
    }
    let n_inf = r.seq_len("Node.infeasible", 5)?;
    let mut infeasible = Vec::with_capacity(n_inf);
    for _ in 0..n_inf {
        let site = BranchSiteId::new(r.u32("Infeasible.site")?);
        infeasible.push((site, r.u8("Infeasible.taken")? != 0));
    }
    Ok(Node {
        parent,
        edges,
        infeasible,
        visits: r.u64("Node.visits")?,
        terminal: OutcomeTally {
            success: r.u64("Tally.success")?,
            crash: r.u64("Tally.crash")?,
            deadlock: r.u64("Tally.deadlock")?,
            hang: r.u64("Tally.hang")?,
        },
    })
}

impl PageItem for Node {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        encode_node_into(self, buf);
    }
    fn decode(r: &mut codec::Reader<'_>) -> Result<Self, CodecError> {
        decode_node(r)
    }
}

/// Statistics from one path merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeStats {
    /// Nodes created by the splice (0 for an already-known path).
    pub new_nodes: u64,
    /// Depth at which the path diverged from the tree (the LCA depth).
    pub lca_depth: u64,
    /// Total path length merged.
    pub path_len: u64,
    /// Whether this exact path (decisions + terminal) was new.
    pub new_path: bool,
}

/// An unexplored arm at the tree frontier — a candidate for guidance
/// (paper §3.3: "identify directions toward which to guide the pods").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierArm {
    /// Node with the unexplored arm.
    pub node: NodeId,
    /// Branch site whose arm is unexplored.
    pub site: BranchSiteId,
    /// The unexplored direction.
    pub missing_taken: bool,
    /// Depth of the node.
    pub depth: u64,
    /// How many executions reached the node (more visits with the other
    /// arm only = rarer arm).
    pub visits: u64,
}

/// Coverage summary for experiment E2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoverageStats {
    /// Total tree nodes.
    pub nodes: u64,
    /// Distinct complete paths observed.
    pub distinct_paths: u64,
    /// Distinct branch sites seen anywhere in the tree.
    pub sites_seen: u64,
    /// Total paths merged (including duplicates).
    pub paths_merged: u64,
    /// Unexplored frontier arms.
    pub frontier_arms: u64,
    /// Fraction of nodes inside closed (fully explored) subtrees,
    /// in [0, 1].
    pub closed_fraction: f64,
}

/// Why applying a tree delta was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// The delta payload itself was malformed.
    Codec(CodecError),
    /// The delta was encoded for a different program's tree.
    ProgramMismatch {
        /// Program of the tree being patched.
        expected: u64,
        /// Program recorded in the delta.
        found: u64,
    },
    /// The delta's base node count does not match this tree — the chain
    /// is out of order or a record was skipped.
    BaseMismatch {
        /// Node count the delta was encoded against.
        expected: u32,
        /// Node count of the tree being patched.
        found: u32,
    },
}

impl From<CodecError> for DeltaError {
    fn from(e: CodecError) -> Self {
        DeltaError::Codec(e)
    }
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::Codec(e) => write!(f, "malformed tree delta: {e}"),
            DeltaError::ProgramMismatch { expected, found } => {
                write!(
                    f,
                    "tree delta for program {found}, tree is program {expected}"
                )
            }
            DeltaError::BaseMismatch { expected, found } => write!(
                f,
                "tree delta encoded against {expected} nodes, tree has {found}"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Per-node closure info extracted under a single store borrow (the
/// paged arena hands out access through closures, so the traversals
/// below pull what they need out of each node and recurse outside).
enum NodeClosure {
    Leaf { terminal: bool },
    Multi,
    Single { arms: [ArmInfo; 2] },
}

enum ArmInfo {
    Infeasible,
    Missing,
    Child(NodeId),
}

/// The collective execution tree. See the [module docs](self).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionTree {
    program: ProgramId,
    nodes: ItemStore<Node>,
    paths_merged: u64,
    distinct_paths: u64,
    path_hashes: HashSet<u64>,
    /// Arena length at the last [`mark_clean`](Self::mark_clean); nodes
    /// beyond it are new since the last snapshot.
    clean_len: usize,
    /// Pre-existing nodes mutated since the last snapshot.
    dirty: BTreeSet<u32>,
    /// Path hashes first seen since the last snapshot.
    fresh_hashes: Vec<u64>,
}

impl ExecutionTree {
    /// An empty tree for `program`.
    pub fn new(program: ProgramId) -> Self {
        let mut nodes = ItemStore::new_mem();
        nodes.push(Node::new(None));
        ExecutionTree {
            program,
            nodes,
            paths_merged: 0,
            distinct_paths: 0,
            path_hashes: HashSet::new(),
            clean_len: 1,
            dirty: BTreeSet::new(),
            fresh_hashes: Vec::new(),
        }
    }

    /// An empty tree whose arena pages cold nodes out to `cfg.dir` under
    /// the configured resident budget.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the page directory.
    pub fn new_paged(program: ProgramId, cfg: PagedConfig) -> std::io::Result<Self> {
        let mut t = ExecutionTree::new(program);
        t.enable_paging(cfg)?;
        Ok(t)
    }

    /// Moves the arena behind the paged store: existing nodes are pushed
    /// in index order (so page assignment is a pure function of the
    /// arena, not of history) and cold pages spill to `cfg.dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors creating the page directory.
    pub fn enable_paging(&mut self, cfg: PagedConfig) -> std::io::Result<()> {
        let mut paged = ItemStore::new_paged(cfg)?;
        self.nodes.for_each(|_, n| paged.push(n.clone()));
        self.nodes = paged;
        Ok(())
    }

    /// Whether the arena is paged.
    pub fn is_paged(&self) -> bool {
        self.nodes.is_paged()
    }

    /// Paging counters (faults, evictions, residency); mostly zeros in
    /// memory mode.
    pub fn page_stats(&self) -> PageStats {
        self.nodes.stats()
    }

    /// Writes dirty resident pages to disk (no-op in memory mode).
    pub fn flush_pages(&self) {
        self.nodes.flush();
    }

    /// Pins the page holding `node` into memory so guidance can hold the
    /// active frontier resident (no-op in memory mode). Pins nest;
    /// callers unpin symmetrically with [`unpin_node`](Self::unpin_node).
    pub fn pin_node(&self, node: NodeId) {
        self.nodes.pin(node.index());
    }

    /// Releases one pin taken by [`pin_node`](Self::pin_node).
    pub fn unpin_node(&self, node: NodeId) {
        self.nodes.unpin(node.index());
    }

    /// The program this tree describes.
    pub fn program(&self) -> ProgramId {
        self.program
    }

    /// Number of nodes (≥ 1; the root always exists).
    pub fn node_count(&self) -> u64 {
        self.nodes.len() as u64
    }

    /// Total paths merged, including duplicates.
    pub fn paths_merged(&self) -> u64 {
        self.paths_merged
    }

    /// Distinct (path, outcome-class) combinations merged.
    pub fn distinct_paths(&self) -> u64 {
        self.distinct_paths
    }

    /// Runs `f` against a node. The node may live on an evicted page, so
    /// access is scoped to the closure; `f` must not touch the tree's
    /// arena again (clone what you need out instead).
    pub fn with_node<R>(&self, id: NodeId, f: impl FnOnce(&Node) -> R) -> R {
        self.nodes.with(id.index(), f)
    }

    /// An owned copy of a node (convenience over
    /// [`with_node`](Self::with_node)).
    pub fn node_cloned(&self, id: NodeId) -> Node {
        self.nodes.get_cloned(id.index())
    }

    /// Records that a pre-snapshot node is about to change.
    fn touch(&mut self, id: NodeId) {
        if id.index() < self.clean_len {
            self.dirty.insert(id.0);
        }
    }

    /// Merges one execution path (global decision sequence + outcome).
    ///
    /// Walks from the root until the first unexplored decision (the LCA of
    /// the new path and the tree), then splices the remaining suffix as
    /// fresh nodes — Figure 3 of the paper.
    pub fn merge_path(
        &mut self,
        decisions: &[(BranchSiteId, bool)],
        outcome: &Outcome,
    ) -> MergeStats {
        self.paths_merged += 1;
        let mut cur = NodeId::ROOT;
        let mut new_nodes = 0u64;
        let mut lca_depth = 0u64;
        self.touch(cur);
        self.nodes.with_mut(cur.index(), |n| n.visits += 1);
        for (depth, (site, taken)) in decisions.iter().enumerate() {
            let known = self.nodes.with(cur.index(), |n| n.child(*site, *taken));
            match known {
                Some(child) => {
                    cur = child;
                    lca_depth = depth as u64 + 1;
                }
                None => {
                    let child = NodeId(self.nodes.len() as u32);
                    self.nodes.push(Node::new(Some((cur, *site, *taken))));
                    self.touch(cur);
                    self.nodes.with_mut(cur.index(), |n| {
                        n.edges.push(EdgeRec {
                            site: *site,
                            taken: *taken,
                            child,
                        })
                    });
                    new_nodes += 1;
                    cur = child;
                }
            }
            self.touch(cur);
            self.nodes.with_mut(cur.index(), |n| n.visits += 1);
        }
        self.touch(cur);
        self.nodes
            .with_mut(cur.index(), |n| n.terminal.add(outcome));

        let mut h = DefaultHasher::new();
        decisions.hash(&mut h);
        std::mem::discriminant(outcome).hash(&mut h);
        let hash = h.finish();
        let new_path = self.path_hashes.insert(hash);
        if new_path {
            self.distinct_paths += 1;
            self.fresh_hashes.push(hash);
        }
        MergeStats {
            new_nodes,
            lca_depth,
            path_len: decisions.len() as u64,
            new_path,
        }
    }

    /// Marks an arm as proven infeasible (from symbolic analysis).
    pub fn mark_infeasible(&mut self, node: NodeId, site: BranchSiteId, taken: bool) {
        self.touch(node);
        self.nodes.with_mut(node.index(), |n| {
            if !n.infeasible.contains(&(site, taken)) {
                n.infeasible.push((site, taken));
            }
        });
    }

    /// The decision prefix leading to `node` (root-first).
    pub fn prefix(&self, node: NodeId) -> Vec<(BranchSiteId, bool)> {
        let mut out = Vec::new();
        let mut cur = node;
        while let Some((parent, site, taken)) = self.nodes.with(cur.index(), |n| n.parent) {
            out.push((site, taken));
            cur = parent;
        }
        out.reverse();
        out
    }

    /// Depth of a node.
    pub fn depth(&self, node: NodeId) -> u64 {
        let mut d = 0;
        let mut cur = node;
        while let Some((parent, ..)) = self.nodes.with(cur.index(), |n| n.parent) {
            d += 1;
            cur = parent;
        }
        d
    }

    /// Enumerates unexplored arms: nodes where one direction of an
    /// observed site has been taken but the other is neither explored nor
    /// infeasible.
    pub fn frontier(&self) -> Vec<FrontierArm> {
        let mut out = Vec::new();
        for i in 0..self.nodes.len() {
            let id = NodeId(i as u32);
            let (missing, visits) = self.nodes.with(i, |n| {
                let mut missing = Vec::new();
                for site in n.sites() {
                    for taken in [false, true] {
                        if n.child(site, taken).is_none() && !n.is_infeasible(site, taken) {
                            missing.push((site, taken));
                        }
                    }
                }
                (missing, n.visits)
            });
            if missing.is_empty() {
                continue;
            }
            let depth = self.depth(id);
            for (site, missing_taken) in missing {
                out.push(FrontierArm {
                    node: id,
                    site,
                    missing_taken,
                    depth,
                    visits,
                });
            }
        }
        out
    }

    /// What closure needs to know about one node, extracted under a
    /// single arena borrow.
    fn closure_info(&self, id: NodeId) -> NodeClosure {
        self.nodes.with(id.index(), |n| {
            if n.edges.is_empty() {
                return NodeClosure::Leaf {
                    terminal: n.is_terminal(),
                };
            }
            let sites = n.sites();
            // Interleaving-divergent nodes (multiple sites) cannot be
            // declared closed: unseen schedules may surface yet more arms.
            if sites.len() != 1 {
                return NodeClosure::Multi;
            }
            let site = sites[0];
            let arm = |taken: bool| {
                if n.is_infeasible(site, taken) {
                    ArmInfo::Infeasible
                } else {
                    match n.child(site, taken) {
                        Some(c) => ArmInfo::Child(c),
                        None => ArmInfo::Missing,
                    }
                }
            };
            NodeClosure::Single {
                arms: [arm(false), arm(true)],
            }
        })
    }

    /// Whether the subtree rooted at `node` is *closed*: every observed
    /// site has both arms explored-and-closed or infeasible, and leaves
    /// are genuine terminals. A closed, failure-free subtree is provable
    /// (paper §3.3).
    pub fn is_closed(&self, node: NodeId) -> bool {
        let mut closed = vec![None::<bool>; self.nodes.len()];
        self.closed_rec(node, &mut closed)
    }

    /// Iterative post-order closure computation (paths can be tens of
    /// thousands of decisions deep — hang traces — so recursion would
    /// overflow the stack).
    fn closed_rec(&self, root: NodeId, memo: &mut [Option<bool>]) -> bool {
        let mut stack: Vec<(NodeId, bool)> = vec![(root, false)];
        while let Some((node, expanded)) = stack.pop() {
            if memo[node.index()].is_some() {
                continue;
            }
            match self.closure_info(node) {
                NodeClosure::Leaf { terminal } => memo[node.index()] = Some(terminal),
                NodeClosure::Multi => memo[node.index()] = Some(false),
                NodeClosure::Single { arms } => {
                    if !expanded {
                        stack.push((node, true));
                        for arm in &arms {
                            if let ArmInfo::Child(c) = arm {
                                stack.push((*c, false));
                            }
                        }
                        continue;
                    }
                    let closed = arms.iter().all(|arm| match arm {
                        ArmInfo::Infeasible => true,
                        ArmInfo::Missing => false,
                        ArmInfo::Child(c) => memo[c.index()].unwrap_or(false),
                    });
                    memo[node.index()] = Some(closed);
                }
            }
        }
        memo[root.index()].unwrap_or(false)
    }

    /// Fraction of nodes inside closed subtrees.
    pub fn closed_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        let mut memo = vec![None::<bool>; self.nodes.len()];
        let closed_nodes = (0..self.nodes.len())
            .filter(|i| self.closed_rec(NodeId(*i as u32), &mut memo))
            .count();
        closed_nodes as f64 / self.nodes.len() as f64
    }

    /// Sum of failure outcomes recorded anywhere in the subtree of `node`.
    pub fn subtree_failures(&self, node: NodeId) -> u64 {
        let mut sum = 0;
        let mut stack = vec![node];
        while let Some(id) = stack.pop() {
            let (failures, children) = self.nodes.with(id.index(), |n| {
                (
                    n.terminal.failures(),
                    n.edges.iter().map(|e| e.child).collect::<Vec<_>>(),
                )
            });
            sum += failures;
            stack.extend(children);
        }
        sum
    }

    /// Coverage summary.
    pub fn coverage(&self) -> CoverageStats {
        let mut sites: HashSet<BranchSiteId> = HashSet::new();
        self.nodes.for_each(|_, n| {
            for e in &n.edges {
                sites.insert(e.site);
            }
        });
        CoverageStats {
            nodes: self.node_count(),
            distinct_paths: self.distinct_paths,
            sites_seen: sites.len() as u64,
            paths_merged: self.paths_merged,
            frontier_arms: self.frontier().len() as u64,
            closed_fraction: self.closed_fraction(),
        }
    }

    /// A structural digest (ignores tallies): two replicas that explored
    /// the same decision structure agree. Iterative pre-order with
    /// push/pop markers (trees can be very deep).
    pub fn digest(&self) -> u64 {
        let mut h = DefaultHasher::new();
        enum Item {
            Enter(NodeId),
            Exit,
        }
        let mut stack = vec![Item::Enter(NodeId::ROOT)];
        while let Some(item) = stack.pop() {
            match item {
                Item::Exit => 0xE21Du16.hash(&mut h),
                Item::Enter(node) => {
                    let (terminal, labels, children) = self.nodes.with(node.index(), |n| {
                        let mut edges: Vec<&EdgeRec> = n.edges.iter().collect();
                        edges.sort_by_key(|e| (e.site, e.taken));
                        (
                            n.is_terminal(),
                            edges.iter().map(|e| (e.site, e.taken)).collect::<Vec<_>>(),
                            edges.iter().map(|e| e.child).collect::<Vec<_>>(),
                        )
                    });
                    terminal.hash(&mut h);
                    labels.len().hash(&mut h);
                    stack.push(Item::Exit);
                    // Hash labels in sorted order; push children in
                    // reverse so traversal visits edges in sorted order.
                    for label in &labels {
                        label.hash(&mut h);
                    }
                    for c in children.into_iter().rev() {
                        stack.push(Item::Enter(c));
                    }
                }
            }
        }
        h.finish()
    }

    /// Merges another tree for the same program into this one (used by
    /// distributed hive synchronization): structure is unioned, tallies
    /// are summed.
    pub fn absorb(&mut self, other: &ExecutionTree) {
        // Iterative pairing walk (deep trees would overflow a recursive
        // version's stack).
        let mut stack: Vec<(NodeId, NodeId)> = vec![(NodeId::ROOT, NodeId::ROOT)];
        while let Some((mine, theirs)) = stack.pop() {
            let their_node = other.nodes.get_cloned(theirs.index());
            self.touch(mine);
            self.nodes.with_mut(mine.index(), |n| {
                n.visits += their_node.visits;
                n.terminal.merge(&their_node.terminal);
                for inf in &their_node.infeasible {
                    if !n.infeasible.contains(inf) {
                        n.infeasible.push(*inf);
                    }
                }
            });
            for e in &their_node.edges {
                let known = self.nodes.with(mine.index(), |n| n.child(e.site, e.taken));
                let child = match known {
                    Some(c) => c,
                    None => {
                        let c = NodeId(self.nodes.len() as u32);
                        self.nodes.push(Node::new(Some((mine, e.site, e.taken))));
                        self.touch(mine);
                        self.nodes.with_mut(mine.index(), |n| {
                            n.edges.push(EdgeRec {
                                site: e.site,
                                taken: e.taken,
                                child: c,
                            })
                        });
                        c
                    }
                };
                stack.push((child, e.child));
            }
        }
        self.paths_merged += other.paths_merged;
        for h in &other.path_hashes {
            if self.path_hashes.insert(*h) {
                self.distinct_paths += 1;
                self.fresh_hashes.push(*h);
            }
        }
    }

    /// Serializes the full tree (structure *and* tallies, unlike
    /// [`digest`](Self::digest)) into the durable-snapshot byte format.
    /// Deterministic: `path_hashes` is emitted in sorted order so two
    /// trees with identical logical state encode identically.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.program.0);
        codec::put_u32(buf, self.nodes.len() as u32);
        self.nodes.for_each(|_, n| encode_node_into(n, buf));
        codec::put_u64(buf, self.paths_merged);
        codec::put_u64(buf, self.distinct_paths);
        let mut hashes: Vec<u64> = self.path_hashes.iter().copied().collect();
        hashes.sort_unstable();
        codec::put_u32(buf, hashes.len() as u32);
        for h in hashes {
            codec::put_u64(buf, h);
        }
    }

    /// Decodes a tree previously written by [`encode_into`](Self::encode_into).
    ///
    /// The result is clean: a following [`encode_delta_into`]
    /// (Self::encode_delta_into) describes exactly what changed since
    /// this snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input; never
    /// panics.
    pub fn decode(r: &mut codec::Reader<'_>) -> Result<Self, CodecError> {
        let program = ProgramId(r.u64("Tree.program")?);
        let n_nodes = r.seq_len("Tree.nodes", 42)?;
        let mut nodes = ItemStore::new_mem();
        for _ in 0..n_nodes {
            nodes.push(decode_node(r)?);
        }
        let paths_merged = r.u64("Tree.paths_merged")?;
        let distinct_paths = r.u64("Tree.distinct_paths")?;
        let n_hashes = r.seq_len("Tree.path_hashes", 8)?;
        let mut path_hashes = HashSet::with_capacity(n_hashes);
        for _ in 0..n_hashes {
            path_hashes.insert(r.u64("Tree.path_hash")?);
        }
        Ok(ExecutionTree {
            program,
            clean_len: nodes.len(),
            nodes,
            paths_merged,
            distinct_paths,
            path_hashes,
            dirty: BTreeSet::new(),
            fresh_hashes: Vec::new(),
        })
    }

    /// Nodes mutated or created since the last
    /// [`mark_clean`](Self::mark_clean) — the size of the next delta.
    pub fn pending_nodes(&self) -> u64 {
        self.dirty.len() as u64 + (self.nodes.len() - self.clean_len) as u64
    }

    /// Forgets change tracking: the current state becomes the delta base.
    /// Called by the durability layer right after it persists a snapshot
    /// (full or delta) of this tree.
    pub fn mark_clean(&mut self) {
        self.clean_len = self.nodes.len();
        self.dirty.clear();
        self.fresh_hashes.clear();
    }

    /// Serializes only what changed since the last
    /// [`mark_clean`](Self::mark_clean): mutated pre-existing nodes (by
    /// index), appended nodes, absolute counters, and path hashes first
    /// seen since. Deterministic (dirty set and hashes emitted sorted).
    /// Applying with [`apply_delta`](Self::apply_delta) onto a tree in
    /// the base state reproduces this tree exactly.
    pub fn encode_delta_into(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.program.0);
        codec::put_u32(buf, self.clean_len as u32);
        codec::put_u32(buf, self.nodes.len() as u32);
        codec::put_u32(buf, self.dirty.len() as u32);
        for &i in &self.dirty {
            codec::put_u32(buf, i);
            self.nodes.with(i as usize, |n| encode_node_into(n, buf));
        }
        for i in self.clean_len..self.nodes.len() {
            self.nodes.with(i, |n| encode_node_into(n, buf));
        }
        codec::put_u64(buf, self.paths_merged);
        codec::put_u64(buf, self.distinct_paths);
        let mut fresh = self.fresh_hashes.clone();
        fresh.sort_unstable();
        codec::put_u32(buf, fresh.len() as u32);
        for h in fresh {
            codec::put_u64(buf, h);
        }
    }

    /// Applies a delta written by [`encode_delta_into`]
    /// (Self::encode_delta_into). The tree must be at the delta's base
    /// state (same program, same node count); afterwards it is clean at
    /// the delta's head state.
    ///
    /// # Errors
    ///
    /// Returns a typed [`DeltaError`] on malformed input, a program
    /// mismatch, or a base mismatch; the tree is left unchanged only on
    /// the pre-checks (program/base) — a codec error mid-apply leaves it
    /// partially patched, so callers discard the tree on error.
    pub fn apply_delta(&mut self, r: &mut codec::Reader<'_>) -> Result<(), DeltaError> {
        let program = r.u64("TreeDelta.program")?;
        if program != self.program.0 {
            return Err(DeltaError::ProgramMismatch {
                expected: self.program.0,
                found: program,
            });
        }
        let from_len = r.u32("TreeDelta.from_len")?;
        if from_len as usize != self.nodes.len() {
            return Err(DeltaError::BaseMismatch {
                expected: from_len,
                found: self.nodes.len() as u32,
            });
        }
        let to_len = r.u32("TreeDelta.to_len")?;
        if to_len < from_len {
            return Err(DeltaError::Codec(CodecError::BadLen {
                what: "TreeDelta.to_len",
                len: to_len as usize,
            }));
        }
        let n_dirty = r.seq_len("TreeDelta.dirty", 46)?;
        for _ in 0..n_dirty {
            let idx = r.u32("TreeDelta.dirty.index")?;
            if idx >= from_len {
                return Err(DeltaError::Codec(CodecError::BadLen {
                    what: "TreeDelta.dirty.index",
                    len: idx as usize,
                }));
            }
            let node = decode_node(r)?;
            self.nodes.with_mut(idx as usize, |n| *n = node);
        }
        for _ in from_len..to_len {
            self.nodes.push(decode_node(r)?);
        }
        self.paths_merged = r.u64("TreeDelta.paths_merged")?;
        self.distinct_paths = r.u64("TreeDelta.distinct_paths")?;
        let n_fresh = r.seq_len("TreeDelta.fresh_hashes", 8)?;
        for _ in 0..n_fresh {
            self.path_hashes.insert(r.u64("TreeDelta.fresh_hash")?);
        }
        self.mark_clean();
        Ok(())
    }

    /// Approximate logical size of the tree in bytes (experiment E9) —
    /// counts every node whether resident or paged out.
    pub fn approx_bytes(&self) -> usize {
        let mut sum = self.path_hashes.len() * 8;
        self.nodes.for_each(|_, n| {
            sum += std::mem::size_of::<Node>()
                + n.edges.len() * std::mem::size_of::<EdgeRec>()
                + n.infeasible.len() * std::mem::size_of::<(BranchSiteId, bool)>();
        });
        sum
    }

    /// Approximate bytes resident in memory right now: with paging off
    /// this tracks [`approx_bytes`](Self::approx_bytes); with paging on,
    /// evicted pages count nothing (edge-vector heap of resident nodes is
    /// estimated at the struct size, so this is a floor-accurate bound
    /// indicator, not an allocator measurement).
    pub fn resident_approx_bytes(&self) -> usize {
        let st = self.nodes.stats();
        st.resident_items as usize * std::mem::size_of::<Node>() + self.path_hashes.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::cfg::Loc;
    use softborg_program::interp::CrashKind;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn s(i: u32) -> BranchSiteId {
        BranchSiteId::new(i)
    }

    fn path(bits: &[(u32, bool)]) -> Vec<(BranchSiteId, bool)> {
        bits.iter().map(|(i, b)| (s(*i), *b)).collect()
    }

    fn crash() -> Outcome {
        Outcome::Crash {
            loc: Loc::default(),
            kind: CrashKind::AssertFailed,
        }
    }

    fn child_of(t: &ExecutionTree, id: NodeId, site: u32, taken: bool) -> NodeId {
        t.with_node(id, |n| n.child(s(site), taken)).unwrap()
    }

    static NEXT_DIR: AtomicU64 = AtomicU64::new(0);

    fn scratch(tag: &str) -> PathBuf {
        let n = NEXT_DIR.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("softborg-tree-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn empty_tree_has_only_root() {
        let t = ExecutionTree::new(ProgramId(1));
        assert_eq!(t.node_count(), 1);
        assert_eq!(t.distinct_paths(), 0);
        assert!(t.frontier().is_empty());
    }

    #[test]
    fn first_merge_creates_full_chain() {
        let mut t = ExecutionTree::new(ProgramId(1));
        let st = t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        assert_eq!(st.new_nodes, 2);
        assert_eq!(st.lca_depth, 0);
        assert!(st.new_path);
        assert_eq!(t.node_count(), 3);
    }

    #[test]
    fn lca_splice_shares_prefix() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        let st = t.merge_path(&path(&[(0, true), (1, true)]), &Outcome::Success);
        // Shares the (0,true) edge; only one new node.
        assert_eq!(st.new_nodes, 1);
        assert_eq!(st.lca_depth, 1);
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn duplicate_path_adds_no_nodes_and_is_not_new() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        let st = t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        assert_eq!(st.new_nodes, 0);
        assert!(!st.new_path);
        assert_eq!(t.distinct_paths(), 1);
        assert_eq!(t.paths_merged(), 2);
    }

    #[test]
    fn same_path_different_outcome_counts_as_distinct() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        let st = t.merge_path(&path(&[(0, false)]), &crash());
        assert!(st.new_path);
        assert_eq!(t.distinct_paths(), 2);
        let leaf = child_of(&t, NodeId::ROOT, 0, false);
        assert_eq!(t.with_node(leaf, |n| n.terminal.success), 1);
        assert_eq!(t.with_node(leaf, |n| n.terminal.crash), 1);
    }

    #[test]
    fn merge_order_does_not_change_structure() {
        let paths = [
            path(&[(0, true), (1, true)]),
            path(&[(0, true), (1, false)]),
            path(&[(0, false), (2, true)]),
            path(&[(0, false), (2, false)]),
        ];
        let mut a = ExecutionTree::new(ProgramId(1));
        for p in &paths {
            a.merge_path(p, &Outcome::Success);
        }
        let mut b = ExecutionTree::new(ProgramId(1));
        for p in paths.iter().rev() {
            b.merge_path(p, &Outcome::Success);
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.node_count(), b.node_count());
    }

    #[test]
    fn frontier_lists_missing_arms() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        let f = t.frontier();
        // Missing: (0,false) at root, (1,true) at depth 1.
        assert_eq!(f.len(), 2);
        assert!(f
            .iter()
            .any(|a| a.node == NodeId::ROOT && a.site == s(0) && !a.missing_taken));
        assert!(f.iter().any(|a| a.site == s(1) && a.missing_taken));
    }

    #[test]
    fn infeasible_arm_leaves_frontier_and_enables_closure() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true)]), &Outcome::Success);
        assert!(!t.is_closed(NodeId::ROOT));
        t.mark_infeasible(NodeId::ROOT, s(0), false);
        assert!(t.frontier().is_empty());
        assert!(t.is_closed(NodeId::ROOT));
    }

    #[test]
    fn closure_requires_both_arms() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true)]), &Outcome::Success);
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        assert!(t.is_closed(NodeId::ROOT));
        assert!((t.closed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_terminal_leaf_blocks_closure() {
        let mut t = ExecutionTree::new(ProgramId(1));
        // Merge a path but pretend a longer one later shows the leaf was
        // not terminal-only: a leaf with no terminal tally cannot close.
        t.merge_path(&path(&[(0, true), (1, true)]), &Outcome::Success);
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        // Node after (0,true) has a child and is fine, but its (1,false)
        // arm is unexplored.
        assert!(!t.is_closed(NodeId::ROOT));
    }

    #[test]
    fn multi_site_nodes_never_close() {
        let mut t = ExecutionTree::new(ProgramId(1));
        // Two different interleavings surface different sites first.
        t.merge_path(&path(&[(0, true)]), &Outcome::Success);
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        t.merge_path(&path(&[(5, true)]), &Outcome::Success);
        t.merge_path(&path(&[(5, false)]), &Outcome::Success);
        assert!(!t.is_closed(NodeId::ROOT));
    }

    #[test]
    fn prefix_and_depth_walk_parents() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(
            &path(&[(0, true), (3, false), (7, true)]),
            &Outcome::Success,
        );
        let n1 = child_of(&t, NodeId::ROOT, 0, true);
        let n2 = child_of(&t, n1, 3, false);
        let n3 = child_of(&t, n2, 7, true);
        assert_eq!(t.depth(n3), 3);
        assert_eq!(t.prefix(n3), path(&[(0, true), (3, false), (7, true)]));
    }

    #[test]
    fn subtree_failures_sums_descendants() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true), (1, true)]), &crash());
        t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        t.merge_path(&path(&[(0, false)]), &crash());
        assert_eq!(t.subtree_failures(NodeId::ROOT), 2);
        let right = child_of(&t, NodeId::ROOT, 0, true);
        assert_eq!(t.subtree_failures(right), 1);
    }

    #[test]
    fn absorb_unions_structure_and_sums_tallies() {
        let mut a = ExecutionTree::new(ProgramId(1));
        a.merge_path(&path(&[(0, true)]), &Outcome::Success);
        let mut b = ExecutionTree::new(ProgramId(1));
        b.merge_path(&path(&[(0, true)]), &Outcome::Success);
        b.merge_path(&path(&[(0, false)]), &crash());
        a.absorb(&b);
        assert_eq!(a.node_count(), 3);
        assert_eq!(a.paths_merged(), 3);
        assert_eq!(a.distinct_paths(), 2);
        let left = child_of(&a, NodeId::ROOT, 0, true);
        assert_eq!(a.with_node(left, |n| n.terminal.success), 2);
    }

    #[test]
    fn absorb_is_idempotent_on_structure() {
        let mut a = ExecutionTree::new(ProgramId(1));
        a.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        let snapshot = a.clone();
        a.absorb(&snapshot);
        assert_eq!(a.digest(), snapshot.digest());
        assert_eq!(a.node_count(), snapshot.node_count());
    }

    #[test]
    fn coverage_stats_are_consistent() {
        let mut t = ExecutionTree::new(ProgramId(1));
        t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        t.merge_path(&path(&[(0, false)]), &crash());
        let c = t.coverage();
        assert_eq!(c.nodes, 4);
        assert_eq!(c.distinct_paths, 2);
        assert_eq!(c.sites_seen, 2);
        assert_eq!(c.paths_merged, 2);
        assert_eq!(c.frontier_arms, 1); // (1,true)
        assert!(c.closed_fraction > 0.0 && c.closed_fraction < 1.0);
    }

    #[test]
    fn codec_roundtrip_preserves_everything() {
        let mut t = ExecutionTree::new(ProgramId(42));
        t.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        t.merge_path(&path(&[(0, true), (1, true)]), &crash());
        t.merge_path(&path(&[(0, false)]), &Outcome::Success);
        t.mark_infeasible(NodeId::ROOT, s(9), true);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        let mut r = codec::Reader::new(&buf);
        let back = ExecutionTree::decode(&mut r).expect("decode");
        assert!(r.is_empty());
        assert_eq!(back.program(), t.program());
        assert_eq!(back.digest(), t.digest());
        assert_eq!(back.node_count(), t.node_count());
        assert_eq!(back.paths_merged(), t.paths_merged());
        assert_eq!(back.distinct_paths(), t.distinct_paths());
        assert_eq!(back.path_hashes, t.path_hashes);
        // Tallies and infeasible marks survive too (digest ignores them).
        let leaf = child_of(&back, NodeId::ROOT, 0, false);
        assert_eq!(back.with_node(leaf, |n| n.terminal.success), 1);
        assert!(back.with_node(NodeId::ROOT, |n| n.is_infeasible(s(9), true)));
        // Re-encoding the decoded tree is byte-identical.
        let mut buf2 = Vec::new();
        back.encode_into(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn codec_rejects_truncation_without_panic() {
        let mut t = ExecutionTree::new(ProgramId(7));
        t.merge_path(&path(&[(0, true)]), &Outcome::Success);
        let mut buf = Vec::new();
        t.encode_into(&mut buf);
        for cut in 0..buf.len() {
            let mut r = codec::Reader::new(&buf[..cut]);
            assert!(ExecutionTree::decode(&mut r).is_err());
        }
    }

    #[test]
    fn codec_roundtrip_then_merge_matches_uninterrupted() {
        // A decoded tree must be a *live* tree: merging the same extra
        // path into the original and the roundtripped copy agrees.
        let mut a = ExecutionTree::new(ProgramId(3));
        a.merge_path(&path(&[(0, true), (2, false)]), &Outcome::Success);
        let mut buf = Vec::new();
        a.encode_into(&mut buf);
        let mut b = ExecutionTree::decode(&mut codec::Reader::new(&buf)).unwrap();
        let extra = path(&[(0, true), (2, true)]);
        let sa = a.merge_path(&extra, &crash());
        let sb = b.merge_path(&extra, &crash());
        assert_eq!(sa, sb);
        let mut ba = Vec::new();
        let mut bb = Vec::new();
        a.encode_into(&mut ba);
        b.encode_into(&mut bb);
        assert_eq!(ba, bb);
    }

    #[test]
    fn approx_bytes_grows_with_nodes() {
        let mut t = ExecutionTree::new(ProgramId(1));
        let before = t.approx_bytes();
        for i in 0..100u32 {
            t.merge_path(&path(&[(0, true), (i + 1, i % 2 == 0)]), &Outcome::Success);
        }
        assert!(t.approx_bytes() > before);
    }

    #[test]
    fn delta_reproduces_full_snapshot_exactly() {
        // Base state → full snapshot; more activity → delta; applying the
        // delta to the decoded base equals the live tree byte-for-byte.
        let mut live = ExecutionTree::new(ProgramId(5));
        live.merge_path(&path(&[(0, true), (1, false)]), &Outcome::Success);
        live.merge_path(&path(&[(0, false)]), &crash());
        let mut full = Vec::new();
        live.encode_into(&mut full);
        live.mark_clean();

        let mut resumed = ExecutionTree::decode(&mut codec::Reader::new(&full)).unwrap();

        // Post-snapshot activity touches old nodes AND creates new ones.
        live.merge_path(&path(&[(0, true), (1, true), (2, false)]), &crash());
        live.merge_path(&path(&[(0, false)]), &crash()); // dup path, tally only
        live.mark_infeasible(NodeId::ROOT, s(8), false);

        let mut delta = Vec::new();
        live.encode_delta_into(&mut delta);
        resumed
            .apply_delta(&mut codec::Reader::new(&delta))
            .expect("delta applies");

        let mut a = Vec::new();
        let mut b = Vec::new();
        live.encode_into(&mut a);
        resumed.encode_into(&mut b);
        assert_eq!(a, b, "delta-resumed tree must equal the live tree");
        assert_eq!(live.digest(), resumed.digest());
        assert_eq!(resumed.pending_nodes(), 0, "apply leaves the tree clean");
    }

    #[test]
    fn delta_is_smaller_than_full_for_localized_change() {
        let mut t = ExecutionTree::new(ProgramId(6));
        let long: Vec<(u32, bool)> = (0..400u32).map(|i| (i, true)).collect();
        t.merge_path(&path(&long), &Outcome::Success);
        t.mark_clean();
        // Tally-only bump near the root: dirties two small nodes out of 401.
        t.merge_path(&path(&[(0, true)]), &Outcome::Success);
        let mut full = Vec::new();
        t.encode_into(&mut full);
        let mut delta = Vec::new();
        t.encode_delta_into(&mut delta);
        assert!(
            delta.len() * 10 < full.len(),
            "delta ({}) should be far smaller than full ({})",
            delta.len(),
            full.len()
        );
    }

    #[test]
    fn delta_rejects_wrong_base_and_program() {
        let mut a = ExecutionTree::new(ProgramId(1));
        a.merge_path(&path(&[(0, true)]), &Outcome::Success);
        a.mark_clean();
        a.merge_path(&path(&[(0, false)]), &Outcome::Success);
        let mut delta = Vec::new();
        a.encode_delta_into(&mut delta);

        let mut wrong_program = ExecutionTree::new(ProgramId(2));
        assert!(matches!(
            wrong_program.apply_delta(&mut codec::Reader::new(&delta)),
            Err(DeltaError::ProgramMismatch { .. })
        ));

        let mut wrong_base = ExecutionTree::new(ProgramId(1));
        assert!(matches!(
            wrong_base.apply_delta(&mut codec::Reader::new(&delta)),
            Err(DeltaError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn delta_decode_is_total_on_truncation() {
        let mut a = ExecutionTree::new(ProgramId(1));
        a.merge_path(&path(&[(0, true)]), &Outcome::Success);
        a.mark_clean();
        a.merge_path(&path(&[(0, false), (1, true)]), &crash());
        let mut delta = Vec::new();
        a.encode_delta_into(&mut delta);
        for cut in 0..delta.len() {
            let mut base = ExecutionTree::new(ProgramId(1));
            base.merge_path(&path(&[(0, true)]), &Outcome::Success);
            base.mark_clean();
            assert!(base
                .apply_delta(&mut codec::Reader::new(&delta[..cut]))
                .is_err());
        }
    }

    #[test]
    fn paged_tree_matches_memory_tree_exactly() {
        let dir = scratch("equiv");
        let mut mem = ExecutionTree::new(ProgramId(9));
        let mut paged =
            ExecutionTree::new_paged(ProgramId(9), PagedConfig::new(&dir, 4, 2)).unwrap();
        assert!(paged.is_paged() && !mem.is_paged());

        let outcomes = [Outcome::Success, crash()];
        for i in 0..60u32 {
            let p = path(&[(i % 7, i % 2 == 0), (i % 5 + 10, i % 3 == 0)]);
            let o = &outcomes[(i % 2) as usize];
            assert_eq!(mem.merge_path(&p, o), paged.merge_path(&p, o));
        }
        mem.mark_infeasible(NodeId::ROOT, s(99), true);
        paged.mark_infeasible(NodeId::ROOT, s(99), true);

        assert_eq!(mem.digest(), paged.digest());
        assert_eq!(mem.coverage(), paged.coverage());
        assert_eq!(mem.frontier(), paged.frontier());
        let mut a = Vec::new();
        let mut b = Vec::new();
        mem.encode_into(&mut a);
        paged.encode_into(&mut b);
        assert_eq!(a, b, "paging must not change the persisted bytes");
        let mut da = Vec::new();
        let mut db = Vec::new();
        mem.encode_delta_into(&mut da);
        paged.encode_delta_into(&mut db);
        assert_eq!(da, db, "paging must not change delta bytes");

        let st = paged.page_stats();
        assert!(st.total_pages > 2, "tree should outgrow the budget");
        assert!(
            st.resident_pages <= 2 + 1,
            "resident pages bounded by budget (+1 in-flight)"
        );
        assert!(mem.approx_bytes() > paged.resident_approx_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_frontier_node_survives_eviction_pressure() {
        let dir = scratch("pin");
        let mut t = ExecutionTree::new_paged(ProgramId(4), PagedConfig::new(&dir, 2, 1)).unwrap();
        for i in 0..40u32 {
            t.merge_path(&path(&[(i, true)]), &Outcome::Success);
        }
        t.pin_node(NodeId::ROOT);
        let faults_before = t.page_stats().faults;
        // Heavy traffic over far-away nodes must not evict the pinned page.
        for i in 20..40u32 {
            let c = t.with_node(NodeId::ROOT, |n| n.child(s(i), true)).unwrap();
            let _ = t.with_node(c, |n| n.visits);
        }
        let faults_after_root = {
            let before = t.page_stats().faults;
            let _ = t.with_node(NodeId::ROOT, |n| n.visits);
            t.page_stats().faults - before
        };
        assert_eq!(faults_after_root, 0, "pinned page never faults");
        assert!(t.page_stats().faults >= faults_before);
        t.unpin_node(NodeId::ROOT);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
