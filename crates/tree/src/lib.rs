//! # softborg-tree — the collective execution tree
//!
//! Implements the paper's §3.2: dynamic construction of a program's
//! execution tree by merging naturally-occurring execution paths
//! (lowest-common-ancestor splicing, Figure 3), coverage and completeness
//! accounting, frontier enumeration for guidance, infeasibility marks from
//! symbolic analysis, and replica merging for the distributed hive.

#![warn(missing_docs)]

pub mod tree;

pub use tree::{
    CoverageStats, DeltaError, ExecutionTree, FrontierArm, MergeStats, Node, NodeId, OutcomeTally,
};

#[cfg(test)]
mod integration {
    use super::*;
    use softborg_program::interp::{Executor, Observer, Outcome};
    use softborg_program::overlay::Overlay;
    use softborg_program::scenarios;
    use softborg_program::sched::RoundRobin;
    use softborg_program::syscall::DefaultEnv;
    use softborg_program::{BranchSiteId, ThreadId};

    #[derive(Default)]
    struct PathObs(Vec<(BranchSiteId, bool)>);
    impl Observer for PathObs {
        fn on_branch(&mut self, _t: ThreadId, s: BranchSiteId, taken: bool, _d: bool) {
            self.0.push((s, taken));
        }
    }

    /// Exhaustive triangle exploration closes the whole tree — the
    /// precondition for a proof in the hive.
    #[test]
    fn exhaustive_triangle_tree_closes() {
        let s = scenarios::triangle();
        let exec = Executor::new(&s.program);
        let mut tree = ExecutionTree::new(s.program.id());
        for a in 1..=6 {
            for b in 1..=6 {
                for c in 1..=6 {
                    let mut obs = PathObs::default();
                    let r = exec
                        .run(
                            &[a, b, c],
                            &mut DefaultEnv::seeded(0),
                            &mut RoundRobin::new(),
                            &Overlay::empty(),
                            &mut obs,
                        )
                        .unwrap();
                    assert_eq!(r.outcome, Outcome::Success);
                    tree.merge_path(&obs.0, &r.outcome);
                }
            }
        }
        let cov = tree.coverage();
        assert!(cov.distinct_paths >= 4, "triangle has ≥4 outcome classes");
        assert_eq!(
            cov.frontier_arms, 0,
            "exhaustive exploration leaves no frontier"
        );
        assert!(tree.is_closed(NodeId::ROOT));
        assert_eq!(tree.subtree_failures(NodeId::ROOT), 0);
    }
}
