//! The sharded ingest pipeline: many producers → one shared frame queue
//! → one shared decode+reconstruct worker pool → per-shard merge queues
//! → per-shard sequence-ordered mergers.
//!
//! ```text
//! producers ──submit_for(prog, frame)──▶ [frame queue] ──▶ worker 0 ─┬─▶ [merge q 0] ─▶ merger 0 ─▶ shard 0 hives
//!   (per-program seq claimed here)           │             worker 1 ─┼─▶ [merge q 1] ─▶ merger 1 ─▶ shard 1 hives
//!                                            └──▶ …        worker N ─┘        …            …
//! ```
//!
//! Routing is **content-authoritative**: every trace payload begins with
//! its program id, so workers classify a frame from its bytes
//! ([`wire::frame_program_id`]) without decoding — the claim a producer
//! made at submit time is just a *slot reservation* in that program's
//! sequence. The claim and the content agree on every healthy frame; the
//! disagreement cases are exactly the router-hardening matrix:
//!
//! * **corrupt / mixed-program frame** — cannot be classified: the
//!   claimed slot is consumed (ordering never stalls), the frame is
//!   counted, never panicked on.
//! * **unknown content program** — classifiable but unroutable: typed
//!   [`ShardError::UnknownProgram`] sample + counter, claimed slot
//!   consumed.
//! * **rerouted** — healthy but claimed against the wrong program (a
//!   misconfigured producer): the claimed slot is consumed, the traces
//!   are delivered to the content program's shard *after* in-order
//!   traffic, in deterministic (claimed program, seq) order.
//!
//! Ordering: producers claim per-program sequence numbers at submit;
//! each shard merger keeps one reorder lane (heap + next counter) per
//! program and releases program *P*'s slot only when it is *P*'s next —
//! so per-program ingest order is byte-identical to serial ingest while
//! frames of different programs (and different shards) flow fully
//! concurrently through the shared pool.

use crate::map::{ShardError, ShardMap};
use crate::stats::{RunCore, ShardCore};
use softborg_ingest::Clock;
use softborg_ingest::{
    BackpressurePolicy, BoundedQueue, IngestConfig, MemoCache, MemoMode, ProcessedTrace,
    PushOutcome, ReconstructContext, SharedMemoCache, WorkerMemo,
};
use softborg_program::ProgramId;
use softborg_trace::wire;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A frame plus the (program, seq) slot its producer claimed.
struct ShardFrameItem {
    claimed: ProgramId,
    seq: u64,
    bytes: Vec<u8>,
}

/// What a worker made of one frame.
enum ShardWorkerOut {
    /// Healthy, content agrees with the claim: traces for the claimed
    /// program (possibly empty for an empty batch).
    Frame(Vec<Arc<ProcessedTrace>>),
    /// Unclassifiable (wire corruption or mixed-program payloads).
    Corrupt,
    /// Classifiable but no shard owns the content program.
    Unknown,
    /// Healthy but content ≠ claim; traces travel out-of-band in a
    /// [`ReroutedDelivery`], this slot just advances the claimed lane.
    Rerouted,
}

/// One merge-queue entry: a processed frame bound for the claimed
/// program's reorder lane.
struct ShardMergeItem {
    program: ProgramId,
    seq: u64,
    out: ShardWorkerOut,
}

/// A healthy frame whose content program differed from its claimed
/// slot. Collected during the run; applied to the content shard after
/// all in-order traffic, sorted by the (unique) claimed slot so
/// delivery order is deterministic.
pub(crate) struct ReroutedDelivery {
    pub claimed: ProgramId,
    pub seq: u64,
    pub to: ProgramId,
    pub entries: Vec<Arc<ProcessedTrace>>,
}

/// State shared by every stage of one sharded run.
pub(crate) struct ShardShared {
    frames: BoundedQueue<ShardFrameItem>,
    merge: Vec<BoundedQueue<ShardMergeItem>>,
    /// Claimed slots that will never reach a merger (displaced by
    /// DropOldest or submitted after shutdown), as (program id, seq).
    dropped: Mutex<BTreeSet<(u64, u64)>>,
    rerouted: Mutex<Vec<ReroutedDelivery>>,
    /// Per-program claimed-sequence counters.
    counters: BTreeMap<ProgramId, AtomicU64>,
    pub(crate) core: RunCore,
    pub(crate) shard_cores: Vec<ShardCore>,
    senders: AtomicUsize,
    clock: Arc<dyn Clock>,
}

impl ShardShared {
    pub(crate) fn merge_high_water(&self, shard: usize) -> usize {
        self.merge[shard].high_water()
    }

    pub(crate) fn frame_high_water(&self) -> usize {
        self.frames.high_water()
    }
}

/// A clonable producer handle. The frame queue closes when the last
/// clone is dropped, so producer panics still shut the pool down
/// cleanly.
pub struct ShardFrameSender {
    shared: Arc<ShardShared>,
}

impl Clone for ShardFrameSender {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        ShardFrameSender {
            shared: self.shared.clone(),
        }
    }
}

impl Drop for ShardFrameSender {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.frames.close();
        }
    }
}

impl ShardFrameSender {
    /// Submits one encoded batch frame, claiming the next sequence slot
    /// of `program`. Returns the claimed sequence number.
    ///
    /// The claim is a slot reservation, not the routing decision:
    /// workers route by the program id embedded in the frame bytes, and
    /// a mismatch is counted and rerouted rather than trusted.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when `program` is not in the shard
    /// map — there is no sequence lane to claim a slot in. (This is a
    /// producer-side configuration error, distinct from the
    /// `frames_unknown_program` counter, which tracks unroutable frame
    /// *content*.)
    pub fn submit_for(&self, program: ProgramId, frame: Vec<u8>) -> Result<u64, ShardError> {
        let counter = self
            .shared
            .counters
            .get(&program)
            .ok_or(ShardError::UnknownProgram { program })?;
        let seq = counter.fetch_add(1, Ordering::Relaxed);
        self.submit_for_at(program, seq, frame)?;
        Ok(seq)
    }

    /// Submits one frame into an explicitly claimed `(program, seq)`
    /// slot. Lets several producer threads pre-partition a program's
    /// sequence space (pod *i* owns slots `i*k..(i+1)*k`) so merge order
    /// is deterministic regardless of thread interleaving. Over one run
    /// the slots claimed for a program must be exactly `0..n` with no
    /// gaps or duplicates; do not mix with
    /// [`submit_for`](Self::submit_for) on the same program.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when `program` is not in the shard
    /// map.
    pub fn submit_for_at(
        &self,
        program: ProgramId,
        seq: u64,
        frame: Vec<u8>,
    ) -> Result<(), ShardError> {
        let sh = &self.shared;
        if !sh.counters.contains_key(&program) {
            return Err(ShardError::UnknownProgram { program });
        }
        sh.core.add(&sh.core.frames_submitted, 1);
        match sh.frames.push(ShardFrameItem {
            claimed: program,
            seq,
            bytes: frame,
        }) {
            PushOutcome::Accepted => {}
            PushOutcome::Displaced(old) | PushOutcome::Closed(old) => {
                sh.dropped
                    .lock()
                    .expect("drop set")
                    .insert((old.claimed.0, old.seq));
                sh.core.add(&sh.core.frames_dropped, 1);
            }
        }
        Ok(())
    }
}

/// Last worker out (including by panic) closes every merge queue so the
/// mergers can finish their final drains.
struct WorkerGuard<'a> {
    active: &'a AtomicUsize,
    merge: &'a [BoundedQueue<ShardMergeItem>],
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            for q in self.merge {
                q.close();
            }
        }
    }
}

/// Closes everything when a merger exits. On the normal path every
/// queue is already closed (no-op); on a sink panic this unblocks
/// producers and workers so the scope can unwind instead of deadlock.
struct MergerGuard<'a> {
    shared: &'a ShardShared,
}

impl Drop for MergerGuard<'_> {
    fn drop(&mut self) {
        self.shared.frames.close();
        for q in &self.shared.merge {
            q.close();
        }
    }
}

/// Classifies one frame and decodes/reconstructs its payloads through
/// the memo. Returns what the claimed lane should see; rerouted traces
/// are stashed in `shared.rerouted` as a side effect.
fn process_frame(
    shared: &ShardShared,
    map: &ShardMap,
    ctxs: &BTreeMap<ProgramId, ReconstructContext<'_>>,
    memo: &mut WorkerMemo<'_, Arc<ProcessedTrace>>,
    item: &ShardFrameItem,
) -> ShardWorkerOut {
    let core = &shared.core;
    let content = match wire::frame_program_id(&item.bytes) {
        Err(_) => {
            core.add(&core.frames_corrupt, 1);
            return ShardWorkerOut::Corrupt;
        }
        // An empty batch carries no traces for anyone; the claimed slot
        // simply advances.
        Ok(None) => return ShardWorkerOut::Frame(Vec::new()),
        Ok(Some(id)) => id,
    };
    if let Err(e) = map.shard_of(content) {
        core.add(&core.frames_unknown_program, 1);
        core.sample_error(e);
        return ShardWorkerOut::Unknown;
    }
    let ctx = &ctxs[&content];
    let payloads = wire::batch_payloads(&item.bytes).expect("validated by frame_program_id");
    let mut entries = Vec::with_capacity(payloads.len());
    for p in payloads {
        if let Some(hit) = memo.get(p) {
            core.add(&core.cache_hits, 1);
            entries.push(hit);
            continue;
        }
        core.add(&core.cache_misses, 1);
        match wire::decode(p) {
            Err(_) => {
                core.add(&core.frames_corrupt, 1);
                return ShardWorkerOut::Corrupt;
            }
            Ok(trace) => {
                let decisions =
                    ctx.overlays
                        .get(trace.overlay_version as usize)
                        .and_then(|overlay| {
                            softborg_trace::reconstruct(ctx.program, ctx.deps, overlay, &trace)
                                .ok()
                                .map(|path| path.decisions)
                        });
                let entry = Arc::new(ProcessedTrace { trace, decisions });
                memo.insert(p.to_vec(), entry.clone());
                entries.push(entry);
            }
        }
    }
    if content == item.claimed {
        ShardWorkerOut::Frame(entries)
    } else {
        core.add(&core.frames_rerouted, 1);
        shared
            .rerouted
            .lock()
            .expect("reroute set")
            .push(ReroutedDelivery {
                claimed: item.claimed,
                seq: item.seq,
                to: content,
                entries,
            });
        ShardWorkerOut::Rerouted
    }
}

fn worker_loop(
    shared: &ShardShared,
    map: &ShardMap,
    ctxs: &BTreeMap<ProgramId, ReconstructContext<'_>>,
    memo_capacity: usize,
    shared_memo: Option<&SharedMemoCache<Arc<ProcessedTrace>>>,
    active: &AtomicUsize,
) {
    let _guard = WorkerGuard {
        active,
        merge: &shared.merge,
    };
    let mut memo: WorkerMemo<'_, Arc<ProcessedTrace>> = match shared_memo {
        Some(pool) => WorkerMemo::Shared(pool),
        None => WorkerMemo::Local(MemoCache::new(memo_capacity)),
    };
    while let Some(item) = shared.frames.pop() {
        let t0 = shared.clock.now_ns();
        let out = process_frame(shared, map, ctxs, &mut memo, &item);
        shared.core.add(
            &shared.core.worker_busy_ns,
            shared.clock.now_ns().saturating_sub(t0),
        );
        let shard = map
            .shard_of(item.claimed)
            .expect("claimed program validated at submit");
        // If the merger died (sink panic) the queue is closed; the item
        // is discarded while the scope unwinds.
        let _ = shared.merge[shard].push(ShardMergeItem {
            program: item.claimed,
            seq: item.seq,
            out,
        });
    }
    shared
        .core
        .add(&shared.core.cache_evictions, memo.local_evictions());
}

/// Heap entry ordered by ascending claimed sequence number.
struct BySeq(ShardMergeItem);

impl PartialEq for BySeq {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for BySeq {}
impl PartialOrd for BySeq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BySeq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.seq.cmp(&other.0.seq)
    }
}

/// One program's reorder lane inside a shard merger.
#[derive(Default)]
struct Lane {
    next: u64,
    pending: BinaryHeap<Reverse<BySeq>>,
}

fn shard_merger_loop<S: FnMut(ProgramId, &ProcessedTrace)>(
    shared: &ShardShared,
    shard: usize,
    sink: &mut S,
) {
    let _guard = MergerGuard { shared };
    let shard_core = &shared.shard_cores[shard];
    let mut lanes: BTreeMap<ProgramId, Lane> = BTreeMap::new();
    let skip_dropped = |program: ProgramId, next: &mut u64| {
        let mut dropped = shared.dropped.lock().expect("drop set");
        while dropped.remove(&(program.0, *next)) {
            *next += 1;
        }
    };
    let emit = |item: ShardMergeItem, sink: &mut S| {
        match &item.out {
            ShardWorkerOut::Frame(entries) => {
                for entry in entries {
                    sink(item.program, entry);
                }
                let n = entries.len() as u64;
                shared.core.add(&shared.core.traces_merged, n);
                shared.core.add(&shard_core.traces_merged, n);
            }
            // Counted at the worker (globally) and here (per shard for
            // corrupt); the slot is consumed so ordering stays intact.
            ShardWorkerOut::Corrupt => {
                shared.core.add(&shard_core.frames_corrupt, 1);
            }
            ShardWorkerOut::Unknown | ShardWorkerOut::Rerouted => {}
        }
        shared.core.add(&shared.core.frames_merged, 1);
        shared.core.add(&shard_core.frames_merged, 1);
    };
    // `pop` returns `None` once the workers are done: every surviving
    // slot is then in some lane, every gap in the drop set.
    while let Some(item) = shared.merge[shard].pop() {
        let program = item.program;
        let lane = lanes.entry(program).or_default();
        lane.pending.push(Reverse(BySeq(item)));
        loop {
            skip_dropped(program, &mut lane.next);
            match lane.pending.peek() {
                Some(Reverse(BySeq(it))) if it.seq == lane.next => {
                    let Reverse(BySeq(it)) = lane.pending.pop().expect("peeked");
                    emit(it, sink);
                    lane.next += 1;
                }
                _ => break,
            }
        }
    }
    // Final drain, lane by lane in program-id order.
    for (program, lane) in &mut lanes {
        while let Some(Reverse(BySeq(it))) = lane.pending.pop() {
            skip_dropped(*program, &mut lane.next);
            debug_assert_eq!(it.seq, lane.next, "merger saw a non-dropped gap");
            lane.next = it.seq + 1;
            emit(it, sink);
        }
    }
}

/// Runs the sharded pipeline to completion.
///
/// `producer` runs on its own thread and claims (program, seq) slots
/// through the [`ShardFrameSender`] it is given (clone it to fan
/// production out). `sinks[i]` becomes shard *i*'s merger sink, running
/// on its own thread with exclusive access to whatever mutable state it
/// captured (the sharded hive passes closures over shard *i*'s hives);
/// it observes each program's traces in exact claimed-sequence order.
///
/// Returns the producer's result plus the shared state (for stats
/// snapshotting) and the rerouted deliveries the caller must apply —
/// sorted deterministically — once it regains access to the hives.
///
/// # Panics
///
/// Propagates producer, worker, and sink panics (none can deadlock the
/// run). Panics if `sinks.len() != map.n_shards()`.
pub(crate) fn run_sharded<R, P, S>(
    config: &IngestConfig,
    map: &ShardMap,
    ctxs: &BTreeMap<ProgramId, ReconstructContext<'_>>,
    producer: P,
    sinks: Vec<S>,
) -> (R, Arc<ShardShared>, Vec<ReroutedDelivery>)
where
    P: FnOnce(ShardFrameSender) -> R + Send,
    R: Send,
    S: FnMut(ProgramId, &ProcessedTrace) + Send,
{
    assert_eq!(sinks.len(), map.n_shards(), "one sink per shard");
    let shared = Arc::new(ShardShared {
        frames: BoundedQueue::new(config.queue_capacity, config.policy),
        merge: (0..map.n_shards())
            .map(|_| BoundedQueue::new(config.merge_capacity, BackpressurePolicy::Block))
            .collect(),
        dropped: Mutex::new(BTreeSet::new()),
        rerouted: Mutex::new(Vec::new()),
        counters: map
            .assignments()
            .keys()
            .map(|&p| (p, AtomicU64::new(0)))
            .collect(),
        core: RunCore::default(),
        shard_cores: (0..map.n_shards()).map(|_| ShardCore::default()).collect(),
        senders: AtomicUsize::new(1),
        clock: config.clock.clone(),
    });
    let sender = ShardFrameSender {
        shared: shared.clone(),
    };
    let n_workers = config.workers.max(1);
    let active = AtomicUsize::new(n_workers);
    let memo_capacity = config.memo_capacity;
    let pool_memo: Option<SharedMemoCache<Arc<ProcessedTrace>>> = match config.memo_mode {
        MemoMode::PerWorker => None,
        MemoMode::Shared { stripes } => Some(SharedMemoCache::new(memo_capacity, stripes)),
    };
    let result = std::thread::scope(|s| {
        let producer_handle = s.spawn(move || producer(sender));
        let worker_handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let shared = &shared;
                let active = &active;
                let pool_memo = pool_memo.as_ref();
                s.spawn(move || worker_loop(shared, map, ctxs, memo_capacity, pool_memo, active))
            })
            .collect();
        let merger_handles: Vec<_> = sinks
            .into_iter()
            .enumerate()
            .map(|(i, mut sink)| {
                let shared = &shared;
                s.spawn(move || shard_merger_loop(shared, i, &mut sink))
            })
            .collect();
        for h in merger_handles.into_iter().chain(worker_handles) {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
        match producer_handle.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    });
    if let Some(pool) = &pool_memo {
        shared
            .core
            .add(&shared.core.cache_evictions, pool.evictions());
    }
    let rerouted = {
        let mut r = shared.rerouted.lock().expect("reroute set");
        let mut r = std::mem::take(&mut *r);
        // The claimed slot is unique per frame: a total, deterministic
        // delivery order regardless of worker interleaving.
        r.sort_by_key(|d| (d.claimed.0, d.seq));
        r
    };
    (result, shared, rerouted)
}
