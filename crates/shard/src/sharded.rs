//! The sharded multi-program hive: N independent [`Hive`] shards behind
//! one router and one shared decode+reconstruct worker pool.
//!
//! A single hive serves a single program; a fleet running several
//! programs previously needed one fully separate ingest pipeline per
//! program, each with its own worker pool and its own memo cache. The
//! [`ShardedHive`] instead places every program on one of `n_shards`
//! shards ([`ShardMap`], explicit deterministic hash placement), runs
//! **one** worker pool over all traffic (so idle capacity from a quiet
//! program is immediately usable by a busy one, and a pool-shared memo
//! recycles reconstructions across the whole fleet), and gives each
//! shard its own sequence-ordered merger — preserving the per-program
//! byte-identity-with-serial-ingest invariant the single-program
//! pipeline established, while cross-program work runs concurrently.

use crate::map::{ShardError, ShardMap};
use crate::pipeline::{run_sharded, ShardFrameSender};
use crate::stats::{ShardRunStats, ShardStats};
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::{IngestConfig, ProcessedTrace, ReconstructContext};
use softborg_obs::ObsHandles;
use softborg_program::codec::{self, CodecError};
use softborg_program::overlay::Overlay;
use softborg_program::taint::InputDependence;
use softborg_program::{Program, ProgramId};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

/// Mirrors a finished run's counters into the attached telemetry sinks:
/// pool-wide and per-shard (`shard.<i>.…`) registry counters, plus one
/// `run_done` flight-recorder event. Post-run and additive, so the hot
/// path never touches the registry; event fields are restricted to
/// content-determined counts (frame routing is content-authoritative,
/// so reroutes/unknowns/corruption are interleaving-independent) to
/// keep the events hash replay-stable.
fn publish_run_telemetry(obs: &ObsHandles, stats: &ShardRunStats) {
    if let Some(reg) = &obs.registry {
        reg.counter("shard.frames_submitted")
            .add(stats.frames_submitted);
        reg.counter("shard.frames_dropped")
            .add(stats.frames_dropped);
        reg.counter("shard.frames_corrupt")
            .add(stats.frames_corrupt);
        reg.counter("shard.frames_rerouted")
            .add(stats.frames_rerouted);
        reg.counter("shard.frames_unknown_program")
            .add(stats.frames_unknown_program);
        reg.counter("shard.frames_merged").add(stats.frames_merged);
        reg.counter("shard.traces_merged").add(stats.traces_merged);
        reg.counter("shard.cache_hits").add(stats.cache_hits);
        reg.counter("shard.cache_misses").add(stats.cache_misses);
        reg.gauge("shard.queue_high_water")
            .set_max(stats.queue_high_water as u64);
        for s in &stats.per_shard {
            let path = |name: &str| format!("shard.{}.{name}", s.shard);
            reg.counter(&path("frames_merged")).add(s.frames_merged);
            reg.counter(&path("traces_merged")).add(s.traces_merged);
            reg.counter(&path("frames_corrupt")).add(s.frames_corrupt);
            reg.counter(&path("reroutes")).add(s.frames_rerouted_in);
        }
    }
    obs.recorder.info(
        "shard",
        "run_done",
        &[
            ("frames_merged", stats.frames_merged),
            ("traces_merged", stats.traces_merged),
            ("frames_corrupt", stats.frames_corrupt),
            ("frames_rerouted", stats.frames_rerouted),
            ("frames_unknown_program", stats.frames_unknown_program),
        ],
        format_args!(
            "sharded run merged {} traces over {} frames ({} rerouted, {} unknown) in {}ns",
            stats.traces_merged,
            stats.frames_merged,
            stats.frames_rerouted,
            stats.frames_unknown_program,
            stats.wall_ns
        ),
    );
}

/// Errors from per-shard state snapshot/restore.
#[derive(Debug)]
pub enum ShardStateError {
    /// A sharding/routing failure (bad shard index, unknown program).
    Shard(ShardError),
    /// Malformed or mismatched state bytes.
    Codec(CodecError),
}

impl std::fmt::Display for ShardStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStateError::Shard(e) => write!(f, "shard state: {e}"),
            ShardStateError::Codec(e) => write!(f, "shard state: {e}"),
        }
    }
}

impl std::error::Error for ShardStateError {}

impl From<ShardError> for ShardStateError {
    fn from(e: ShardError) -> Self {
        ShardStateError::Shard(e)
    }
}

impl From<CodecError> for ShardStateError {
    fn from(e: CodecError) -> Self {
        ShardStateError::Codec(e)
    }
}

/// N hive shards, a router, and a shared ingest worker pool.
pub struct ShardedHive<'p> {
    map: ShardMap,
    programs: BTreeMap<ProgramId, &'p Program>,
    /// Per-program input-dependence, owned here (not borrowed from the
    /// hives) so worker contexts can be built while the per-shard
    /// mergers hold the hives mutably.
    deps: BTreeMap<ProgramId, InputDependence>,
    /// `shards[i]` holds the hives of every program placed on shard `i`.
    shards: Vec<BTreeMap<ProgramId, Hive<'p>>>,
}

impl<'p> ShardedHive<'p> {
    /// Builds a sharded hive over `programs` with `n_shards` shards,
    /// each program getting a fresh [`Hive`] with `config`.
    ///
    /// # Errors
    ///
    /// [`ShardError::NoShards`] / [`ShardError::DuplicateProgram`] from
    /// placement.
    pub fn new(
        programs: &[&'p Program],
        n_shards: usize,
        config: &HiveConfig,
    ) -> Result<Self, ShardError> {
        let ids: Vec<ProgramId> = programs.iter().map(|p| p.id()).collect();
        let map = ShardMap::new(&ids, n_shards)?;
        let mut shards: Vec<BTreeMap<ProgramId, Hive<'p>>> =
            (0..n_shards).map(|_| BTreeMap::new()).collect();
        let mut by_id = BTreeMap::new();
        let mut deps = BTreeMap::new();
        for &program in programs {
            let id = program.id();
            let hive = Hive::new(program, config.clone());
            deps.insert(id, hive.deps().clone());
            let shard = map.shard_of(id).expect("just placed");
            shards[shard].insert(id, hive);
            by_id.insert(id, program);
        }
        Ok(ShardedHive {
            map,
            programs: by_id,
            deps,
            shards,
        })
    }

    /// The placement map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.map.n_shards()
    }

    /// The hive serving `program`.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when no shard owns it.
    pub fn hive(&self, program: ProgramId) -> Result<&Hive<'p>, ShardError> {
        let shard = self.map.shard_of(program)?;
        self.shards[shard]
            .get(&program)
            .ok_or(ShardError::UnknownProgram { program })
    }

    /// Mutable access to the hive serving `program`.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when no shard owns it.
    pub fn hive_mut(&mut self, program: ProgramId) -> Result<&mut Hive<'p>, ShardError> {
        let shard = self.map.shard_of(program)?;
        self.shards[shard]
            .get_mut(&program)
            .ok_or(ShardError::UnknownProgram { program })
    }

    /// Iterates `(program, hive)` over every shard, in program-id order
    /// within each shard, shard 0 first.
    pub fn hives(&self) -> impl Iterator<Item = (ProgramId, &Hive<'p>)> {
        self.shards
            .iter()
            .flat_map(|m| m.iter().map(|(&id, h)| (id, h)))
    }

    /// Mutable [`hives`](Self::hives).
    pub fn hives_mut(&mut self) -> impl Iterator<Item = (ProgramId, &mut Hive<'p>)> {
        self.shards
            .iter_mut()
            .flat_map(|m| m.iter_mut().map(|(&id, h)| (id, h)))
    }

    /// Runs the sharded pipeline: `producer` claims (program, seq)
    /// slots through its [`ShardFrameSender`]; the shared worker pool
    /// classifies frames by content, decodes and reconstructs them
    /// through the configured memo scope; per-shard mergers apply each
    /// program's traces in exact claimed-sequence order. Returns the
    /// producer's result and the run's stats.
    pub fn ingest_frames<R, P>(&mut self, config: &IngestConfig, producer: P) -> (R, ShardRunStats)
    where
        P: FnOnce(ShardFrameSender) -> R + Send,
        R: Send,
    {
        let started = config.clock.now_ns();
        let ShardedHive {
            map,
            programs,
            deps,
            shards,
        } = self;
        // Freeze per-program overlay histories (hives only promote
        // between rounds, never mid-ingest) so reconstruct contexts can
        // outlive the mutable borrow the mergers take on the hives.
        let overlays: BTreeMap<ProgramId, Vec<Overlay>> = shards
            .iter()
            .flat_map(|m| m.iter())
            .map(|(&id, h)| (id, h.overlays().to_vec()))
            .collect();
        let ctxs: BTreeMap<ProgramId, ReconstructContext<'_>> = programs
            .iter()
            .map(|(&id, &program)| {
                (
                    id,
                    ReconstructContext {
                        program,
                        deps: &deps[&id],
                        overlays: &overlays[&id],
                    },
                )
            })
            .collect();
        let sinks: Vec<_> = shards
            .iter_mut()
            .map(|hives| {
                move |program: ProgramId, pt: &ProcessedTrace| {
                    hives
                        .get_mut(&program)
                        .expect("merger only sees programs placed on its shard")
                        .apply_processed(pt);
                }
            })
            .collect();
        let (result, shared, rerouted) = run_sharded(config, map, &ctxs, producer, sinks);
        // Rerouted traffic: the claimed slots are consumed; deliver the
        // traces to their content program now, in the deterministic
        // (claimed program, seq) order run_sharded sorted them into.
        for d in &rerouted {
            let shard = map.shard_of(d.to).expect("content validated by worker");
            let hive = shards[shard]
                .get_mut(&d.to)
                .expect("content program placed");
            for entry in &d.entries {
                hive.apply_processed(entry);
            }
            let core = &shared.core;
            core.add(&core.traces_merged, d.entries.len() as u64);
            let sc = &shared.shard_cores[shard];
            core.add(&sc.traces_merged, d.entries.len() as u64);
            core.add(&sc.frames_rerouted_in, 1);
        }
        let ld = |c: &std::sync::atomic::AtomicU64| c.load(Ordering::Relaxed);
        let core = &shared.core;
        let per_shard = shared
            .shard_cores
            .iter()
            .enumerate()
            .map(|(i, sc)| ShardStats {
                shard: i,
                programs: map.programs_on(i).len(),
                frames_merged: ld(&sc.frames_merged),
                traces_merged: ld(&sc.traces_merged),
                frames_corrupt: ld(&sc.frames_corrupt),
                frames_rerouted_in: ld(&sc.frames_rerouted_in),
                merge_queue_high_water: shared.merge_high_water(i),
            })
            .collect();
        let stats = ShardRunStats {
            frames_submitted: ld(&core.frames_submitted),
            frames_dropped: ld(&core.frames_dropped),
            frames_corrupt: ld(&core.frames_corrupt),
            frames_rerouted: ld(&core.frames_rerouted),
            frames_unknown_program: ld(&core.frames_unknown_program),
            frames_merged: ld(&core.frames_merged),
            traces_merged: ld(&core.traces_merged),
            cache_hits: ld(&core.cache_hits),
            cache_misses: ld(&core.cache_misses),
            cache_evictions: ld(&core.cache_evictions),
            worker_busy_ns: ld(&core.worker_busy_ns),
            queue_high_water: shared.frame_high_water(),
            // Clamp like IngestStats: a run that submitted frames inside
            // one clock tick must not report zero elapsed time.
            wall_ns: softborg_obs::rates::clamp_wall_ns(
                config.clock.now_ns().saturating_sub(started),
                ld(&core.frames_submitted) > 0,
            ),
            workers: config.workers.max(1),
            per_shard,
            error_samples: core.errors.lock().expect("error samples").clone(),
        };
        publish_run_telemetry(&config.obs, &stats);
        (result, stats)
    }

    /// Convenience wrapper: submits pre-claimed `(program, frame)`
    /// pairs in order and runs the pipeline to completion.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when a *claimed* program is not in
    /// the shard map (frames whose *content* is unknown are counted in
    /// [`ShardRunStats::frames_unknown_program`] instead — a claim needs
    /// a sequence lane, content does not).
    pub fn ingest_batch(
        &mut self,
        frames: Vec<(ProgramId, Vec<u8>)>,
        config: &IngestConfig,
    ) -> Result<ShardRunStats, ShardError> {
        let (res, stats) = self.ingest_frames(config, move |tx| {
            for (program, frame) in frames {
                tx.submit_for(program, frame)?;
            }
            Ok::<(), ShardError>(())
        });
        res.map(|()| stats)
    }

    /// Serializes shard `shard`'s full state — every hive on it, keyed
    /// by program id — for snapshotting. Deterministic: programs are
    /// encoded in id order.
    ///
    /// # Errors
    ///
    /// [`ShardError::BadShard`] for an out-of-range index.
    pub fn encode_shard_state(&self, shard: usize) -> Result<Vec<u8>, ShardError> {
        let hives = self
            .shards
            .get(shard)
            .ok_or(ShardError::BadShard { shard })?;
        let mut buf = Vec::new();
        codec::put_u8(&mut buf, 1); // shard-state format version
        codec::put_u64(&mut buf, hives.len() as u64);
        for (id, hive) in hives {
            codec::put_u64(&mut buf, id.0);
            codec::put_bytes(&mut buf, &hive.encode_state());
        }
        Ok(buf)
    }

    /// Serializes shard `shard`'s state *delta* — every hive's changes
    /// since its last [`mark_shard_clean`](Self::mark_shard_clean) (or
    /// decode), keyed by program id in id order. Applying it with
    /// [`apply_shard_state_delta`](Self::apply_shard_state_delta) onto
    /// the base state reproduces [`encode_shard_state`]
    /// (Self::encode_shard_state) byte-identically.
    ///
    /// # Errors
    ///
    /// [`ShardError::BadShard`] for an out-of-range index.
    pub fn encode_shard_state_delta(&self, shard: usize) -> Result<Vec<u8>, ShardError> {
        let hives = self
            .shards
            .get(shard)
            .ok_or(ShardError::BadShard { shard })?;
        let mut buf = Vec::new();
        codec::put_u8(&mut buf, 1); // shard-delta format version
        codec::put_u64(&mut buf, hives.len() as u64);
        for (id, hive) in hives {
            codec::put_u64(&mut buf, id.0);
            codec::put_bytes(&mut buf, &hive.encode_state_delta());
        }
        Ok(buf)
    }

    /// Applies a delta produced by
    /// [`encode_shard_state_delta`](Self::encode_shard_state_delta) to
    /// the hives already on shard `shard`. Total: malformed bytes, an
    /// unknown program, or a base mismatch inside a hive delta return a
    /// typed error, never panic.
    ///
    /// # Errors
    ///
    /// [`ShardStateError`] on a bad shard index, malformed bytes, or a
    /// program this shard does not hold.
    pub fn apply_shard_state_delta(
        &mut self,
        shard: usize,
        bytes: &[u8],
    ) -> Result<(), ShardStateError> {
        if shard >= self.shards.len() {
            return Err(ShardError::BadShard { shard }.into());
        }
        let mut r = codec::Reader::new(bytes);
        let version = r.u8("ShardDelta.version")?;
        if version != 1 {
            return Err(CodecError::BadTag {
                what: "ShardDelta.version",
                tag: version,
            }
            .into());
        }
        let n = r.u64("ShardDelta.n_hives")?;
        for _ in 0..n {
            let id = ProgramId(r.u64("ShardDelta.program_id")?);
            let delta = r.bytes("ShardDelta.hive_delta")?;
            let hive = self.shards[shard]
                .get_mut(&id)
                .ok_or(ShardError::UnknownProgram { program: id })?;
            hive.apply_state_delta(delta)?;
        }
        if !r.is_empty() {
            return Err(CodecError::BadLen {
                what: "ShardDelta.trailing",
                len: r.remaining(),
            }
            .into());
        }
        Ok(())
    }

    /// Resets every hive on shard `shard`'s delta tracking: the next
    /// [`encode_shard_state_delta`](Self::encode_shard_state_delta)
    /// covers only changes made after this call.
    pub fn mark_shard_clean(&mut self, shard: usize) {
        if let Some(hives) = self.shards.get_mut(shard) {
            for hive in hives.values_mut() {
                hive.mark_clean();
            }
        }
    }

    /// Restores shard `shard` from bytes produced by
    /// [`encode_shard_state`](Self::encode_shard_state), replacing every
    /// hive on the shard. Round-trips byte-identically.
    ///
    /// # Errors
    ///
    /// [`ShardStateError`] on a bad shard index, malformed bytes, a
    /// program the map doesn't place on this shard, or a program-id
    /// mismatch inside a hive's state.
    pub fn decode_shard_state(
        &mut self,
        shard: usize,
        bytes: &[u8],
        config: &HiveConfig,
    ) -> Result<(), ShardStateError> {
        if shard >= self.shards.len() {
            return Err(ShardError::BadShard { shard }.into());
        }
        let mut r = codec::Reader::new(bytes);
        let version = r.u8("ShardState.version")?;
        if version != 1 {
            return Err(CodecError::BadTag {
                what: "ShardState.version",
                tag: version,
            }
            .into());
        }
        let n = r.u64("ShardState.n_hives")?;
        let mut restored: BTreeMap<ProgramId, Hive<'p>> = BTreeMap::new();
        for _ in 0..n {
            let id = ProgramId(r.u64("ShardState.program_id")?);
            if self.map.shard_of(id)? != shard {
                return Err(ShardError::UnknownProgram { program: id }.into());
            }
            let program = *self
                .programs
                .get(&id)
                .ok_or(ShardError::UnknownProgram { program: id })?;
            let state = r.bytes("ShardState.hive_state")?;
            restored.insert(id, Hive::decode_state(program, config.clone(), state)?);
        }
        self.shards[shard] = restored;
        Ok(())
    }
}
