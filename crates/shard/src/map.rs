//! Static program→shard placement.
//!
//! Placement is hash-based (FNV-1a of the program id's little-endian
//! bytes, modulo the shard count) but materialized into an explicit
//! assignment table at construction: routing decisions are a lookup in
//! a frozen map, never a live hash computation against a mutable shard
//! count — so the placement is trivially deterministic, printable, and
//! testable, and a future rebalancer can swap in any explicit table
//! without touching the router.

use softborg_program::ProgramId;
use softborg_trace::wire;
use std::collections::BTreeMap;

/// Typed routing/sharding failures. Every variant is a condition the
/// router must surface to the operator rather than panic on or silently
/// drop — a frame claiming or carrying a program nobody owns is
/// evidence of a misconfigured fleet or a corrupted wire stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// A program id that no shard owns (unknown to the placement map).
    UnknownProgram {
        /// The offending program id.
        program: ProgramId,
    },
    /// A map over zero shards was requested.
    NoShards,
    /// The same program was listed twice at construction.
    DuplicateProgram {
        /// The duplicated program id.
        program: ProgramId,
    },
    /// A shard index outside `0..n_shards`.
    BadShard {
        /// The offending shard index.
        shard: usize,
    },
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownProgram { program } => {
                write!(f, "program {:#x} is not owned by any shard", program.0)
            }
            ShardError::NoShards => write!(f, "shard map needs at least one shard"),
            ShardError::DuplicateProgram { program } => {
                write!(f, "program {:#x} listed more than once", program.0)
            }
            ShardError::BadShard { shard } => write!(f, "shard index {shard} out of range"),
        }
    }
}

impl std::error::Error for ShardError {}

/// An explicit, deterministic program→shard assignment over a fixed
/// shard count. Built once from the program set; consulted by the
/// router on every frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    assignments: BTreeMap<ProgramId, usize>,
    n_shards: usize,
}

/// The placement hash: FNV-1a over the id's little-endian bytes — the
/// same hash the wire format uses for checksums, so placement is stable
/// across hosts and builds (no `DefaultHasher` seed dependence).
fn placement(id: ProgramId, n_shards: usize) -> usize {
    (wire::fnv1a(&id.0.to_le_bytes()) % n_shards as u64) as usize
}

impl ShardMap {
    /// Builds the placement table for `programs` over `n_shards` shards.
    ///
    /// # Errors
    ///
    /// [`ShardError::NoShards`] when `n_shards == 0`;
    /// [`ShardError::DuplicateProgram`] when an id repeats.
    pub fn new(programs: &[ProgramId], n_shards: usize) -> Result<Self, ShardError> {
        if n_shards == 0 {
            return Err(ShardError::NoShards);
        }
        let mut assignments = BTreeMap::new();
        for &p in programs {
            if assignments.insert(p, placement(p, n_shards)).is_some() {
                return Err(ShardError::DuplicateProgram { program: p });
            }
        }
        Ok(ShardMap {
            assignments,
            n_shards,
        })
    }

    /// The shard owning `program`.
    ///
    /// # Errors
    ///
    /// [`ShardError::UnknownProgram`] when no shard owns it.
    pub fn shard_of(&self, program: ProgramId) -> Result<usize, ShardError> {
        self.assignments
            .get(&program)
            .copied()
            .ok_or(ShardError::UnknownProgram { program })
    }

    /// Number of shards the map places onto.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Number of programs placed.
    pub fn n_programs(&self) -> usize {
        self.assignments.len()
    }

    /// The programs assigned to `shard`, in id order.
    pub fn programs_on(&self, shard: usize) -> Vec<ProgramId> {
        self.assignments
            .iter()
            .filter(|&(_, &s)| s == shard)
            .map(|(&p, _)| p)
            .collect()
    }

    /// The full assignment table, in program-id order.
    pub fn assignments(&self) -> &BTreeMap<ProgramId, usize> {
        &self.assignments
    }

    /// Placement imbalance: max programs on any shard divided by the
    /// mean per shard (1.0 = perfectly even; 0.0 when no programs are
    /// placed).
    pub fn imbalance_ratio(&self) -> f64 {
        if self.assignments.is_empty() {
            return 0.0;
        }
        let mut per_shard = vec![0usize; self.n_shards];
        for &s in self.assignments.values() {
            per_shard[s] += 1;
        }
        let max = per_shard.iter().max().copied().unwrap_or(0) as f64;
        let mean = self.assignments.len() as f64 / self.n_shards as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: u64) -> Vec<ProgramId> {
        (0..n)
            .map(|i| ProgramId(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect()
    }

    #[test]
    fn placement_is_deterministic_and_in_range() {
        let programs = ids(32);
        let a = ShardMap::new(&programs, 4).unwrap();
        let b = ShardMap::new(&programs, 4).unwrap();
        assert_eq!(a, b, "same inputs must give the same placement");
        for &p in &programs {
            assert!(a.shard_of(p).unwrap() < 4);
        }
    }

    #[test]
    fn every_program_lands_on_exactly_one_shard() {
        let programs = ids(17);
        let m = ShardMap::new(&programs, 5).unwrap();
        let total: usize = (0..5).map(|s| m.programs_on(s).len()).sum();
        assert_eq!(total, 17);
        assert_eq!(m.n_programs(), 17);
    }

    #[test]
    fn unknown_program_is_a_typed_error() {
        let m = ShardMap::new(&ids(4), 2).unwrap();
        let stranger = ProgramId(0xDEAD_BEEF);
        assert_eq!(
            m.shard_of(stranger),
            Err(ShardError::UnknownProgram { program: stranger })
        );
    }

    #[test]
    fn zero_shards_and_duplicates_are_rejected() {
        assert_eq!(ShardMap::new(&ids(2), 0), Err(ShardError::NoShards));
        let dup = [ProgramId(7), ProgramId(7)];
        assert_eq!(
            ShardMap::new(&dup, 2),
            Err(ShardError::DuplicateProgram {
                program: ProgramId(7)
            })
        );
    }

    #[test]
    fn single_shard_owns_everything() {
        let programs = ids(9);
        let m = ShardMap::new(&programs, 1).unwrap();
        for &p in &programs {
            assert_eq!(m.shard_of(p).unwrap(), 0);
        }
        assert!((m.imbalance_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn imbalance_ratio_flags_skew() {
        // Two programs forced onto 4 shards: at most 2 occupied, so the
        // ratio is at least 1.0 and at most n_shards/mean-bounded.
        let m = ShardMap::new(&ids(2), 4).unwrap();
        assert!(m.imbalance_ratio() >= 1.0);
        assert_eq!(ShardMap::new(&[], 3).unwrap().imbalance_ratio(), 0.0);
    }
}
