//! # softborg-shard — sharded multi-program hive routing
//!
//! One hive serves one program; a real deployment runs many programs at
//! once. This crate scales the hive horizontally without giving up the
//! single-program pipeline's guarantees:
//!
//! * [`map`] — [`ShardMap`]: explicit, deterministic, hash-based
//!   program→shard placement, and the typed [`ShardError`]s the router
//!   surfaces instead of panicking or silently dropping.
//! * [`pipeline`] — the sharded pipeline: producers claim per-program
//!   sequence slots through a [`ShardFrameSender`]; **one shared**
//!   decode+reconstruct worker pool (reusing `softborg-ingest`'s
//!   bounded queues, backpressure, and memo recycling — including the
//!   pool-wide shared cache) classifies each frame by the program id
//!   embedded in its bytes; per-shard sequence-ordered mergers apply
//!   each program's traces in exact submission order.
//! * [`sharded`] — [`ShardedHive`]: N hive shards behind the router,
//!   with per-shard state snapshot/restore so crash-only durability
//!   composes with sharding.
//! * [`stats`] — [`ShardRunStats`] / [`ShardStats`]: pool-wide and
//!   per-shard counters (queue depths, imbalance ratio, throughput,
//!   rerouted / unknown-program counts) plus capped typed-error
//!   samples.
//!
//! The invariant carried over from single-program ingest: for every
//! program, sharded ingest is **byte-identical** to a serial
//! `Hive::ingest` loop over that program's traces — checked by a
//! state-codec round-trip property test at the workspace level.

#![warn(missing_docs)]

pub mod map;
pub mod pipeline;
pub mod sharded;
pub mod stats;

pub use map::{ShardError, ShardMap};
pub use pipeline::ShardFrameSender;
pub use sharded::{ShardStateError, ShardedHive};
pub use stats::{ShardRunStats, ShardStats, ERROR_SAMPLE_CAP};
