//! Sharded-pipeline observability: pool-wide counters plus a per-shard
//! breakdown, snapshotted into a [`ShardRunStats`] when a run completes.

use crate::map::ShardError;
use softborg_obs::rates;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many router-error samples a run retains (counters are exact;
/// samples are capped so a firehose of bad frames can't balloon memory).
pub const ERROR_SAMPLE_CAP: usize = 8;

/// Pool-wide counters, updated concurrently by producers, workers, and
/// every shard merger.
#[derive(Debug, Default)]
pub(crate) struct RunCore {
    pub frames_submitted: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_corrupt: AtomicU64,
    pub frames_rerouted: AtomicU64,
    pub frames_unknown_program: AtomicU64,
    pub frames_merged: AtomicU64,
    pub traces_merged: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    pub worker_busy_ns: AtomicU64,
    /// Capped typed-error samples (see [`ERROR_SAMPLE_CAP`]).
    pub errors: Mutex<Vec<ShardError>>,
}

/// Per-shard counters, updated by that shard's merger thread (and by the
/// post-run rerouted-frame drain).
#[derive(Debug, Default)]
pub(crate) struct ShardCore {
    pub frames_merged: AtomicU64,
    pub traces_merged: AtomicU64,
    pub frames_corrupt: AtomicU64,
    pub frames_rerouted_in: AtomicU64,
}

impl RunCore {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a router error: exact count via the caller's counter,
    /// plus a capped sample for diagnostics.
    pub(crate) fn sample_error(&self, err: ShardError) {
        let mut errors = self.errors.lock().expect("error samples");
        if errors.len() < ERROR_SAMPLE_CAP {
            errors.push(err);
        }
    }
}

/// One shard's share of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Programs placed on this shard.
    pub programs: usize,
    /// Frames whose slot this shard's merger consumed (healthy, corrupt,
    /// unknown, and rerouted-away frames all count — they all advance
    /// the shard's per-program sequence).
    pub frames_merged: u64,
    /// Traces applied to this shard's hives (rerouted-in included).
    pub traces_merged: u64,
    /// Corrupt frames charged to this shard (by claimed program).
    pub frames_corrupt: u64,
    /// Frames whose content routed *into* this shard from a slot claimed
    /// on another program.
    pub frames_rerouted_in: u64,
    /// Deepest this shard's merge queue ever got.
    pub merge_queue_high_water: usize,
}

/// Counters and gauges for one sharded ingest run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardRunStats {
    /// Frames handed to the pipeline (before any drop).
    pub frames_submitted: u64,
    /// Frames displaced by `DropOldest` backpressure (or submitted after
    /// shutdown) and never merged.
    pub frames_dropped: u64,
    /// Frames rejected by wire validation or carrying payloads from more
    /// than one program. Counted and skipped — never a panic.
    pub frames_corrupt: u64,
    /// Healthy frames whose content program differed from the claimed
    /// one: the claimed slot is consumed and the traces are delivered to
    /// the content program's shard (deterministically, after in-order
    /// traffic).
    pub frames_rerouted: u64,
    /// Healthy frames whose content program no shard owns: typed error,
    /// counted, slot consumed — never a panic or a silent drop.
    pub frames_unknown_program: u64,
    /// Frames whose slot reached a shard merger (corrupt/unknown/
    /// rerouted included: their slot is consumed to preserve ordering).
    pub frames_merged: u64,
    /// Traces applied to hives, over all shards.
    pub traces_merged: u64,
    /// Traces recycled from the memo cache.
    pub cache_hits: u64,
    /// Traces that required a full decode + reconstruction.
    pub cache_misses: u64,
    /// Memo entries rotated out by the second-chance sweep.
    pub cache_evictions: u64,
    /// Total worker time spent classifying + decoding + reconstructing,
    /// in ns.
    pub worker_busy_ns: u64,
    /// Deepest the shared frame queue ever got.
    pub queue_high_water: usize,
    /// Wall-clock duration of the run, in ns.
    pub wall_ns: u64,
    /// Decode/reconstruct workers the run used.
    pub workers: usize,
    /// Per-shard breakdown, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Up to [`ERROR_SAMPLE_CAP`] typed router errors (counters above
    /// are exact; these are samples).
    pub error_samples: Vec<ShardError>,
}

impl ShardRunStats {
    /// Sink throughput in traces per second.
    pub fn throughput_traces_per_sec(&self) -> f64 {
        rates::per_sec(self.traces_merged, self.wall_ns)
    }

    /// Fraction of traces served from the memo cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        rates::hit_rate(self.cache_hits, self.cache_misses)
    }

    /// Work imbalance across shards: max per-shard `traces_merged`
    /// divided by the mean (1.0 = perfectly even; 0.0 when nothing
    /// merged). The gauge that tells an operator hash placement has
    /// concentrated hot programs on one shard.
    pub fn imbalance_ratio(&self) -> f64 {
        if self.per_shard.is_empty() || self.traces_merged == 0 {
            return 0.0;
        }
        let max = self
            .per_shard
            .iter()
            .map(|s| s.traces_merged)
            .max()
            .unwrap_or(0) as f64;
        let mean = self.traces_merged as f64 / self.per_shard.len() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::ProgramId;

    #[test]
    fn error_samples_are_capped_but_counting_is_callers() {
        let core = RunCore::default();
        for i in 0..100 {
            core.sample_error(ShardError::UnknownProgram {
                program: ProgramId(i),
            });
        }
        assert_eq!(core.errors.lock().unwrap().len(), ERROR_SAMPLE_CAP);
    }

    #[test]
    fn imbalance_ratio_reads_skew() {
        let mut s = ShardRunStats {
            traces_merged: 100,
            ..ShardRunStats::default()
        };
        s.per_shard = vec![
            ShardStats {
                shard: 0,
                traces_merged: 90,
                ..ShardStats::default()
            },
            ShardStats {
                shard: 1,
                traces_merged: 10,
                ..ShardStats::default()
            },
        ];
        assert!((s.imbalance_ratio() - 1.8).abs() < 1e-9);
        assert_eq!(ShardRunStats::default().imbalance_ratio(), 0.0);
    }
}
