//! Sharded ingest of interleaved multi-program frames must be
//! per-program **byte-identical** to a serial `Hive::ingest` loop over
//! that program's traces — for any program set, shard count, worker
//! count, batch size, interleaving, and memo scope. Byte-identity is
//! checked on the full state codec (`Hive::encode_state`), the same
//! bytes durability snapshots persist.

use proptest::prelude::*;
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::{BackpressurePolicy, IngestConfig, MemoMode};
use softborg_pod::{Pod, PodConfig};
use softborg_program::scenarios::{self, Scenario};
use softborg_program::ProgramId;
use softborg_shard::ShardedHive;
use softborg_trace::{wire, ExecutionTrace};

fn fleet(n: usize) -> Vec<Scenario> {
    let mut all = vec![
        scenarios::token_parser(),
        scenarios::triangle(),
        scenarios::record_processor(),
        scenarios::bank_transfer(),
        scenarios::racy_counter(),
    ];
    all.truncate(n.max(1));
    all
}

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

/// Deterministically interleaves each program's frame list into one
/// submission order, spreading programs by a rotating pick driven by
/// `mix` (per-program relative order is preserved — that is the claim).
fn interleave(per_program: Vec<(ProgramId, Vec<Vec<u8>>)>, mix: u64) -> Vec<(ProgramId, Vec<u8>)> {
    let mut queues: Vec<(ProgramId, std::collections::VecDeque<Vec<u8>>)> = per_program
        .into_iter()
        .map(|(p, fs)| (p, fs.into()))
        .collect();
    let mut out = Vec::new();
    let mut state = mix.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    while queues.iter().any(|(_, q)| !q.is_empty()) {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let n_queues = queues.len();
        let pick = (state >> 33) as usize % n_queues;
        for off in 0..n_queues {
            let (p, q) = &mut queues[(pick + off) % n_queues];
            if let Some(f) = q.pop_front() {
                out.push((*p, f));
                break;
            }
        }
    }
    out
}

proptest! {
    // PROPTEST_CASES overrides this default (the CI fault matrix runs
    // at 256).
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any multi-program workload and pipeline shape, each
    /// program's sharded state round-trips byte-identical to its serial
    /// reference.
    #[test]
    fn sharded_equals_serial_per_program(
        n_programs in 1usize..5,
        seed in 0u64..500,
        n in 1usize..28,
        batch in 1usize..9,
        n_shards in 1usize..5,
        workers in 1usize..5,
        queue_capacity in 1usize..9,
        shared_memo in 0usize..2,
        mix in 0u64..1_000,
    ) {
        let scs = fleet(n_programs);
        let programs: Vec<&softborg_program::Program> =
            scs.iter().map(|s| &s.program).collect();

        // Per-program traces + serial reference state bytes.
        let mut per_program_frames = Vec::new();
        let mut reference = Vec::new();
        for (i, s) in scs.iter().enumerate() {
            let traces = pod_traces(s, seed + i as u64, n);
            let frames: Vec<Vec<u8>> =
                traces.chunks(batch).map(wire::encode_batch).collect();
            per_program_frames.push((s.program.id(), frames));
            let mut hive = Hive::new(&s.program, HiveConfig::default());
            for t in &traces {
                hive.ingest(t);
            }
            reference.push((s.program.id(), hive.encode_state()));
        }
        let submissions = interleave(per_program_frames, mix);
        let n_frames = submissions.len() as u64;

        let mut sharded =
            ShardedHive::new(&programs, n_shards, &HiveConfig::default()).unwrap();
        let stats = sharded
            .ingest_batch(
                submissions,
                &IngestConfig {
                    workers,
                    queue_capacity,
                    merge_capacity: queue_capacity,
                    policy: BackpressurePolicy::Block,
                    memo_capacity: 4096,
                    memo_mode: if shared_memo == 1 {
                        MemoMode::Shared { stripes: 8 }
                    } else {
                        MemoMode::PerWorker
                    },
                    ..IngestConfig::default()
                },
            )
            .unwrap();

        prop_assert_eq!(stats.frames_submitted, n_frames);
        prop_assert_eq!(stats.frames_merged, n_frames);
        prop_assert_eq!(stats.frames_corrupt, 0);
        prop_assert_eq!(stats.frames_dropped, 0);
        prop_assert_eq!(stats.frames_rerouted, 0);
        prop_assert_eq!(stats.frames_unknown_program, 0);
        prop_assert_eq!(stats.traces_merged, (n * scs.len()) as u64);
        // Slot conservation per shard: every frame's slot went to
        // exactly one shard merger.
        prop_assert_eq!(
            stats.per_shard.iter().map(|s| s.frames_merged).sum::<u64>(),
            n_frames
        );

        for (id, want) in reference {
            let got = sharded.hive(id).unwrap().encode_state();
            prop_assert_eq!(
                got, want,
                "program {:#x} state diverged from serial ingest", id.0
            );
        }
    }
}

/// Shard-state snapshot/restore round-trips byte-identically — the
/// primitive per-shard durability is built on.
#[test]
fn shard_state_round_trips_byte_identically() {
    let scs = fleet(4);
    let programs: Vec<&softborg_program::Program> = scs.iter().map(|s| &s.program).collect();
    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let submissions: Vec<(ProgramId, Vec<u8>)> = scs
        .iter()
        .map(|s| {
            let traces = pod_traces(s, 42, 20);
            (s.program.id(), wire::encode_batch(&traces))
        })
        .collect();
    sharded
        .ingest_batch(submissions, &IngestConfig::default())
        .unwrap();

    for shard in 0..sharded.n_shards() {
        let bytes = sharded.encode_shard_state(shard).unwrap();
        let mut restored = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
        restored
            .decode_shard_state(shard, &bytes, &HiveConfig::default())
            .unwrap();
        assert_eq!(
            restored.encode_shard_state(shard).unwrap(),
            bytes,
            "shard {shard} state did not round-trip"
        );
        for id in sharded.map().programs_on(shard) {
            assert_eq!(
                restored.hive(id).unwrap().encode_state(),
                sharded.hive(id).unwrap().encode_state(),
                "hive {:#x} diverged through shard codec",
                id.0
            );
        }
    }
}

/// DropOldest backpressure across programs keeps per-shard accounting
/// conserved: every submitted frame is merged or counted dropped, and
/// surviving traffic still reconstructs cleanly.
#[test]
fn drop_oldest_conserves_slots_across_shards() {
    let scs = fleet(3);
    let programs: Vec<&softborg_program::Program> = scs.iter().map(|s| &s.program).collect();
    let mut per_program = Vec::new();
    for (i, s) in scs.iter().enumerate() {
        let traces = pod_traces(s, 100 + i as u64, 120);
        let frames: Vec<Vec<u8>> = traces.chunks(2).map(wire::encode_batch).collect();
        per_program.push((s.program.id(), frames));
    }
    let submissions = interleave(per_program, 7);
    let n_frames = submissions.len() as u64;
    let mut sharded = ShardedHive::new(&programs, 3, &HiveConfig::default()).unwrap();
    let stats = sharded
        .ingest_batch(
            submissions,
            &IngestConfig {
                workers: 1,
                queue_capacity: 1,
                merge_capacity: 1,
                policy: BackpressurePolicy::DropOldest,
                memo_capacity: 0,
                memo_mode: MemoMode::PerWorker,
                ..IngestConfig::default()
            },
        )
        .unwrap();
    assert_eq!(stats.frames_submitted, n_frames);
    assert_eq!(
        stats.frames_merged + stats.frames_dropped,
        n_frames,
        "every slot must be merged or accounted as dropped"
    );
    let applied: u64 = sharded.hives().map(|(_, h)| h.stats().traces).sum();
    assert_eq!(applied, stats.traces_merged);
    for (_, hive) in sharded.hives() {
        assert_eq!(hive.stats().unreconstructed, 0);
    }
}
