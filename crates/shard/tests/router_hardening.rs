//! Router hardening: every way a frame can disagree with its claimed
//! slot — wire corruption, a content program no shard owns, payloads
//! from two programs in one batch, a healthy frame claimed against the
//! wrong program — must be counted via typed errors and consume its
//! slot, never panic, never silently drop, and never disturb the
//! byte-identity of healthy traffic.

use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::IngestConfig;
use softborg_pod::{Pod, PodConfig};
use softborg_program::scenarios::{self, Scenario};
use softborg_program::{Program, ProgramId};
use softborg_shard::{ShardError, ShardedHive};
use softborg_trace::{wire, ExecutionTrace};

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

fn serial_state(s: &Scenario, traces: &[ExecutionTrace]) -> Vec<u8> {
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    for t in traces {
        hive.ingest(t);
    }
    hive.encode_state()
}

#[test]
fn corrupt_frames_consume_their_slot_and_spare_healthy_traffic() {
    let s = scenarios::token_parser();
    let programs: Vec<&Program> = vec![&s.program];
    let id = s.program.id();
    let traces = pod_traces(&s, 3, 30);
    // The middle frame gets a flipped payload byte; serial reference
    // sees only the surviving traces.
    let reference = serial_state(
        &s,
        &traces[..10]
            .iter()
            .chain(&traces[20..])
            .cloned()
            .collect::<Vec<_>>(),
    );
    let mut frames: Vec<Vec<u8>> = traces.chunks(10).map(wire::encode_batch).collect();
    let mid = frames[1].len() / 2;
    frames[1][mid] ^= 0xA5;

    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let stats = sharded
        .ingest_batch(
            frames.into_iter().map(|f| (id, f)).collect(),
            &IngestConfig::default(),
        )
        .unwrap();
    assert_eq!(stats.frames_corrupt, 1, "corruption must be counted");
    assert_eq!(stats.frames_merged, 3, "corrupt slot still consumed");
    assert_eq!(stats.traces_merged, 20);
    let shard = sharded.map().shard_of(id).unwrap();
    assert_eq!(stats.per_shard[shard].frames_corrupt, 1);
    assert_eq!(sharded.hive(id).unwrap().encode_state(), reference);
}

#[test]
fn truncated_and_garbage_frames_never_panic() {
    let s = scenarios::triangle();
    let programs: Vec<&Program> = vec![&s.program];
    let id = s.program.id();
    let good = wire::encode_batch(&pod_traces(&s, 1, 8));
    for cut in 0..good.len() {
        let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
        let stats = sharded
            .ingest_batch(vec![(id, good[..cut].to_vec())], &IngestConfig::default())
            .unwrap();
        assert_eq!(stats.frames_corrupt, 1, "cut at {cut}");
        assert_eq!(stats.traces_merged, 0);
    }
    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let garbage = vec![vec![0xFF; 64], Vec::new(), vec![0x00; 3]];
    let stats = sharded
        .ingest_batch(
            garbage.into_iter().map(|f| (id, f)).collect(),
            &IngestConfig::default(),
        )
        .unwrap();
    assert_eq!(stats.frames_corrupt, 3);
    assert_eq!(stats.frames_merged, 3, "all slots consumed");
}

#[test]
fn unknown_content_program_is_typed_counted_and_slot_consuming() {
    let known = scenarios::token_parser();
    let stranger = scenarios::spin_wait(); // never placed on any shard
    let programs: Vec<&Program> = vec![&known.program];
    let known_id = known.program.id();
    let stranger_id = stranger.program.id();
    assert_ne!(known_id, stranger_id);

    let known_traces = pod_traces(&known, 5, 12);
    let reference = serial_state(&known, &known_traces);
    let stranger_frame = wire::encode_batch(&pod_traces(&stranger, 5, 4));

    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    // Interleave: healthy, unroutable (claimed against the known lane),
    // healthy — the unroutable slot must not stall the lane.
    let frames = vec![
        (known_id, wire::encode_batch(&known_traces[..6])),
        (known_id, stranger_frame),
        (known_id, wire::encode_batch(&known_traces[6..])),
    ];
    let stats = sharded
        .ingest_batch(frames, &IngestConfig::default())
        .unwrap();
    assert_eq!(stats.frames_unknown_program, 1);
    assert_eq!(stats.frames_corrupt, 0);
    assert_eq!(stats.frames_merged, 3, "unknown slot still consumed");
    assert_eq!(
        stats.traces_merged, 12,
        "stranger traces must not merge anywhere"
    );
    assert!(
        stats.error_samples.contains(&ShardError::UnknownProgram {
            program: stranger_id
        }),
        "typed error sample missing: {:?}",
        stats.error_samples
    );
    assert_eq!(sharded.hive(known_id).unwrap().encode_state(), reference);
}

#[test]
fn mixed_program_frame_is_rejected_as_corrupt() {
    let a = scenarios::token_parser();
    let b = scenarios::triangle();
    let programs: Vec<&Program> = vec![&a.program, &b.program];
    let a_id = a.program.id();

    // One batch frame containing payloads from two different programs:
    // unclassifiable, so the router must treat it as corrupt.
    let mut mixed = pod_traces(&a, 1, 2);
    mixed.extend(pod_traces(&b, 1, 2));
    let frame = wire::encode_batch(&mixed);
    assert!(wire::frame_program_id(&frame).is_err());

    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let stats = sharded
        .ingest_batch(vec![(a_id, frame)], &IngestConfig::default())
        .unwrap();
    assert_eq!(stats.frames_corrupt, 1);
    assert_eq!(stats.traces_merged, 0);
    for (_, hive) in sharded.hives() {
        assert_eq!(hive.stats().traces, 0);
    }
}

#[test]
fn misclaimed_frames_reroute_to_their_content_program_deterministically() {
    let a = scenarios::token_parser();
    let b = scenarios::triangle();
    let programs: Vec<&Program> = vec![&a.program, &b.program];
    let (a_id, b_id) = (a.program.id(), b.program.id());

    let a_traces = pod_traces(&a, 9, 16);
    let b_traces = pod_traces(&b, 9, 12);
    // B's frames are all *claimed* against A's lane (a misconfigured
    // producer). Content routing must deliver them to B — after A's
    // in-order traffic — in claimed-slot order, so B's state equals a
    // serial ingest of its traces in submission order.
    let reference_a = serial_state(&a, &a_traces);
    let reference_b = serial_state(&b, &b_traces);

    let mut frames: Vec<(ProgramId, Vec<u8>)> = Vec::new();
    let a_frames: Vec<Vec<u8>> = a_traces.chunks(4).map(wire::encode_batch).collect();
    let b_frames: Vec<Vec<u8>> = b_traces.chunks(4).map(wire::encode_batch).collect();
    for (i, f) in a_frames.into_iter().enumerate() {
        frames.push((a_id, f));
        if let Some(bf) = b_frames.get(i) {
            frames.push((a_id, bf.clone())); // misclaimed!
        }
    }
    let n_frames = frames.len() as u64;

    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let stats = sharded
        .ingest_batch(frames, &IngestConfig::default())
        .unwrap();
    assert_eq!(stats.frames_rerouted, 3);
    assert_eq!(stats.frames_merged, n_frames, "misclaimed slots consumed");
    assert_eq!(stats.traces_merged, 28);
    assert_eq!(
        stats
            .per_shard
            .iter()
            .map(|s| s.frames_rerouted_in)
            .sum::<u64>(),
        3
    );
    assert_eq!(sharded.hive(a_id).unwrap().encode_state(), reference_a);
    assert_eq!(sharded.hive(b_id).unwrap().encode_state(), reference_b);
}

#[test]
fn claiming_an_unknown_program_is_a_typed_submit_error() {
    let s = scenarios::token_parser();
    let stranger = scenarios::spin_wait();
    let programs: Vec<&Program> = vec![&s.program];
    let stranger_id = stranger.program.id();
    let frame = wire::encode_batch(&pod_traces(&s, 2, 2));

    let mut sharded = ShardedHive::new(&programs, 2, &HiveConfig::default()).unwrap();
    let err = sharded
        .ingest_batch(vec![(stranger_id, frame)], &IngestConfig::default())
        .unwrap_err();
    assert_eq!(
        err,
        ShardError::UnknownProgram {
            program: stranger_id
        }
    );
}
