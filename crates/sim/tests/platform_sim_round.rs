//! Platform rounds under the virtual-time scheduler: [`sim_round`]
//! must leave the platform in *byte-identical* state to the serial and
//! pipelined [`Platform::round`] paths on shared seeds, replays must
//! reproduce the `sched_trace_hash`, and the simulated round must
//! actually exercise the blocking-point catalogue (bounded-channel
//! stalls, fsyncs, wakes). [`sim_round_multi`] gets the same treatment
//! against [`MultiPlatform::round`] via per-shard state bytes.

use softborg::pod::PodConfig;
use softborg::{
    FleetSpec, IngestSettings, MultiPlatform, MultiPlatformConfig, Platform, PlatformConfig,
};
use softborg_ingest::IngestConfig;
use softborg_program::scenarios::{self, Scenario};
use softborg_sim::{sim_round, sim_round_multi, SimRoundConfig};

fn config(pipelined: bool, pod_threads: usize, workers: usize, batch: usize) -> PlatformConfig {
    PlatformConfig {
        n_pods: 6,
        seed: 42,
        ingest: IngestSettings {
            pipelined,
            pod_threads,
            batch_size: batch,
            pipeline: IngestConfig {
                workers,
                ..IngestConfig::default()
            },
        },
        ..PlatformConfig::default()
    }
}

fn assert_same_platform(what: &str, a: &Platform<'_>, b: &Platform<'_>) {
    assert_eq!(a.history(), b.history(), "{what}: round reports diverged");
    assert_eq!(a.hive().stats(), b.hive().stats(), "{what}: HiveStats");
    assert_eq!(
        a.hive().tree().digest(),
        b.hive().tree().digest(),
        "{what}: tree digest"
    );
    assert_eq!(a.hive().coverage(), b.hive().coverage(), "{what}: coverage");
}

#[test]
fn sim_round_matches_serial_and_pipelined_rounds() {
    let s = scenarios::token_parser();
    let mut serial = Platform::new(&s.program, config(false, 1, 1, 1));
    serial.run(3, 20);
    let mut piped = Platform::new(&s.program, config(true, 2, 2, 7));
    piped.run(3, 20);
    assert_same_platform("serial vs pipelined", &serial, &piped);

    // The simulated platform uses the pipelined batch size (7) so the
    // frame layout matches; interleaving differs wildly, state must not.
    let mut simmed = Platform::new(&s.program, config(true, 2, 2, 7));
    let sim_cfg = SimRoundConfig::default();
    for _ in 0..3 {
        sim_round(&mut simmed, 20, &sim_cfg);
    }
    assert_same_platform("serial vs sim", &serial, &simmed);
}

#[test]
fn sim_round_replays_to_identical_hash_and_state() {
    let run = || {
        let s = scenarios::record_processor();
        let mut p = Platform::new(&s.program, config(true, 2, 2, 5));
        let (report, stats) = sim_round(&mut p, 24, &SimRoundConfig::default());
        (
            report,
            stats.sched.trace_hash,
            p.hive().tree().digest(),
            p.hive().stats(),
        )
    };
    let (report_a, hash_a, digest_a, stats_a) = run();
    let (report_b, hash_b, digest_b, stats_b) = run();
    assert_eq!(report_a, report_b, "round report must replay identically");
    assert_eq!(hash_a, hash_b, "sched_trace_hash must replay identically");
    assert_eq!(digest_a, digest_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn sim_round_exercises_every_blocking_point() {
    let s = scenarios::triangle();
    let mut p = Platform::new(&s.program, config(true, 2, 2, 3));
    // All pods start at the same instant and share a 1-slot channel:
    // sends MUST block, the collector MUST drain under wakes, and the
    // journal disk MUST fsync — while the hive state stays identical to
    // an unconstrained sim round.
    let tight = SimRoundConfig {
        start_spread_us: 0,
        chan_capacity: 1,
        fsync_interval_frames: 1,
        ..SimRoundConfig::default()
    };
    let (report, stats) = sim_round(&mut p, 18, &tight);
    assert!(stats.io.chan_full > 0, "no send ever blocked: {stats:?}");
    assert!(stats.io.wakes > 0, "no proc was ever woken: {stats:?}");
    assert!(stats.io.fsyncs > 0, "journal never fsynced: {stats:?}");
    assert!(stats.io.disk_bytes_written > 0);
    // `chan_sends` counts successful pushes only (blocked sends park
    // and retry), so everything sent is eventually drained.
    assert_eq!(stats.io.chan_recvs, stats.io.chan_sends);

    let mut roomy_p = Platform::new(&s.program, config(true, 2, 2, 3));
    let (roomy_report, roomy_stats) = sim_round(&mut roomy_p, 18, &SimRoundConfig::default());
    assert_eq!(roomy_stats.io.chan_full, 0, "capacity 8 never fills here");
    assert_eq!(report, roomy_report, "backpressure must not change state");
    assert_same_platform("tight vs roomy", &p, &roomy_p);
}

fn fleet_scenarios() -> Vec<Scenario> {
    vec![
        scenarios::token_parser(),
        scenarios::triangle(),
        scenarios::record_processor(),
        scenarios::bank_transfer(),
    ]
}

fn specs(scs: &[Scenario]) -> Vec<FleetSpec<'_>> {
    scs.iter()
        .map(|s| FleetSpec {
            program: &s.program,
            pod: PodConfig {
                input_range: s.input_range,
                ..PodConfig::default()
            },
        })
        .collect()
}

fn multi_config() -> MultiPlatformConfig {
    MultiPlatformConfig {
        n_pods: 4,
        n_shards: 3,
        seed: 23,
        ..MultiPlatformConfig::default()
    }
}

#[test]
fn sim_round_multi_matches_threaded_multi_platform() {
    let scs = fleet_scenarios();

    let mut threaded = MultiPlatform::new(&specs(&scs), multi_config());
    threaded.run(3, 8);

    let mut simmed = MultiPlatform::new(&specs(&scs), multi_config());
    let sim_cfg = SimRoundConfig::default();
    for _ in 0..3 {
        sim_round_multi(&mut simmed, 8, &sim_cfg);
    }

    assert_eq!(
        threaded.history(),
        simmed.history(),
        "multi round reports diverged"
    );
    for shard in 0..3 {
        assert_eq!(
            threaded.shard_state(shard),
            simmed.shard_state(shard),
            "shard {shard} state bytes diverged"
        );
    }
}

#[test]
fn sim_round_multi_replays_to_identical_hash() {
    let scs = fleet_scenarios();
    let run = |scs: &[Scenario]| {
        let mut p = MultiPlatform::new(&specs(scs), multi_config());
        let (report, stats) = sim_round_multi(&mut p, 6, &SimRoundConfig::default());
        let states: Vec<Vec<u8>> = (0..3).map(|i| p.shard_state(i)).collect();
        (report, stats.sched.trace_hash, states)
    };
    let (report_a, hash_a, states_a) = run(&scs);
    let (report_b, hash_b, states_b) = run(&scs);
    assert_eq!(report_a, report_b);
    assert_eq!(hash_a, hash_b, "multi sched_trace_hash must replay");
    assert_eq!(states_a, states_b);
}
