//! The observability layer's determinism contract, end to end:
//!
//! * telemetry-on and telemetry-off runs leave the platform and hive in
//!   byte-identical state (recording is passive);
//! * a simulated run replays to the same `events_hash` *and* the same
//!   JSONL export (timestamps are virtual, so even they replay);
//! * the threaded and simulated transport paths hash to the same event
//!   stream on a shared seed;
//! * when two runs genuinely diverge (fault plans differing at one
//!   crash instant), [`explain_recorders`] pinpoints the first
//!   divergent event at or after the earlier crash instant.

use softborg::pod::PodConfig;
use softborg::{Platform, PlatformConfig};
use softborg_hive::transport::{run_reliable_ingest, TransportConfig};
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::IngestConfig;
use softborg_netsim::{Addr, Crash, DiskCrashPoint, FaultPlan, LinkConfig, Partition, SimConfig};
use softborg_obs::{
    explain_recorders, FlightRecorder, ManualClock, MetricsRegistry, ObsHandles, Severity,
};
use softborg_pod::Pod;
use softborg_program::scenarios::{self, Scenario};
use softborg_sim::{run_reliable_ingest_sim, Proc, SimTime, World, WorldCtx};
use softborg_trace::{wire, ExecutionTrace};
use std::sync::Arc;

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

fn sessions_of(traces: &[ExecutionTrace], pods: usize, batch: usize) -> Vec<Vec<(u8, Vec<u8>)>> {
    let mut out = vec![Vec::new(); pods.max(1)];
    for (i, chunk) in traces.chunks(batch.max(1)).enumerate() {
        out[i % pods.max(1)].push((1u8, wire::encode_batch(chunk)));
    }
    out
}

fn live_obs() -> ObsHandles {
    ObsHandles::new(
        MetricsRegistry::new(),
        FlightRecorder::new(Arc::new(ManualClock::new(0)), 4096),
    )
}

fn faulty_config(seed: u64, pods: u32, crash_at_us: u64, obs: ObsHandles) -> TransportConfig {
    TransportConfig {
        seed,
        obs,
        link: LinkConfig {
            base_latency_us: 800,
            jitter_us: 500,
            loss_per_mille: 80,
        },
        faults: FaultPlan {
            dup_per_mille: 60,
            reorder_per_mille: 100,
            reorder_window_us: 20_000,
            partitions: vec![Partition {
                a: Addr(0),
                b: Addr(pods),
                from_us: 5_000,
                until_us: 25_000,
            }],
            crashes: vec![Crash {
                node: Addr(pods),
                at_us: crash_at_us,
                restart_us: crash_at_us + 30_000,
            }],
            disk: Vec::new(),
        },
        ..TransportConfig::default()
    }
}

/// One simulated transport campaign with live telemetry; returns the
/// recorder, its hashes, and the hive's tree digest.
fn sim_campaign(seed: u64, crash_at_us: u64) -> (FlightRecorder, u64, u64, u64) {
    let s = scenarios::record_processor();
    let traces = pod_traces(&s, seed ^ 0xABCD, 36);
    let obs = live_obs();
    let recorder = obs.recorder.clone();
    let cfg = faulty_config(seed, 3, crash_at_us, obs);
    let mut hive = Hive::new(&s.program, HiveConfig::default());
    let (_, _, sched) = run_reliable_ingest_sim(
        &mut hive,
        sessions_of(&traces, 3, 4),
        &IngestConfig::default(),
        &cfg,
        &[],
    )
    .expect("valid plan");
    let digest = hive.tree().digest();
    let events_hash = recorder.events_hash();
    (recorder, events_hash, sched.trace_hash, digest)
}

#[test]
fn telemetry_on_and_off_platform_states_are_byte_identical() {
    let s = scenarios::token_parser();
    let config = |obs: ObsHandles| PlatformConfig {
        n_pods: 12,
        seed: 42,
        pod: PodConfig {
            input_range: s.input_range,
            ..PodConfig::default()
        },
        obs,
        ..PlatformConfig::default()
    };
    let mut plain = Platform::new(&s.program, config(ObsHandles::default()));
    plain.run(4, 20);

    let obs = live_obs();
    let mut observed = Platform::new(&s.program, config(obs.clone()));
    observed.run(4, 20);

    assert_eq!(plain.history(), observed.history(), "round reports");
    assert_eq!(plain.hive().stats(), observed.hive().stats(), "HiveStats");
    assert_eq!(
        plain.hive().tree().digest(),
        observed.hive().tree().digest(),
        "tree digest"
    );
    assert_eq!(plain.hive().coverage(), observed.hive().coverage());

    // The observed run actually recorded: per-round telemetry, counters,
    // and one round_committed event per round.
    assert_eq!(observed.round_telemetry().len(), 4);
    assert_eq!(plain.round_telemetry().len(), 4);
    let report = obs.registry.as_ref().unwrap().snapshot();
    assert_eq!(report.counter("platform.rounds"), Some(4));
    let committed = obs
        .recorder
        .events()
        .iter()
        .filter(|e| e.kind == "round_committed")
        .count();
    assert_eq!(committed, 4, "one commit event per round");
}

#[test]
fn sim_transport_replays_to_identical_events_hash_and_jsonl() {
    let (rec_a, events_a, sched_a, digest_a) = sim_campaign(5, 15_000);
    let (rec_b, events_b, sched_b, digest_b) = sim_campaign(5, 15_000);
    assert_eq!(sched_a, sched_b, "sched_trace_hash must replay");
    assert_eq!(events_a, events_b, "events_hash must replay");
    assert_eq!(digest_a, digest_b, "hive digest must replay");
    // Timestamps are virtual instants, so the full JSONL export — msg
    // and timestamps included — replays byte-for-byte.
    assert_eq!(rec_a.export_jsonl(), rec_b.export_jsonl());
    assert!(!rec_a.events().is_empty(), "campaign recorded nothing");
}

#[test]
fn threaded_and_sim_transport_events_hash_agree() {
    let s = scenarios::record_processor();
    let traces = pod_traces(&s, 9 ^ 0xABCD, 36);

    let threaded_obs = live_obs();
    let cfg = faulty_config(9, 3, 15_000, threaded_obs.clone());
    let mut threaded_hive = Hive::new(&s.program, HiveConfig::default());
    run_reliable_ingest(
        &mut threaded_hive,
        sessions_of(&traces, 3, 4),
        &IngestConfig::default(),
        &cfg,
    )
    .expect("valid plan");

    let sim_obs = live_obs();
    let cfg = faulty_config(9, 3, 15_000, sim_obs.clone());
    let mut sim_hive = Hive::new(&s.program, HiveConfig::default());
    run_reliable_ingest_sim(
        &mut sim_hive,
        sessions_of(&traces, 3, 4),
        &IngestConfig::default(),
        &cfg,
        &[],
    )
    .expect("valid plan");

    assert_eq!(
        threaded_obs.recorder.events_hash(),
        sim_obs.recorder.events_hash(),
        "threaded and simulated event streams must hash identically;\n{}",
        explain_recorders(&threaded_obs.recorder, &sim_obs.recorder).map_or_else(
            || "(no stable-field divergence)".to_string(),
            |d| d.to_string()
        )
    );
    assert!(!sim_obs.recorder.events().is_empty());
}

#[test]
fn explainer_pinpoints_first_divergent_event_between_fault_plans() {
    // Same seed, same everything — except the server crash lands at
    // 15ms (inside the partition's quiet window) in run A and at 30ms
    // (mid-traffic, later restart) in run B. Up to 15ms the runs are
    // identical, so the first divergent event must sit at or after it.
    let (rec_a, events_a, _, _) = sim_campaign(5, 15_000);
    let (rec_b, events_b, _, _) = sim_campaign(5, 30_000);
    assert_ne!(events_a, events_b, "plans differ; hashes must too");
    let d = explain_recorders(&rec_a, &rec_b).expect("streams must diverge");
    assert!(
        d.at_ns() >= 15_000 * 1_000,
        "divergence {d} precedes the earlier crash instant"
    );
    assert!(
        d.source.starts_with("transport.") || d.source == "ingest",
        "unexpected divergence source: {d}"
    );
    assert!(d.common_prefix > 0, "some prefix should match: {d}");
}

/// A proc that appends to its journal and fsyncs every third write —
/// just enough I/O (with an unsynced tail most of the time) for the
/// world's own recorder to narrate crashes, restarts, fsyncs, and
/// scheduled disk faults, and for a shifted crash instant to lose a
/// *different* number of unsynced bytes.
struct Journaler {
    disk: softborg_sim::DiskId,
    writes_left: u32,
    since_sync: u32,
}

impl Proc for Journaler {
    fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
        ctx.set_timer(1_000, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut WorldCtx<'_>) {
        if self.writes_left == 0 {
            return;
        }
        self.writes_left -= 1;
        ctx.disk_write(self.disk, &[0xAB; 32]);
        self.since_sync += 1;
        if self.since_sync >= 3 {
            self.since_sync = 0;
            ctx.disk_fsync(self.disk);
        }
        ctx.set_timer(1_000, 0);
    }
    fn on_restart(&mut self, ctx: &mut WorldCtx<'_>) {
        self.since_sync = 0;
        ctx.set_timer(1_000, 0);
    }
}

fn journal_world(seed: u64, crash_at_us: u64) -> (FlightRecorder, u64) {
    let mut world = World::new(
        SimConfig {
            seed,
            faults: FaultPlan {
                crashes: vec![Crash {
                    node: Addr(0),
                    at_us: crash_at_us,
                    restart_us: crash_at_us + 20_000,
                }],
                ..FaultPlan::default()
            },
            ..SimConfig::default()
        },
        1_000_000,
    );
    let recorder = world.attach_recorder(1024);
    let owner = Addr(0);
    let disk = world.add_disk(owner, 500);
    world.add_proc(Box::new(Journaler {
        disk,
        writes_left: 80,
        since_sync: 0,
    }));
    world.schedule_disk_fault(
        SimTime(40_000),
        disk,
        DiskCrashPoint::TruncateWalTail { drop_bytes: 16 },
    );
    world.run();
    let hash = world.sched_stats().trace_hash;
    (recorder, hash)
}

#[test]
fn world_recorder_replays_and_narrates_fault_schedule() {
    let (rec_a, sched_a) = journal_world(7, 10_400);
    let (rec_b, sched_b) = journal_world(7, 10_400);
    assert_eq!(sched_a, sched_b);
    assert_eq!(rec_a.events_hash(), rec_b.events_hash());
    assert_eq!(rec_a.export_jsonl(), rec_b.export_jsonl());

    let events = rec_a.events();
    let crash = events
        .iter()
        .find(|e| e.kind == "crash")
        .expect("crash narrated");
    assert_eq!(crash.source.as_ref(), "sim.node.0");
    assert_eq!(crash.severity, Severity::Warn);
    assert_eq!(crash.at_ns, 10_400 * 1_000, "crash at its virtual instant");
    let fault = events
        .iter()
        .find(|e| e.kind == "disk_fault_truncate")
        .expect("disk fault narrated");
    assert_eq!(fault.at_ns, 40_000 * 1_000);
    assert!(events.iter().any(|e| e.kind == "fsync"));
    assert!(events.iter().any(|e| e.kind == "restart"));

    // Shift the crash two write intervals later: a different unsynced
    // tail is lost, and the explainer localizes the divergence to the
    // sim's own event stream at or after the earlier instant.
    let (rec_c, _) = journal_world(7, 12_400);
    let d = explain_recorders(&rec_a, &rec_c).expect("schedules differ");
    assert!(d.at_ns() >= 10_400 * 1_000, "{d}");
    assert!(d.source.starts_with("sim."), "{d}");
}
