//! The transport session loop under the virtual-time scheduler: on a
//! shared seed, [`run_reliable_ingest_sim`] must produce a
//! [`TransportReport`] *byte-identical* to the threaded
//! [`run_reliable_ingest`] — journal bytes included — and a hive in the
//! exact same state; replays must reproduce the `sched_trace_hash`.

use proptest::prelude::*;
use softborg_hive::transport::{run_reliable_ingest, TransportConfig};
use softborg_hive::{Hive, HiveConfig};
use softborg_ingest::IngestConfig;
use softborg_netsim::{Addr, Crash, FaultPlan, LinkConfig, Partition};
use softborg_pod::{Pod, PodConfig};
use softborg_program::scenarios::{self, Scenario};
use softborg_sim::run_reliable_ingest_sim;
use softborg_trace::{wire, ExecutionTrace};

fn scenario(idx: usize) -> Scenario {
    match idx % 4 {
        0 => scenarios::token_parser(),
        1 => scenarios::triangle(),
        2 => scenarios::record_processor(),
        _ => scenarios::bank_transfer(),
    }
}

fn pod_traces(s: &Scenario, seed: u64, n: usize) -> Vec<ExecutionTrace> {
    let mut pod = Pod::new(
        &s.program,
        PodConfig {
            input_range: s.input_range,
            seed,
            ..PodConfig::default()
        },
    );
    (0..n).map(|_| pod.run_once().trace).collect()
}

fn sessions_of(traces: &[ExecutionTrace], pods: usize, batch: usize) -> Vec<Vec<(u8, Vec<u8>)>> {
    let mut out = vec![Vec::new(); pods.max(1)];
    for (i, chunk) in traces.chunks(batch.max(1)).enumerate() {
        out[i % pods.max(1)].push((1u8, wire::encode_batch(chunk)));
    }
    out
}

fn assert_same_hive(what: &str, a: &Hive<'_>, b: &Hive<'_>) {
    assert_eq!(a.stats(), b.stats(), "{what}: HiveStats diverged");
    assert_eq!(
        a.tree().digest(),
        b.tree().digest(),
        "{what}: tree digest diverged"
    );
    assert_eq!(a.coverage(), b.coverage(), "{what}: coverage diverged");
}

fn faulty_config(seed: u64, pods: u32, crash: bool) -> TransportConfig {
    TransportConfig {
        seed,
        link: LinkConfig {
            base_latency_us: 800,
            jitter_us: 500,
            loss_per_mille: 80,
        },
        faults: FaultPlan {
            dup_per_mille: 60,
            reorder_per_mille: 100,
            reorder_window_us: 20_000,
            partitions: vec![Partition {
                a: Addr(0),
                b: Addr(pods),
                from_us: 5_000,
                until_us: 25_000,
            }],
            crashes: if crash {
                vec![Crash {
                    node: Addr(pods),
                    at_us: 15_000,
                    restart_us: 45_000,
                }]
            } else {
                Vec::new()
            },
            disk: Vec::new(),
        },
        ..TransportConfig::default()
    }
}

/// One threaded run and one sim run over identical inputs; returns both
/// hives plus the two report debug renderings (field-by-field equality,
/// journal bytes included) and the sim's trace hash.
fn run_both(scenario_idx: usize, seed: u64, crash: bool) -> (String, String, u64) {
    let s = scenario(scenario_idx);
    let traces = pod_traces(&s, seed ^ 0xABCD, 36);
    let pods = 3;
    let cfg = faulty_config(seed, pods as u32, crash);

    let mut threaded_hive = Hive::new(&s.program, HiveConfig::default());
    let (threaded_report, _) = run_reliable_ingest(
        &mut threaded_hive,
        sessions_of(&traces, pods, 4),
        &IngestConfig::default(),
        &cfg,
    )
    .expect("valid plan");

    let mut sim_hive = Hive::new(&s.program, HiveConfig::default());
    let (sim_report, _, sched) = run_reliable_ingest_sim(
        &mut sim_hive,
        sessions_of(&traces, pods, 4),
        &IngestConfig::default(),
        &cfg,
        &[],
    )
    .expect("valid plan");

    assert_same_hive("threaded vs sim", &threaded_hive, &sim_hive);
    (
        format!("{threaded_report:?}"),
        format!("{sim_report:?}"),
        sched.trace_hash,
    )
}

#[test]
fn sim_transport_equals_threaded_transport_fault_free() {
    let (threaded, sim, _) = run_both(0, 11, false);
    assert_eq!(threaded, sim, "TransportReport diverged");
}

#[test]
fn sim_transport_equals_threaded_transport_under_crash() {
    let (threaded, sim, _) = run_both(2, 77, true);
    assert_eq!(threaded, sim, "TransportReport diverged under faults");
}

#[test]
fn sim_transport_replays_to_identical_hash_and_state() {
    let (r1, s1, h1) = run_both(1, 5, true);
    let (r2, s2, h2) = run_both(1, 5, true);
    assert_eq!(s1, s2, "sim report must replay identically");
    assert_eq!(h1, h2, "sched_trace_hash must replay identically");
    assert_eq!(r1, r2, "threaded report must replay identically");
}

proptest! {
    // `PROPTEST_CASES` takes precedence over this default in CI.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across scenarios, seeds, and crash schedules: the sim-hosted
    /// transport reproduces the threaded report byte-for-byte, and the
    /// trace hash is replay-stable.
    #[test]
    fn sim_transport_matches_threaded_for_any_seed(
        scenario_idx in 0usize..4,
        seed in 0u64..u64::MAX,
        crash_sel in 0u8..2,
    ) {
        let crash = crash_sel == 1;
        let (threaded_a, sim_a, hash_a) = run_both(scenario_idx, seed, crash);
        prop_assert_eq!(&threaded_a, &sim_a, "TransportReport diverged");
        let (_, sim_b, hash_b) = run_both(scenario_idx, seed, crash);
        prop_assert_eq!(sim_a, sim_b);
        prop_assert_eq!(hash_a, hash_b);
    }
}
