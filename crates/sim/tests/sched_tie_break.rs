//! The scheduler's tie-break hardening (satellite): dispatch order and
//! `sched_trace_hash` must be a pure function of the scheduled
//! `(time, key)` set — two runs inserting the *same* events in
//! *different* orders (including many events at identical virtual
//! times) dispatch identically and hash identically.

use proptest::prelude::*;
use softborg_sim::{Scheduler, SimTime};

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic Fisher–Yates driven by splitmix64.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut state = seed;
    for i in (1..out.len()).rev() {
        state = splitmix64(state);
        out.swap(i, (state % (i as u64 + 1)) as usize);
    }
    out
}

/// Inserts `events` in the given order, runs to empty, and returns the
/// full dispatch sequence plus the trace hash.
fn dispatch_all(events: &[(u64, u64, u32)]) -> (Vec<(u64, u64, u32)>, u64) {
    let mut s: Scheduler<u32> = Scheduler::new(u64::MAX);
    for &(at, key, payload) in events {
        s.schedule(SimTime(at), key, payload);
    }
    let mut order = Vec::new();
    while let Some((at, key, payload)) = s.pop() {
        order.push((at.0, key, payload));
    }
    (order, s.stats().trace_hash)
}

proptest! {
    /// Identical event sets inserted in different orders — with heavy
    /// same-instant collisions (times drawn from a tiny range) — produce
    /// identical dispatch order and identical trace hash.
    #[test]
    fn insertion_order_never_changes_dispatch_order(
        times in proptest::collection::vec(0u64..8, 2..64),
        shuffle_seed in 0u64..u64::MAX,
    ) {
        // Unique keys per event (the scheduler's caller contract); times
        // collide constantly, so the tie-break is doing all the work.
        let events: Vec<(u64, u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64, i as u32))
            .collect();
        let permuted = shuffled(&events, shuffle_seed);
        let (order_a, hash_a) = dispatch_all(&events);
        let (order_b, hash_b) = dispatch_all(&permuted);
        prop_assert_eq!(&order_a, &order_b, "dispatch order depends on insertion order");
        prop_assert_eq!(hash_a, hash_b, "trace hash depends on insertion order");
        // And the order actually is (time, key)-sorted.
        let mut sorted = order_a.clone();
        sorted.sort_by_key(|&(t, k, _)| (t, k));
        prop_assert_eq!(order_a, sorted);
    }

    /// The trace hash separates runs that genuinely differ: perturbing
    /// one event's time or key changes the hash.
    #[test]
    fn trace_hash_detects_divergent_schedules(
        times in proptest::collection::vec(0u64..1_000, 2..32),
        victim in 0usize..32,
    ) {
        let events: Vec<(u64, u64, u32)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i as u64, i as u32))
            .collect();
        let victim = victim % events.len();
        let mut perturbed = events.clone();
        perturbed[victim].0 += 1_000_000; // move far outside the time range
        let (_, hash_a) = dispatch_all(&events);
        let (_, hash_b) = dispatch_all(&perturbed);
        prop_assert_ne!(hash_a, hash_b, "a moved event must change the trace hash");
    }
}
