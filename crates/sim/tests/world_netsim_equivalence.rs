//! The [`World`] is a drop-in superset of the netsim [`Sim`]: hosting
//! the *same* [`NetNode`] impls under the same seed, link model, and
//! fault plan must reproduce every callback at the same virtual instant
//! with the same payloads, and end with identical stats. This is the
//! foundation the transport byte-identity result rests on.

use proptest::prelude::*;
use softborg_netsim::{
    Addr, Crash, Ctx, FaultPlan, LinkConfig, NetNode, Partition, Sim, SimConfig, SimStats,
};
use softborg_sim::{NetProc, World};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Observed {
    Message(u64, Vec<u8>),
    Crash,
    Restart(u64),
}

struct Probe {
    log: Rc<RefCell<Vec<Observed>>>,
}

impl NetNode for Probe {
    fn on_message(&mut self, _from: Addr, payload: Vec<u8>, ctx: &mut Ctx<'_>) {
        self.log
            .borrow_mut()
            .push(Observed::Message(ctx.now().0, payload));
    }
    fn on_crash(&mut self) {
        self.log.borrow_mut().push(Observed::Crash);
    }
    fn on_restart(&mut self, ctx: &mut Ctx<'_>) {
        self.log.borrow_mut().push(Observed::Restart(ctx.now().0));
    }
}

/// Sends one numbered message every `gap_us`; echoes keep the link
/// chatty in both directions so RNG draws interleave nontrivially.
struct Pinger {
    to: Addr,
    gap_us: u64,
    remaining: u32,
}

impl NetNode for Pinger {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.gap_us, 0);
    }
    fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
        ctx.send(self.to, self.remaining.to_le_bytes().to_vec());
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.set_timer(self.gap_us, 0);
        }
    }
}

fn config(seed: u64, loss: u32, dup: u32, reorder: u32, crash: Option<(u64, u64)>) -> SimConfig {
    SimConfig {
        seed,
        link: LinkConfig {
            base_latency_us: 700,
            jitter_us: 400,
            loss_per_mille: loss,
        },
        max_events: 200_000,
        faults: FaultPlan {
            dup_per_mille: dup,
            reorder_per_mille: reorder,
            reorder_window_us: if reorder > 0 { 15_000 } else { 0 },
            partitions: vec![Partition {
                a: Addr(0),
                b: Addr(1),
                from_us: 10_000,
                until_us: 18_000,
            }],
            crashes: crash
                .map(|(at, len)| {
                    vec![Crash {
                        node: Addr(0),
                        at_us: at,
                        restart_us: at + len,
                    }]
                })
                .unwrap_or_default(),
            disk: Vec::new(),
        },
    }
}

type Outcome = (Vec<Observed>, u64, SimStats, u64);

fn run_netsim(cfg: SimConfig) -> Outcome {
    let mut sim = Sim::new(cfg);
    let log = Rc::new(RefCell::new(Vec::new()));
    let probe = sim.add_node(Box::new(Probe { log: log.clone() }));
    sim.add_node(Box::new(Pinger {
        to: probe,
        gap_us: 900,
        remaining: 47,
    }));
    let processed = sim.run();
    let observed = log.borrow().clone();
    (observed, sim.now().0, sim.stats(), processed)
}

fn run_world(cfg: SimConfig) -> (Outcome, u64) {
    let fuel = cfg.max_events;
    let mut world = World::new(cfg, fuel);
    let log = Rc::new(RefCell::new(Vec::new()));
    let probe = world.add_proc(Box::new(NetProc::new(Box::new(Probe { log: log.clone() }))));
    world.add_proc(Box::new(NetProc::new(Box::new(Pinger {
        to: probe,
        gap_us: 900,
        remaining: 47,
    }))));
    let processed = world.run();
    let observed = log.borrow().clone();
    (
        (observed, world.now().0, world.net_stats(), processed),
        world.sched_stats().trace_hash,
    )
}

proptest! {
    /// Same seed + config: the world's callback log (payloads and
    /// virtual instants), final clock, stats, and processed-event count
    /// all equal the netsim simulator's, across loss, duplication,
    /// reordering, a partition window, and a crash/restart.
    #[test]
    fn world_replays_netsim_byte_for_byte(
        seed in 0u64..u64::MAX,
        loss in 0u32..300,
        dup in 0u32..300,
        reorder in 0u32..300,
        crash_at in 1_000u64..30_000,
        crash_len in 1_000u64..15_000,
    ) {
        let cfg = config(seed, loss, dup, reorder, Some((crash_at, crash_len)));
        let reference = run_netsim(cfg.clone());
        let (world, _) = run_world(cfg);
        prop_assert_eq!(reference, world);
    }

    /// Replay contract: two world runs from the same seed produce the
    /// same trace hash and the same observable outcome; a different
    /// seed (with jitter in play) produces a different trace hash.
    #[test]
    fn world_replays_reproduce_the_trace_hash(seed in 0u64..u64::MAX) {
        let cfg = config(seed, 100, 100, 100, Some((5_000, 3_000)));
        let (out_a, hash_a) = run_world(cfg.clone());
        let (out_b, hash_b) = run_world(cfg);
        prop_assert_eq!(out_a, out_b);
        prop_assert_eq!(hash_a, hash_b);
        let (_, other) = run_world(config(seed ^ 0x5DEECE66D, 100, 100, 100, Some((5_000, 3_000))));
        prop_assert_ne!(hash_a, other, "different seed, different dispatch path");
    }
}

#[test]
fn fault_free_world_matches_netsim_too() {
    let cfg = SimConfig {
        seed: 3,
        ..SimConfig::default()
    };
    let reference = run_netsim(cfg.clone());
    let (world, _) = run_world(cfg);
    assert_eq!(reference, world);
}

#[test]
fn world_timer_clamp_matches_netsim() {
    // A zero-delay timer must fire at +1µs in both hosts (netsim clamps
    // to ≥ 1µs; `host` documents that external hosts must too).
    struct Zero {
        fired_at: Rc<RefCell<Vec<u64>>>,
    }
    impl NetNode for Zero {
        fn on_start(&mut self, ctx: &mut Ctx<'_>) {
            ctx.set_timer(0, 0);
        }
        fn on_timer(&mut self, _tag: u64, ctx: &mut Ctx<'_>) {
            self.fired_at.borrow_mut().push(ctx.now().0);
        }
    }
    let run = |world: bool| {
        let fired = Rc::new(RefCell::new(Vec::new()));
        let node = Box::new(Zero {
            fired_at: fired.clone(),
        });
        if world {
            let mut w = World::new(SimConfig::default(), 1_000);
            w.add_proc(Box::new(NetProc::new(node)));
            w.run();
        } else {
            let mut s = Sim::new(SimConfig::default());
            s.add_node(node);
            s.run();
        }
        let at = fired.borrow().clone();
        at
    };
    assert_eq!(run(false), vec![1]);
    assert_eq!(run(true), vec![1]);
}
