//! The [`World`]: one deterministic event loop hosting network nodes,
//! bounded channels, and simulated disks under virtual time.
//!
//! A `World` is a superset of the netsim [`Sim`](softborg_netsim::Sim):
//! it replays the *same* link/fault model with the same RNG draw order,
//! the same crash pre-queueing, and the same `on_start` ordering, so a
//! fleet of [`NetNode`]s hosted here (via [`NetProc`]) behaves
//! byte-for-byte like the threaded path's simulator on a shared seed.
//! On top of that it adds the two blocking points real pipelines have
//! and networks don't: bounded channels (send blocks when full, receive
//! blocks when empty) and disks with asynchronous fsync. Every blocking
//! point is explicit — a proc that cannot make progress registers a
//! waiter and returns, and the world wakes it with a [`Wake`] event at
//! the exact virtual instant the condition flips.
//!
//! ## Blocking-point catalogue
//!
//! | point | request | wake |
//! |---|---|---|
//! | sleep | [`WorldCtx::set_timer`] | `on_timer(tag)` |
//! | channel send (full) | [`WorldCtx::chan_wait_writable`] | `on_wake(ChanWritable)` |
//! | channel recv (empty) | [`WorldCtx::chan_wait_readable`] | `on_wake(ChanReadable)` |
//! | disk fsync | [`WorldCtx::disk_fsync`] | `on_wake(FsyncDone)` |
//! | link delivery | [`WorldCtx::send`] | `on_message(from, bytes)` |
//!
//! Determinism: all scheduling keys come from one global monotonic
//! counter, so dispatch order — and therefore the
//! [`trace hash`](crate::SchedStats::trace_hash) — is a pure function of
//! the seed and the proc set.

use crate::sched::{SchedStats, Scheduler, SimClock};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use softborg_netsim::{host, Action, Addr, DiskCrashPoint, NetNode, SimConfig, SimStats, SimTime};
use softborg_obs::{FlightRecorder, Severity};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::Arc;

/// Handle on a bounded channel created with [`World::add_chan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChanId(pub u32);

/// Handle on a simulated disk created with [`World::add_disk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DiskId(pub u32);

/// Why a blocked proc was woken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// A channel the proc waited on has data to read.
    ChanReadable(ChanId),
    /// A channel the proc waited on has room to write.
    ChanWritable(ChanId),
    /// An fsync the proc requested has completed; the covered prefix is
    /// now durable.
    FsyncDone(DiskId),
}

/// Behaviour of one simulated process. A superset of
/// [`NetNode`]'s callbacks with [`Wake`] added for the channel/disk
/// blocking points; [`NetProc`] adapts any `NetNode` onto it.
#[allow(unused_variables)]
pub trait Proc {
    /// Called once when the world starts.
    fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {}
    /// A network message arrived.
    fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut WorldCtx<'_>) {}
    /// A timer armed with [`WorldCtx::set_timer`] fired.
    fn on_timer(&mut self, tag: u64, ctx: &mut WorldCtx<'_>) {}
    /// A blocking point the proc waited on resolved.
    fn on_wake(&mut self, wake: Wake, ctx: &mut WorldCtx<'_>) {}
    /// The proc crashed. Volatile state is gone; the world has already
    /// truncated this proc's disks to their synced prefixes.
    fn on_crash(&mut self) {}
    /// The proc restarted after a crash; re-arm timers and re-register
    /// waiters (pre-crash ones were discarded).
    fn on_restart(&mut self, ctx: &mut WorldCtx<'_>) {}
}

/// Adapts a [`NetNode`] onto [`Proc`], driving its callbacks through
/// [`softborg_netsim::host`] so the node code is bit-identical to what
/// the threaded path runs.
pub struct NetProc {
    node: Box<dyn NetNode>,
}

impl NetProc {
    /// Wraps `node` for hosting in a [`World`].
    pub fn new(node: Box<dyn NetNode>) -> Self {
        NetProc { node }
    }

    /// The wrapped node (for post-run inspection).
    pub fn into_inner(self) -> Box<dyn NetNode> {
        self.node
    }
}

impl fmt::Debug for NetProc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NetProc").finish_non_exhaustive()
    }
}

impl Proc for NetProc {
    fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
        let acts = host::start(self.node.as_mut(), ctx.now(), ctx.me());
        ctx.queue_actions(acts);
    }
    fn on_message(&mut self, from: Addr, payload: Vec<u8>, ctx: &mut WorldCtx<'_>) {
        let acts = host::message(self.node.as_mut(), ctx.now(), ctx.me(), from, payload);
        ctx.queue_actions(acts);
    }
    fn on_timer(&mut self, tag: u64, ctx: &mut WorldCtx<'_>) {
        let acts = host::timer(self.node.as_mut(), ctx.now(), ctx.me(), tag);
        ctx.queue_actions(acts);
    }
    fn on_crash(&mut self) {
        self.node.on_crash();
    }
    fn on_restart(&mut self, ctx: &mut WorldCtx<'_>) {
        let acts = host::restart(self.node.as_mut(), ctx.now(), ctx.me());
        ctx.queue_actions(acts);
    }
}

/// Channel/disk counters accumulated over a run (the network-level
/// counters live in [`SimStats`], the scheduler-level ones in
/// [`SchedStats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Messages accepted by [`WorldCtx::chan_try_send`].
    pub chan_sends: u64,
    /// Messages returned by [`WorldCtx::chan_try_recv`].
    pub chan_recvs: u64,
    /// Sends refused because the channel was full.
    pub chan_full: u64,
    /// [`Wake`] events dispatched to a live proc.
    pub wakes: u64,
    /// Completed fsyncs.
    pub fsyncs: u64,
    /// Bytes written to disks.
    pub disk_bytes_written: u64,
    /// Unsynced bytes destroyed by crashes.
    pub disk_bytes_lost: u64,
    /// Disk crash points applied ([`DiskCrashPoint`] WAL variants).
    pub disk_faults: u64,
    /// Disk crash points that target state this in-memory model does not
    /// have (snapshot-file variants); counted, not applied.
    pub disk_faults_ignored: u64,
}

#[derive(Debug)]
enum Event {
    Deliver {
        from: Addr,
        to: Addr,
        payload: Vec<u8>,
    },
    Timer {
        node: Addr,
        tag: u64,
    },
    NodeUp(Addr),
    NodeDown(Addr),
    Wake {
        node: Addr,
        wake: Wake,
    },
    FsyncDone {
        disk: DiskId,
    },
    DiskFault {
        disk: DiskId,
        point: DiskCrashPoint,
    },
}

#[derive(Debug)]
struct Chan {
    cap: usize,
    buf: VecDeque<Vec<u8>>,
    read_waiters: BTreeSet<u32>,
    write_waiters: BTreeSet<u32>,
}

#[derive(Debug)]
struct Disk {
    owner: Addr,
    bytes: Vec<u8>,
    synced: usize,
    fsync_latency_us: u64,
    /// Bytes covered by the in-flight fsync, if any.
    inflight: Option<usize>,
}

/// Everything except the proc table, so callbacks can hold `&mut Inner`
/// while their own box is temporarily out of the table.
struct Inner {
    config: SimConfig,
    rng: SmallRng,
    sched: Scheduler<Event>,
    seq: u64,
    alive: Vec<bool>,
    started: Vec<bool>,
    net: SimStats,
    io: IoStats,
    chans: Vec<Chan>,
    disks: Vec<Disk>,
    /// Virtual-time flight recorder (disabled until
    /// [`World::attach_recorder`]): crash/restart/disk events stamped at
    /// their exact virtual instants, for the divergence explainer.
    recorder: FlightRecorder,
}

impl Inner {
    fn push_event(&mut self, at: SimTime, event: Event) {
        let key = self.seq;
        self.seq += 1;
        self.sched.schedule(at, key, event);
    }

    /// One independent latency draw — netsim's `delivery_delay`, same
    /// RNG consumption.
    fn delivery_delay(&mut self) -> u64 {
        let link = self.config.link;
        let mut delay = link.base_latency_us;
        if link.jitter_us > 0 {
            delay += self.rng.gen_range(0..=link.jitter_us);
        }
        let reorder_pm = self.config.faults.reorder_per_mille;
        let window = self.config.faults.reorder_window_us;
        if reorder_pm > 0 && window > 0 && self.rng.gen_range(0..1000) < reorder_pm {
            delay += self.rng.gen_range(0..=window);
        }
        delay
    }

    /// netsim's `flush_actions`: identical branch structure, identical
    /// RNG draw order (loss, then duplication, then the duplicate's
    /// delay, then the original's delay).
    fn flush_actions(&mut self, me: Addr, actions: Vec<Action>) {
        let now = self.sched.now();
        for a in actions {
            match a {
                Action::Send { to, payload } => {
                    self.net.sent += 1;
                    if self.config.faults.partitioned(me, to, now) {
                        self.net.dropped += 1;
                        self.net.partition_dropped += 1;
                        continue;
                    }
                    let lost = self.config.link.loss_per_mille > 0
                        && self.rng.gen_range(0..1000) < self.config.link.loss_per_mille;
                    if lost {
                        self.net.dropped += 1;
                        continue;
                    }
                    let dup_pm = self.config.faults.dup_per_mille;
                    if dup_pm > 0 && self.rng.gen_range(0..1000) < dup_pm {
                        self.net.duplicated += 1;
                        let at = now.after(self.delivery_delay());
                        self.push_event(
                            at,
                            Event::Deliver {
                                from: me,
                                to,
                                payload: payload.clone(),
                            },
                        );
                    }
                    let at = now.after(self.delivery_delay());
                    self.push_event(
                        at,
                        Event::Deliver {
                            from: me,
                            to,
                            payload,
                        },
                    );
                }
                Action::Timer { delay_us, tag } => {
                    let at = now.after(delay_us.max(1));
                    self.push_event(at, Event::Timer { node: me, tag });
                }
            }
        }
    }

    /// Schedules wakes (at the current instant, later keys) for every
    /// waiter in `waiters`, in proc-id order, and clears the set.
    fn wake_all(&mut self, waiters: BTreeSet<u32>, wake: Wake) {
        let now = self.sched.now();
        for w in waiters {
            self.push_event(
                now,
                Event::Wake {
                    node: Addr(w),
                    wake,
                },
            );
        }
    }

    fn crash_disks_of(&mut self, node: Addr) -> u64 {
        let mut lost_total = 0u64;
        for d in &mut self.disks {
            if d.owner == node {
                let lost = d.bytes.len() - d.synced;
                self.io.disk_bytes_lost += lost as u64;
                lost_total += lost as u64;
                d.bytes.truncate(d.synced);
                d.inflight = None;
            }
        }
        lost_total
    }

    /// Drops waiter registrations of a crashed proc — a dead process
    /// holds no poll registrations; recovery re-registers.
    fn drop_waiters_of(&mut self, node: Addr) {
        for c in &mut self.chans {
            c.read_waiters.remove(&node.0);
            c.write_waiters.remove(&node.0);
        }
    }
}

/// The deterministic world. See the [module docs](self).
///
/// The lifetime `'w` bounds the procs, so drivers can host procs that
/// borrow external state (a [`Pod`](softborg_pod::Pod) slice) for the
/// duration of one run.
pub struct World<'w> {
    procs: Vec<Option<Box<dyn Proc + 'w>>>,
    inner: Inner,
}

impl fmt::Debug for World<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("World")
            .field("now", &self.inner.sched.now())
            .field("procs", &self.procs.len())
            .field("pending", &self.inner.sched.len())
            .field("net", &self.inner.net)
            .field("io", &self.inner.io)
            .finish()
    }
}

impl<'w> World<'w> {
    /// A world with netsim-compatible `config` and a dispatch budget of
    /// `fuel` events. Crashes scheduled in the config's fault plan are
    /// pre-queued immediately, exactly like
    /// [`Sim::new`](softborg_netsim::Sim::new).
    pub fn new(config: SimConfig, fuel: u64) -> Self {
        let mut world = World {
            procs: Vec::new(),
            inner: Inner {
                rng: SmallRng::seed_from_u64(config.seed),
                sched: Scheduler::new(fuel),
                seq: 0,
                alive: Vec::new(),
                started: Vec::new(),
                net: SimStats::default(),
                io: IoStats::default(),
                chans: Vec::new(),
                disks: Vec::new(),
                recorder: FlightRecorder::disabled(),
                config,
            },
        };
        for c in world.inner.config.faults.crashes.clone() {
            world
                .inner
                .push_event(SimTime(c.at_us), Event::NodeDown(c.node));
            world
                .inner
                .push_event(SimTime(c.restart_us), Event::NodeUp(c.node));
        }
        world
    }

    /// Adds a proc; its `on_start` runs when the world starts. Addresses
    /// are dense from `Addr(0)` in insertion order.
    pub fn add_proc(&mut self, proc_: Box<dyn Proc + 'w>) -> Addr {
        let addr = Addr(self.procs.len() as u32);
        self.procs.push(Some(proc_));
        self.inner.alive.push(true);
        self.inner.started.push(false);
        addr
    }

    /// Adds a bounded channel with capacity `cap` (≥ 1).
    pub fn add_chan(&mut self, cap: usize) -> ChanId {
        let id = ChanId(self.inner.chans.len() as u32);
        self.inner.chans.push(Chan {
            cap: cap.max(1),
            buf: VecDeque::new(),
            read_waiters: BTreeSet::new(),
            write_waiters: BTreeSet::new(),
        });
        id
    }

    /// Adds a disk owned by `owner` (crashing the owner truncates the
    /// disk to its synced prefix) with the given fsync completion
    /// latency.
    pub fn add_disk(&mut self, owner: Addr, fsync_latency_us: u64) -> DiskId {
        let id = DiskId(self.inner.disks.len() as u32);
        self.inner.disks.push(Disk {
            owner,
            bytes: Vec::new(),
            synced: 0,
            fsync_latency_us,
            inflight: None,
        });
        id
    }

    /// Schedules a crash window for `node` (down at `at`, back at
    /// `until`), like [`Sim::schedule_outage`](softborg_netsim::Sim::schedule_outage).
    pub fn schedule_outage(&mut self, node: Addr, at: SimTime, until: SimTime) {
        self.inner.push_event(at, Event::NodeDown(node));
        self.inner.push_event(until, Event::NodeUp(node));
    }

    /// Schedules a [`DiskCrashPoint`] against `disk` at an exact virtual
    /// instant. The WAL variants mutate the disk bytes; snapshot-file
    /// variants have no in-memory analogue and are counted in
    /// [`IoStats::disk_faults_ignored`].
    pub fn schedule_disk_fault(&mut self, at: SimTime, disk: DiskId, point: DiskCrashPoint) {
        self.inner.push_event(at, Event::DiskFault { disk, point });
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.sched.now()
    }

    /// A [`SimClock`] handle tracking this world's virtual time.
    pub fn clock(&self) -> SimClock {
        self.inner.sched.clock()
    }

    /// Adopts an externally created clock handle (see
    /// [`Scheduler::drive_clock`](crate::Scheduler::drive_clock)).
    pub fn drive_clock(&mut self, clock: SimClock) {
        self.inner.sched.drive_clock(clock);
    }

    /// Attaches a flight recorder driven by this world's virtual clock
    /// and returns a handle to it. From here on, crashes, restarts,
    /// fsync completions, and disk faults are recorded as structured
    /// events (`sim.node.<addr>` / `sim.disk.<d>` sources) stamped at
    /// their exact virtual instants. Because dispatch order is a pure
    /// function of the seed and proc set, the recorder's
    /// [`events_hash`](FlightRecorder::events_hash) is replay-stable —
    /// two runs with the same seed and fault plan produce identical
    /// streams, and a run that diverges pinpoints *where* via
    /// [`softborg_obs::explain_recorders`].
    pub fn attach_recorder(&mut self, capacity: usize) -> FlightRecorder {
        let recorder = FlightRecorder::new(Arc::new(self.clock()), capacity);
        self.set_recorder(recorder.clone());
        recorder
    }

    /// Adopts an externally created recorder for the world's
    /// infrastructure events (see [`attach_recorder`]
    /// (World::attach_recorder)) and retimes it onto this world's
    /// virtual clock, so the caller keeps their handle to the shared
    /// rings while events are stamped in virtual time.
    pub fn set_recorder(&mut self, recorder: FlightRecorder) {
        recorder.set_clock(Arc::new(self.clock()));
        self.inner.recorder = recorder;
    }

    /// Network counters (netsim-compatible).
    pub fn net_stats(&self) -> SimStats {
        self.inner.net
    }

    /// Channel/disk counters.
    pub fn io_stats(&self) -> IoStats {
        self.inner.io
    }

    /// Scheduler counters and the dispatch-trace hash.
    pub fn sched_stats(&self) -> SchedStats {
        self.inner.sched.stats()
    }

    /// `true` when the run stopped on fuel exhaustion rather than a
    /// drained event heap.
    pub fn fuel_exhausted(&self) -> bool {
        self.inner.sched.fuel_exhausted()
    }

    /// A disk's current contents (post-run inspection).
    pub fn disk_bytes(&self, disk: DiskId) -> &[u8] {
        &self.inner.disks[disk.0 as usize].bytes
    }

    /// A disk's durable prefix length.
    pub fn disk_synced(&self, disk: DiskId) -> usize {
        self.inner.disks[disk.0 as usize].synced
    }

    /// Takes a proc back out of the world (post-run inspection).
    ///
    /// # Panics
    ///
    /// Panics when `addr` is unknown or already taken.
    pub fn take_proc(&mut self, addr: Addr) -> Box<dyn Proc + 'w> {
        self.procs[addr.0 as usize].take().expect("proc present")
    }

    /// Runs until the event heap drains or fuel runs out. Returns the
    /// number of events dispatched by this call.
    pub fn run(&mut self) -> u64 {
        self.run_until(SimTime(u64::MAX))
    }

    /// Runs until `deadline` (exclusive), the heap drains, or fuel runs
    /// out. Returns the number of events dispatched by this call.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        self.start_pending();
        let mut processed = 0u64;
        loop {
            match self.inner.sched.peek_time() {
                Some(at) if at < deadline => {}
                _ => break,
            }
            let Some((_, _, event)) = self.inner.sched.pop() else {
                break; // fuel exhausted
            };
            processed += 1;
            self.dispatch(event);
        }
        processed
    }

    fn start_pending(&mut self) {
        for i in 0..self.procs.len() {
            if self.inner.started[i] || !self.inner.alive[i] {
                continue;
            }
            self.inner.started[i] = true;
            self.call(Addr(i as u32), |p, ctx| p.on_start(ctx));
        }
    }

    /// Runs one callback with the proc temporarily out of the table,
    /// then flushes its buffered network actions in netsim order.
    fn call(&mut self, addr: Addr, f: impl FnOnce(&mut (dyn Proc + 'w), &mut WorldCtx<'_>)) {
        let i = addr.0 as usize;
        let Some(mut proc_) = self.procs[i].take() else {
            return;
        };
        let mut ctx = WorldCtx {
            inner: &mut self.inner,
            me: addr,
            outbox: Vec::new(),
        };
        f(proc_.as_mut(), &mut ctx);
        let outbox = ctx.outbox;
        self.inner.flush_actions(addr, outbox);
        self.procs[i] = Some(proc_);
    }

    fn dispatch(&mut self, event: Event) {
        match event {
            Event::Deliver { from, to, payload } => {
                let ti = to.0 as usize;
                if ti >= self.procs.len() || !self.inner.alive[ti] {
                    self.inner.net.dropped += 1;
                    return;
                }
                self.inner.net.delivered += 1;
                self.inner.net.bytes_delivered += payload.len() as u64;
                self.call(to, |p, ctx| p.on_message(from, payload, ctx));
            }
            Event::Timer { node, tag } => {
                let ni = node.0 as usize;
                if ni >= self.procs.len() || !self.inner.alive[ni] {
                    return;
                }
                self.inner.net.timers += 1;
                self.call(node, |p, ctx| p.on_timer(tag, ctx));
            }
            Event::NodeDown(a) => {
                let i = a.0 as usize;
                if i < self.inner.alive.len() && self.inner.alive[i] {
                    self.inner.alive[i] = false;
                    self.inner.net.crashes += 1;
                    let lost = self.inner.crash_disks_of(a);
                    self.inner.drop_waiters_of(a);
                    if self.inner.recorder.is_enabled() {
                        self.inner.recorder.record(
                            &format!("sim.node.{}", a.0),
                            Severity::Warn,
                            "crash",
                            &[("disk_bytes_lost", lost)],
                            format_args!("node {} crashed, {lost} unsynced byte(s) lost", a.0),
                        );
                    }
                    if let Some(p) = self.procs[i].as_mut() {
                        p.on_crash();
                    }
                }
            }
            Event::NodeUp(a) => {
                let i = a.0 as usize;
                if i < self.inner.alive.len() && !self.inner.alive[i] {
                    self.inner.alive[i] = true;
                    if self.inner.recorder.is_enabled() {
                        self.inner.recorder.info(
                            &format!("sim.node.{}", a.0),
                            "restart",
                            &[],
                            format_args!("node {} restarted", a.0),
                        );
                    }
                    self.call(a, |p, ctx| p.on_restart(ctx));
                }
            }
            Event::Wake { node, wake } => {
                let ni = node.0 as usize;
                if ni >= self.procs.len() || !self.inner.alive[ni] {
                    return;
                }
                self.inner.io.wakes += 1;
                self.call(node, |p, ctx| p.on_wake(wake, ctx));
            }
            Event::FsyncDone { disk } => {
                let di = disk.0 as usize;
                let Some(covered) = self.inner.disks[di].inflight.take() else {
                    return; // voided by a crash in between
                };
                let d = &mut self.inner.disks[di];
                d.synced = covered.min(d.bytes.len());
                self.inner.io.fsyncs += 1;
                if self.inner.recorder.is_enabled() {
                    let synced = self.inner.disks[di].synced as u64;
                    self.inner.recorder.record(
                        &format!("sim.disk.{}", disk.0),
                        Severity::Debug,
                        "fsync",
                        &[("synced_bytes", synced)],
                        format_args!("disk {} fsync complete, {synced} byte(s) durable", disk.0),
                    );
                }
                let owner = self.inner.disks[di].owner;
                let oi = owner.0 as usize;
                if oi < self.procs.len() && self.inner.alive[oi] {
                    self.inner.io.wakes += 1;
                    self.call(owner, |p, ctx| p.on_wake(Wake::FsyncDone(disk), ctx));
                }
            }
            Event::DiskFault { disk, point } => {
                let d = &mut self.inner.disks[disk.0 as usize];
                let (kind, amount) = match point {
                    DiskCrashPoint::TruncateWalTail { drop_bytes } => {
                        let n = (drop_bytes as usize).min(d.bytes.len());
                        d.bytes.truncate(d.bytes.len() - n);
                        d.synced = d.synced.min(d.bytes.len());
                        if let Some(c) = d.inflight {
                            d.inflight = Some(c.min(d.bytes.len()));
                        }
                        self.inner.io.disk_faults += 1;
                        ("disk_fault_truncate", n as u64)
                    }
                    DiskCrashPoint::FlipWalBit { back_offset } => {
                        if !d.bytes.is_empty() {
                            let last = d.bytes.len() - 1;
                            let idx = last - (back_offset as usize).min(last);
                            d.bytes[idx] ^= 1;
                        }
                        self.inner.io.disk_faults += 1;
                        ("disk_fault_flip", back_offset)
                    }
                    _ => {
                        self.inner.io.disk_faults_ignored += 1;
                        ("disk_fault_ignored", 0)
                    }
                };
                if self.inner.recorder.is_enabled() {
                    self.inner.recorder.record(
                        &format!("sim.disk.{}", disk.0),
                        Severity::Warn,
                        kind,
                        &[("amount", amount)],
                        format_args!("disk {} fault: {kind} ({amount})", disk.0),
                    );
                }
            }
        }
    }
}

/// Proc-side API surface during a callback. Network sends/timers are
/// buffered and flushed after the callback (netsim semantics: the
/// link's RNG draws happen in action order, after the node returns);
/// channel and disk operations take effect immediately.
pub struct WorldCtx<'a> {
    inner: &'a mut Inner,
    me: Addr,
    outbox: Vec<Action>,
}

impl fmt::Debug for WorldCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorldCtx")
            .field("me", &self.me)
            .field("now", &self.inner.sched.now())
            .finish()
    }
}

impl WorldCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.sched.now()
    }

    /// This proc's address.
    pub fn me(&self) -> Addr {
        self.me
    }

    /// Sends `payload` to `to` over the (faulty) link.
    pub fn send(&mut self, to: Addr, payload: Vec<u8>) {
        self.outbox.push(Action::Send { to, payload });
    }

    /// Arms a one-shot timer firing after `delay_us` (clamped to ≥ 1µs)
    /// with `tag` — the explicit *sleep* blocking point.
    pub fn set_timer(&mut self, delay_us: u64, tag: u64) {
        self.outbox.push(Action::Timer { delay_us, tag });
    }

    /// Queues raw netsim [`Action`]s (from a
    /// [`host`] callback) preserving their order.
    pub fn queue_actions(&mut self, actions: Vec<Action>) {
        self.outbox.extend(actions);
    }

    /// Attempts a non-blocking bounded-channel send. On a full channel
    /// the message comes back in `Err` — register with
    /// [`chan_wait_writable`](Self::chan_wait_writable) and retry on
    /// [`Wake::ChanWritable`].
    ///
    /// # Errors
    ///
    /// Returns `Err(msg)` when the channel is at capacity.
    pub fn chan_try_send(&mut self, chan: ChanId, msg: Vec<u8>) -> Result<(), Vec<u8>> {
        let c = &mut self.inner.chans[chan.0 as usize];
        if c.buf.len() >= c.cap {
            self.inner.io.chan_full += 1;
            return Err(msg);
        }
        c.buf.push_back(msg);
        self.inner.io.chan_sends += 1;
        let waiters = std::mem::take(&mut self.inner.chans[chan.0 as usize].read_waiters);
        self.inner.wake_all(waiters, Wake::ChanReadable(chan));
        Ok(())
    }

    /// Attempts a non-blocking bounded-channel receive.
    pub fn chan_try_recv(&mut self, chan: ChanId) -> Option<Vec<u8>> {
        let c = &mut self.inner.chans[chan.0 as usize];
        let msg = c.buf.pop_front()?;
        self.inner.io.chan_recvs += 1;
        let waiters = std::mem::take(&mut self.inner.chans[chan.0 as usize].write_waiters);
        self.inner.wake_all(waiters, Wake::ChanWritable(chan));
        Some(msg)
    }

    /// Queued messages in a channel.
    pub fn chan_len(&self, chan: ChanId) -> usize {
        self.inner.chans[chan.0 as usize].buf.len()
    }

    /// Registers this proc for a [`Wake::ChanReadable`] — the explicit
    /// *blocked receive*. Level-triggered: if the channel already has a
    /// message, the wake fires at the current instant (no lost-wakeup
    /// window between a producer's send and this registration).
    pub fn chan_wait_readable(&mut self, chan: ChanId) {
        if !self.inner.chans[chan.0 as usize].buf.is_empty() {
            let now = self.inner.sched.now();
            self.inner.push_event(
                now,
                Event::Wake {
                    node: self.me,
                    wake: Wake::ChanReadable(chan),
                },
            );
            return;
        }
        self.inner.chans[chan.0 as usize]
            .read_waiters
            .insert(self.me.0);
    }

    /// Registers this proc for a [`Wake::ChanWritable`] — the explicit
    /// *blocked send*. Level-triggered like
    /// [`chan_wait_readable`](Self::chan_wait_readable).
    pub fn chan_wait_writable(&mut self, chan: ChanId) {
        let c = &self.inner.chans[chan.0 as usize];
        if c.buf.len() < c.cap {
            let now = self.inner.sched.now();
            self.inner.push_event(
                now,
                Event::Wake {
                    node: self.me,
                    wake: Wake::ChanWritable(chan),
                },
            );
            return;
        }
        self.inner.chans[chan.0 as usize]
            .write_waiters
            .insert(self.me.0);
    }

    /// Appends bytes to a disk (volatile until fsynced).
    pub fn disk_write(&mut self, disk: DiskId, bytes: &[u8]) {
        let d = &mut self.inner.disks[disk.0 as usize];
        d.bytes.extend_from_slice(bytes);
        self.inner.io.disk_bytes_written += bytes.len() as u64;
    }

    /// Requests an fsync covering everything written so far; the owning
    /// proc gets a [`Wake::FsyncDone`] when the disk's latency elapses —
    /// the explicit *fsync* blocking point. A request while one is in
    /// flight extends its coverage to the current length without
    /// changing its completion time.
    pub fn disk_fsync(&mut self, disk: DiskId) {
        let di = disk.0 as usize;
        let len = self.inner.disks[di].bytes.len();
        if self.inner.disks[di].inflight.is_some() {
            self.inner.disks[di].inflight = Some(len);
            return;
        }
        self.inner.disks[di].inflight = Some(len);
        let at = self
            .inner
            .sched
            .now()
            .after(self.inner.disks[di].fsync_latency_us.max(1));
        self.inner.push_event(at, Event::FsyncDone { disk });
    }

    /// A disk's current length (synced + volatile).
    pub fn disk_len(&self, disk: DiskId) -> usize {
        self.inner.disks[disk.0 as usize].bytes.len()
    }

    /// A disk's durable prefix length.
    pub fn disk_synced(&self, disk: DiskId) -> usize {
        self.inner.disks[disk.0 as usize].synced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::{Cell, RefCell};
    use std::rc::Rc;

    struct Pipe {
        chan: ChanId,
        to_send: u32,
        sent: u32,
    }
    impl Pipe {
        fn pump(&mut self, ctx: &mut WorldCtx<'_>) {
            while self.sent < self.to_send {
                if ctx.chan_try_send(self.chan, vec![self.sent as u8]).is_err() {
                    ctx.chan_wait_writable(self.chan);
                    return;
                }
                self.sent += 1;
            }
        }
    }
    impl Proc for Pipe {
        fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
            self.pump(ctx);
        }
        fn on_wake(&mut self, _w: Wake, ctx: &mut WorldCtx<'_>) {
            self.pump(ctx);
        }
    }

    struct Drain {
        chan: ChanId,
        got: Rc<RefCell<Vec<u8>>>,
    }
    impl Proc for Drain {
        fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
            ctx.chan_wait_readable(self.chan);
        }
        fn on_wake(&mut self, _w: Wake, ctx: &mut WorldCtx<'_>) {
            while let Some(m) = ctx.chan_try_recv(self.chan) {
                self.got.borrow_mut().push(m[0]);
            }
            ctx.chan_wait_readable(self.chan);
        }
    }

    #[test]
    fn bounded_channel_blocks_and_wakes_in_fifo_order() {
        let mut w = World::new(SimConfig::default(), u64::MAX);
        let chan = w.add_chan(3);
        let got = Rc::new(RefCell::new(Vec::new()));
        w.add_proc(Box::new(Pipe {
            chan,
            to_send: 10,
            sent: 0,
        }));
        w.add_proc(Box::new(Drain {
            chan,
            got: got.clone(),
        }));
        w.run();
        assert_eq!(*got.borrow(), (0..10).collect::<Vec<u8>>());
        let io = w.io_stats();
        assert_eq!(io.chan_sends, 10);
        assert_eq!(io.chan_recvs, 10);
        assert!(io.chan_full >= 1, "capacity 3 must block a burst of 10");
    }

    struct Journaler {
        disk: DiskId,
        synced_seen: Rc<Cell<usize>>,
    }
    impl Proc for Journaler {
        fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
            ctx.disk_write(self.disk, b"hello ");
            ctx.disk_fsync(self.disk);
            ctx.disk_write(self.disk, b"world"); // after the sync point
        }
        fn on_wake(&mut self, w: Wake, ctx: &mut WorldCtx<'_>) {
            assert_eq!(w, Wake::FsyncDone(self.disk));
            self.synced_seen.set(ctx.disk_synced(self.disk));
        }
    }

    #[test]
    fn fsync_covers_only_bytes_written_before_the_request() {
        let mut w = World::new(SimConfig::default(), u64::MAX);
        let synced_seen = Rc::new(Cell::new(0));
        let owner = Addr(0);
        let disk = w.add_disk(owner, 500);
        w.add_proc(Box::new(Journaler {
            disk,
            synced_seen: synced_seen.clone(),
        }));
        w.run();
        assert_eq!(synced_seen.get(), 6, "only the pre-fsync prefix");
        assert_eq!(w.disk_bytes(disk), b"hello world");
        assert_eq!(w.io_stats().fsyncs, 1);
    }

    struct CrashyWriter {
        disk: DiskId,
    }
    impl Proc for CrashyWriter {
        fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
            ctx.disk_write(self.disk, b"durable");
            ctx.disk_fsync(self.disk);
            ctx.set_timer(10_000, 1);
        }
        fn on_timer(&mut self, _t: u64, ctx: &mut WorldCtx<'_>) {
            ctx.disk_write(self.disk, b" volatile");
        }
    }

    #[test]
    fn crash_truncates_disks_to_the_synced_prefix() {
        let mut w = World::new(SimConfig::default(), u64::MAX);
        let disk = w.add_disk(Addr(0), 100);
        w.add_proc(Box::new(CrashyWriter { disk }));
        w.schedule_outage(Addr(0), SimTime(50_000), SimTime(60_000));
        w.run();
        assert_eq!(w.disk_bytes(disk), b"durable");
        assert_eq!(w.io_stats().disk_bytes_lost, 9);
        assert_eq!(w.net_stats().crashes, 1);
    }

    #[test]
    fn disk_faults_fire_at_exact_instants() {
        struct W {
            disk: DiskId,
        }
        impl Proc for W {
            fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
                ctx.disk_write(self.disk, &[0u8; 8]);
                ctx.disk_fsync(self.disk);
            }
        }
        let mut w = World::new(SimConfig::default(), u64::MAX);
        let disk = w.add_disk(Addr(0), 10);
        w.add_proc(Box::new(W { disk }));
        w.schedule_disk_fault(
            SimTime(1_000),
            disk,
            DiskCrashPoint::TruncateWalTail { drop_bytes: 3 },
        );
        w.schedule_disk_fault(
            SimTime(2_000),
            disk,
            DiskCrashPoint::FlipWalBit { back_offset: 0 },
        );
        w.run();
        assert_eq!(w.disk_bytes(disk).len(), 5);
        assert_eq!(w.disk_bytes(disk)[4], 1, "lowest bit of the tail flipped");
        assert_eq!(w.io_stats().disk_faults, 2);
    }

    #[test]
    fn fuel_exhaustion_stops_a_runaway_world() {
        struct PingPong {
            peer: Option<Addr>,
        }
        impl Proc for PingPong {
            fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
                if let Some(p) = self.peer {
                    ctx.send(p, vec![0]);
                }
            }
            fn on_message(&mut self, from: Addr, p: Vec<u8>, ctx: &mut WorldCtx<'_>) {
                ctx.send(from, p);
            }
        }
        let mut w = World::new(SimConfig::default(), 500);
        let a = w.add_proc(Box::new(PingPong { peer: None }));
        w.add_proc(Box::new(PingPong { peer: Some(a) }));
        let processed = w.run();
        assert_eq!(processed, 500);
        assert!(w.fuel_exhausted());
        let again = w.run();
        assert_eq!(again, 0, "an exhausted world refuses to dispatch");
    }
}
