//! `Platform::round` / `MultiPlatform::round` under the virtual-time
//! scheduler.
//!
//! [`sim_round`] drives one platform round entirely inside a [`World`]:
//! each pod is a cooperative proc executing on a virtual-time tick,
//! batching traces into wire frames, and pushing them through a
//! *bounded* channel to a collector that journals them to a simulated
//! disk with periodic fsync — exercising every blocking point in the
//! catalogue (sleep, blocked send, blocked receive, fsync). The frames
//! land in the pre-partitioned `(session, seq)` layout the threaded
//! paths use, and [`Platform::round_driven`] ingests them in sorted
//! order — so the resulting hive state is **byte-identical** to the
//! serial and pipelined paths on shared seeds (pods carry their own RNG
//! and get no mid-round feedback; the equivalence is asserted in this
//! crate's tests). [`sim_round_multi`] is the multi-program
//! counterpart.

use crate::sched::{SchedStats, SimClock};
use crate::world::{ChanId, DiskId, IoStats, Proc, Wake, World, WorldCtx};
use softborg::multi::{MultiDrivenExecution, MultiPlatform, MultiRoundReport};
use softborg::platform::{DrivenExecution, Platform, RoundReport};
use softborg_netsim::{Addr, SimConfig};
use softborg_obs::FlightRecorder;
use softborg_pod::Pod;
use softborg_trace::wire;
use softborg_trace::ExecutionTrace;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Retimes the platform's flight recorder onto the round's virtual
/// clock (events recorded during the simulated round carry virtual
/// instants); returns the previous clock so the caller can restore it
/// once the round ends. `None` when the recorder is disabled.
fn retime(recorder: &FlightRecorder, clock: &SimClock) -> Option<Arc<dyn softborg_obs::Clock>> {
    let prev = recorder.clock();
    recorder.set_clock(Arc::new(clock.clone()));
    prev
}

/// Knobs for one simulated round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRoundConfig {
    /// Scheduler seed (feeds the world's `SimConfig`; the round itself
    /// draws no link randomness, so this only matters if a driver adds
    /// faulty links on top).
    pub seed: u64,
    /// Virtual gap between consecutive executions on one pod (µs).
    pub exec_interval_us: u64,
    /// Per-pod start stagger (pod `i` begins at `1 + i * spread` µs).
    pub start_spread_us: u64,
    /// Capacity of the bounded pod→collector frame channel.
    pub chan_capacity: usize,
    /// The collector fsyncs its journal disk every this many frames.
    pub fsync_interval_frames: u64,
    /// Fsync completion latency (µs).
    pub fsync_latency_us: u64,
    /// Dispatch budget for the round's world.
    pub fuel: u64,
}

impl Default for SimRoundConfig {
    fn default() -> Self {
        SimRoundConfig {
            seed: 0,
            exec_interval_us: 1_000,
            start_spread_us: 137,
            chan_capacity: 8,
            fsync_interval_frames: 4,
            fsync_latency_us: 500,
            fuel: 50_000_000,
        }
    }
}

/// What the world did while driving one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimRoundStats {
    /// Scheduler counters and the dispatch-trace hash.
    pub sched: SchedStats,
    /// Channel/disk counters.
    pub io: IoStats,
}

const TAG_EXEC: u64 = 1;

/// Frame-channel message layout: `[session LE u64][seq LE u64][frame]`.
fn chan_msg(session: u64, seq: u64, frame: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(16 + frame.len());
    msg.extend_from_slice(&session.to_le_bytes());
    msg.extend_from_slice(&seq.to_le_bytes());
    msg.extend_from_slice(frame);
    msg
}

fn parse_chan_msg(msg: Vec<u8>) -> (u64, u64, Vec<u8>) {
    let session = u64::from_le_bytes(msg[0..8].try_into().expect("header"));
    let seq = u64::from_le_bytes(msg[8..16].try_into().expect("header"));
    (session, seq, msg[16..].to_vec())
}

/// One pod as a cooperative proc: a timer tick per execution, frames
/// flushed through the bounded channel, blocking on
/// [`Wake::ChanWritable`] when the collector falls behind.
struct PodProc<'a, 'p> {
    pod: &'a mut Pod<'p>,
    /// Header session: pod index (single-platform) or lane (multi).
    session: u64,
    /// Global stagger index for the start offset.
    stagger: u64,
    execs_left: u32,
    batch: u64,
    next_seq: u64,
    buf: Vec<ExecutionTrace>,
    chan: ChanId,
    interval_us: u64,
    spread_us: u64,
    /// A frame the full channel refused, waiting for room.
    blocked: Option<Vec<u8>>,
    /// Shared `(executions, failures, directed)`.
    counters: Rc<RefCell<(u64, u64, u64)>>,
}

impl PodProc<'_, '_> {
    /// Runs one execution; returns the encoded channel message when a
    /// frame boundary was reached.
    fn exec_once(&mut self) -> Option<Vec<u8>> {
        let run = self.pod.run_once();
        {
            let mut c = self.counters.borrow_mut();
            c.0 += 1;
            if run.result.outcome.is_failure() {
                c.1 += 1;
            }
            if run.directed {
                c.2 += 1;
            }
        }
        self.buf.push(run.trace);
        self.execs_left -= 1;
        if self.buf.len() as u64 == self.batch || (self.execs_left == 0 && !self.buf.is_empty()) {
            let frame = wire::encode_batch(&self.buf);
            self.buf.clear();
            let msg = chan_msg(self.session, self.next_seq, &frame);
            self.next_seq += 1;
            return Some(msg);
        }
        None
    }

    /// Ships `msg` or parks on the write-blocking point.
    fn ship(&mut self, msg: Vec<u8>, ctx: &mut WorldCtx<'_>) -> bool {
        match ctx.chan_try_send(self.chan, msg) {
            Ok(()) => true,
            Err(refused) => {
                self.blocked = Some(refused);
                ctx.chan_wait_writable(self.chan);
                false
            }
        }
    }

    fn arm_next(&self, ctx: &mut WorldCtx<'_>) {
        if self.execs_left > 0 {
            ctx.set_timer(self.interval_us, TAG_EXEC);
        }
    }
}

impl Proc for PodProc<'_, '_> {
    fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
        if self.execs_left > 0 {
            ctx.set_timer(1 + self.stagger * self.spread_us, TAG_EXEC);
        }
    }

    fn on_timer(&mut self, _tag: u64, ctx: &mut WorldCtx<'_>) {
        if let Some(msg) = self.exec_once() {
            if !self.ship(msg, ctx) {
                return; // resume from on_wake
            }
        }
        self.arm_next(ctx);
    }

    fn on_wake(&mut self, _wake: Wake, ctx: &mut WorldCtx<'_>) {
        let msg = self.blocked.take().expect("woken without a parked frame");
        if self.ship(msg, ctx) {
            self.arm_next(ctx);
        }
    }
}

/// Shared log of collected `(session, seq, frame)` triples.
type FrameLog = Rc<RefCell<Vec<(u64, u64, Vec<u8>)>>>;

/// Drains the frame channel, logs every frame, and journals the raw
/// messages to a simulated disk with periodic fsync.
struct Collector {
    chan: ChanId,
    disk: DiskId,
    frames: FrameLog,
    since_sync: u64,
    fsync_every: u64,
}

impl Proc for Collector {
    fn on_start(&mut self, ctx: &mut WorldCtx<'_>) {
        ctx.chan_wait_readable(self.chan);
    }

    fn on_wake(&mut self, wake: Wake, ctx: &mut WorldCtx<'_>) {
        if wake == Wake::FsyncDone(self.disk) {
            return; // durability acknowledged; nothing to resume
        }
        while let Some(msg) = ctx.chan_try_recv(self.chan) {
            ctx.disk_write(self.disk, &msg);
            self.since_sync += 1;
            if self.since_sync >= self.fsync_every {
                ctx.disk_fsync(self.disk);
                self.since_sync = 0;
            }
            self.frames.borrow_mut().push(parse_chan_msg(msg));
        }
        ctx.chan_wait_readable(self.chan);
    }
}

/// One platform round under the scheduler. Byte-identical hive state to
/// [`Platform::round`] on shared seeds; see the [module docs](self).
///
/// # Panics
///
/// Panics when the world exhausts its fuel mid-round or loses frames —
/// both driver bugs, not input conditions.
pub fn sim_round(
    platform: &mut Platform<'_>,
    execs_per_pod: u32,
    cfg: &SimRoundConfig,
) -> (RoundReport, SimRoundStats) {
    let mut out: Option<SimRoundStats> = None;
    let clock = SimClock::new();
    let recorder = platform.config().obs.recorder.clone();
    let prev_clock = retime(&recorder, &clock);
    let report = platform.round_driven(|pods, batch| {
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let counters = Rc::new(RefCell::new((0u64, 0u64, 0u64)));
        let n_pods = pods.len();
        let mut world = World::new(
            SimConfig {
                seed: cfg.seed,
                ..SimConfig::default()
            },
            cfg.fuel,
        );
        world.drive_clock(clock.clone());
        let chan = world.add_chan(cfg.chan_capacity);
        let collector_addr = Addr(n_pods as u32);
        let disk = world.add_disk(collector_addr, cfg.fsync_latency_us);
        let frames = Rc::new(RefCell::new(Vec::new()));
        for (i, pod) in pods.iter_mut().enumerate() {
            world.add_proc(Box::new(PodProc {
                pod,
                session: i as u64,
                stagger: i as u64,
                execs_left: execs_per_pod,
                batch,
                next_seq: i as u64 * frames_per_pod,
                buf: Vec::new(),
                chan,
                interval_us: cfg.exec_interval_us,
                spread_us: cfg.start_spread_us,
                blocked: None,
                counters: counters.clone(),
            }));
        }
        world.add_proc(Box::new(Collector {
            chan,
            disk,
            frames: frames.clone(),
            since_sync: 0,
            fsync_every: cfg.fsync_interval_frames.max(1),
        }));
        world.run();
        assert!(
            !world.fuel_exhausted(),
            "sim_round ran out of fuel ({}) mid-round",
            cfg.fuel
        );
        let collected = frames.take();
        let expected = n_pods as u64 * frames_per_pod;
        assert_eq!(
            collected.len() as u64,
            expected,
            "collector lost frames (got {}, expected {expected})",
            collected.len()
        );
        out = Some(SimRoundStats {
            sched: world.sched_stats(),
            io: world.io_stats(),
        });
        let (executions, failures, directed) = *counters.borrow();
        DrivenExecution {
            executions,
            failures,
            directed,
            frames: collected,
        }
    });
    if let Some(prev) = prev_clock {
        recorder.set_clock(prev);
    }
    (report, out.expect("driver always runs"))
}

/// One multi-program round under the scheduler, the
/// [`MultiPlatform::round_driven`] counterpart of [`sim_round`]. All
/// lanes' pods share one world, one channel, and one collector; frames
/// carry `(lane, seq)` headers in the pre-partitioned per-lane layout.
///
/// # Panics
///
/// Panics when the world exhausts its fuel mid-round or loses frames.
pub fn sim_round_multi(
    platform: &mut MultiPlatform<'_>,
    execs_per_pod: u32,
    cfg: &SimRoundConfig,
) -> (MultiRoundReport, SimRoundStats) {
    let mut out: Option<SimRoundStats> = None;
    let clock = SimClock::new();
    let recorder = platform.config().obs.recorder.clone();
    let prev_clock = retime(&recorder, &clock);
    let report = platform.round_driven(|tasks, batch| {
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let n_lanes = tasks.len();
        let lane_counters: Vec<Rc<RefCell<(u64, u64, u64)>>> = (0..n_lanes)
            .map(|_| Rc::new(RefCell::new((0u64, 0u64, 0u64))))
            .collect();
        let mut world = World::new(
            SimConfig {
                seed: cfg.seed,
                ..SimConfig::default()
            },
            cfg.fuel,
        );
        world.drive_clock(clock.clone());
        let chan = world.add_chan(cfg.chan_capacity);
        let frames = Rc::new(RefCell::new(Vec::new()));
        let mut stagger = 0u64;
        let mut total_pods = 0u64;
        for task in tasks {
            let (lane, pods) = (task.lane, task.pods);
            for (j, pod) in pods.iter_mut().enumerate() {
                world.add_proc(Box::new(PodProc {
                    pod,
                    session: lane,
                    stagger,
                    execs_left: execs_per_pod,
                    batch,
                    next_seq: j as u64 * frames_per_pod,
                    buf: Vec::new(),
                    chan,
                    interval_us: cfg.exec_interval_us,
                    spread_us: cfg.start_spread_us,
                    blocked: None,
                    counters: lane_counters[lane as usize].clone(),
                }));
                stagger += 1;
                total_pods += 1;
            }
        }
        let collector_addr = Addr(stagger as u32);
        let disk = world.add_disk(collector_addr, cfg.fsync_latency_us);
        world.add_proc(Box::new(Collector {
            chan,
            disk,
            frames: frames.clone(),
            since_sync: 0,
            fsync_every: cfg.fsync_interval_frames.max(1),
        }));
        world.run();
        assert!(
            !world.fuel_exhausted(),
            "sim_round_multi ran out of fuel ({}) mid-round",
            cfg.fuel
        );
        let collected = frames.take();
        let expected = total_pods * frames_per_pod;
        assert_eq!(
            collected.len() as u64,
            expected,
            "collector lost frames (got {}, expected {expected})",
            collected.len()
        );
        out = Some(SimRoundStats {
            sched: world.sched_stats(),
            io: world.io_stats(),
        });
        MultiDrivenExecution {
            per_lane: lane_counters.iter().map(|c| *c.borrow()).collect(),
            frames: collected,
        }
    });
    if let Some(prev) = prev_clock {
        recorder.set_clock(prev);
    }
    (report, out.expect("driver always runs"))
}
