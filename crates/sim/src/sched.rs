//! The deterministic event scheduler: a heap of `(virtual_time, key)`
//! events, a fuel bound, and a running hash of the dispatch sequence.
//!
//! Determinism rests on one contract: **dispatch order is a pure
//! function of the scheduled `(time, key)` pairs**, independent of the
//! order events were inserted. The heap orders by `(time, key)`; callers
//! must supply keys that are unique per virtual instant (the
//! [`World`](crate::World) uses a global monotonic counter, reproducing
//! the netsim simulator's insertion-sequence tie-break exactly). Two
//! runs that schedule the same `(time, key, event)` set — in any order —
//! dispatch identically and produce the same [`SchedStats::trace_hash`].
//!
//! Fuel bounds runaway simulations deterministically: every dispatch
//! burns one unit, and an exhausted scheduler refuses to pop — the cut
//! happens at an exact event index, so a fuel-capped run is replayable
//! too.

use softborg_ingest::Clock;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

pub use softborg_netsim::SimTime;

/// FNV-1a offset basis (matches `softborg_trace::wire::fnv1a`).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Counters and the schedule-trace hash for one scheduler run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SchedStats {
    /// Events dispatched (== fuel burned).
    pub events_dispatched: u64,
    /// Deepest the event heap ever got.
    pub peak_heap_depth: usize,
    /// Fuel remaining when the run ended.
    pub fuel_remaining: u64,
    /// `true` when the run stopped on fuel exhaustion rather than an
    /// empty heap.
    pub fuel_exhausted: bool,
    /// FNV-1a over the dispatch sequence's `(time, key)` pairs (16
    /// little-endian bytes per event). Two runs replayed identically iff
    /// their hashes match (modulo hash collisions); the replay harnesses
    /// additionally compare final state.
    pub trace_hash: u64,
    /// Virtual time when the run ended (µs).
    pub virtual_end_us: u64,
}

/// A shareable read handle on a scheduler's virtual clock. Implements
/// [`softborg_ingest::Clock`], so pipelines running under the simulator
/// report *virtual* latency/throughput gauges instead of the
/// microseconds of wall time the whole simulation actually takes.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_us: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at virtual time zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Relaxed)
    }

    pub(crate) fn set_us(&self, us: u64) {
        self.now_us.store(us, Ordering::Relaxed);
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        self.now_us().saturating_mul(1_000)
    }
}

/// The deterministic event heap. See the [module docs](self).
pub struct Scheduler<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    slots: Vec<Option<E>>,
    free: Vec<u32>,
    fuel: u64,
    fuel_used: u64,
    exhausted: bool,
    trace_hash: u64,
    dispatched: u64,
    peak: usize,
    clock: SimClock,
}

impl<E> fmt::Debug for Scheduler<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scheduler")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .field("dispatched", &self.dispatched)
            .field("fuel_used", &self.fuel_used)
            .finish()
    }
}

impl<E> Scheduler<E> {
    /// A scheduler with `fuel` dispatch budget.
    pub fn new(fuel: u64) -> Self {
        Scheduler {
            now: SimTime(0),
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            fuel,
            fuel_used: 0,
            exhausted: false,
            trace_hash: FNV_OFFSET,
            dispatched: 0,
            peak: 0,
            clock: SimClock::new(),
        }
    }

    /// Current virtual time (the timestamp of the last dispatched
    /// event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// A clock handle tracking this scheduler's virtual time.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Adopts an externally created clock handle: it snaps to the
    /// current virtual time and subsequent dispatches update it. Lets a
    /// caller wire a [`SimClock`] into configuration (e.g. an
    /// `IngestConfig`) before the scheduler that drives it exists.
    pub fn drive_clock(&mut self, clock: SimClock) {
        clock.set_us(self.now.0);
        self.clock = clock;
    }

    /// Pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// `true` when a pop was refused because the fuel budget ran out.
    pub fn fuel_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Schedules `event` at `(at, key)`.
    ///
    /// `key` is the tie-break among same-instant events and MUST be
    /// unique per instant (a global monotonic counter satisfies this
    /// globally). Scheduling in the past is a caller bug.
    ///
    /// # Panics
    ///
    /// Panics when `at` is before [`now`](Self::now).
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        assert!(
            at >= self.now,
            "scheduled into the past: {at} < {}",
            self.now
        );
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(event);
                i
            }
            None => {
                let i = self.slots.len() as u32;
                self.slots.push(Some(event));
                i
            }
        };
        self.heap.push(Reverse((at, key, idx)));
        self.peak = self.peak.max(self.heap.len());
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse((at, _, _))| *at)
    }

    /// Dispatches the next event: advances virtual time, burns one unit
    /// of fuel, and folds `(time, key)` into the trace hash. Returns
    /// `None` when the heap is empty or the fuel budget is spent (check
    /// [`fuel_exhausted`](Self::fuel_exhausted) to tell them apart).
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        if self.fuel_used >= self.fuel {
            if !self.heap.is_empty() {
                self.exhausted = true;
            }
            return None;
        }
        let Reverse((at, key, idx)) = self.heap.pop()?;
        self.now = at;
        self.clock.set_us(at.0);
        self.fuel_used += 1;
        self.dispatched += 1;
        self.trace_hash = fnv1a_step(self.trace_hash, &at.0.to_le_bytes());
        self.trace_hash = fnv1a_step(self.trace_hash, &key.to_le_bytes());
        let event = self.slots[idx as usize]
            .take()
            .expect("event consumed once");
        self.free.push(idx);
        Some((at, key, event))
    }

    /// Run statistics so far.
    pub fn stats(&self) -> SchedStats {
        SchedStats {
            events_dispatched: self.dispatched,
            peak_heap_depth: self.peak,
            fuel_remaining: self.fuel - self.fuel_used,
            fuel_exhausted: self.exhausted,
            trace_hash: self.trace_hash,
            virtual_end_us: self.now.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_is_time_then_key_ordered() {
        let mut s: Scheduler<&str> = Scheduler::new(u64::MAX);
        s.schedule(SimTime(20), 0, "c");
        s.schedule(SimTime(10), 5, "b");
        s.schedule(SimTime(10), 1, "a");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(s.now(), SimTime(20));
        assert!(!s.fuel_exhausted());
    }

    #[test]
    fn fuel_cuts_at_an_exact_event() {
        let mut s: Scheduler<u32> = Scheduler::new(2);
        for i in 0..5 {
            s.schedule(SimTime(i), i, i as u32);
        }
        assert_eq!(s.pop().map(|(_, _, e)| e), Some(0));
        assert_eq!(s.pop().map(|(_, _, e)| e), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.fuel_exhausted());
        assert_eq!(s.stats().events_dispatched, 2);
        assert_eq!(s.stats().fuel_remaining, 0);
    }

    #[test]
    fn trace_hash_ignores_insertion_order() {
        let run = |perm: &[usize]| {
            let evs = [(SimTime(5), 1u64), (SimTime(5), 2), (SimTime(9), 0)];
            let mut s: Scheduler<()> = Scheduler::new(u64::MAX);
            for &i in perm {
                let (at, key) = evs[i];
                s.schedule(at, key, ());
            }
            while s.pop().is_some() {}
            s.stats().trace_hash
        };
        assert_eq!(run(&[0, 1, 2]), run(&[2, 1, 0]));
        assert_eq!(run(&[1, 0, 2]), run(&[2, 0, 1]));
    }

    #[test]
    fn clock_tracks_virtual_time_in_ns() {
        let mut s: Scheduler<()> = Scheduler::new(u64::MAX);
        let clock = s.clock();
        s.schedule(SimTime(1_500), 0, ());
        assert_eq!(clock.now_ns(), 0);
        s.pop();
        assert_eq!(clock.now_ns(), 1_500_000);
    }

    #[test]
    #[should_panic(expected = "scheduled into the past")]
    fn scheduling_into_the_past_panics() {
        let mut s: Scheduler<()> = Scheduler::new(u64::MAX);
        s.schedule(SimTime(10), 0, ());
        s.pop();
        s.schedule(SimTime(5), 1, ());
    }
}
