//! The transport session loop under the virtual-time scheduler.
//!
//! [`run_reliable_ingest_sim`] runs the *same* `PodClient`/`HiveServer`
//! code and the same orchestration as
//! [`softborg_hive::run_reliable_ingest`], swapping only the event loop:
//! a [`World`] hosts the nodes instead of the netsim
//! [`Sim`](softborg_netsim::Sim). Because the world replays the
//! simulator's RNG draw order and dispatch order exactly, the whole
//! [`TransportReport`] — journal bytes included — is byte-identical to
//! the threaded path on a shared seed (asserted in this crate's tests),
//! and the run additionally yields [`SchedStats`] with the
//! dispatch-trace hash for replay verification.

use crate::sched::{SchedStats, SimClock};
use crate::world::{NetProc, World};
use softborg_hive::transport::NetHost;
use softborg_hive::{run_reliable_ingest_hosted, Hive, TransportConfig, TransportReport};
use softborg_ingest::{IngestConfig, IngestStats};
use softborg_netsim::{Addr, FaultPlanError, NetNode, SimConfig, SimStats};
use std::sync::{Arc, Mutex};

/// A [`World`] exposed as a transport [`NetHost`]: every added
/// [`NetNode`] is wrapped in a [`NetProc`], and the run's scheduler
/// statistics are published to a sink when the event loop finishes (the
/// host is consumed inside the producer closure, so the stats must
/// escape by side channel).
#[derive(Debug)]
pub struct WorldHost {
    world: World<'static>,
    sink: Arc<Mutex<Option<SchedStats>>>,
}

impl WorldHost {
    /// A host over a fresh [`World`] publishing final [`SchedStats`]
    /// into `sink`.
    pub fn new(config: SimConfig, fuel: u64, sink: Arc<Mutex<Option<SchedStats>>>) -> Self {
        WorldHost {
            world: World::new(config, fuel),
            sink,
        }
    }

    /// The underlying world (to attach clocks before running).
    pub fn world_mut(&mut self) -> &mut World<'static> {
        &mut self.world
    }
}

impl NetHost for WorldHost {
    fn add_node(&mut self, node: Box<dyn NetNode>) -> Addr {
        self.world.add_proc(Box::new(NetProc::new(node)))
    }

    fn run(&mut self) -> u64 {
        let n = self.world.run();
        *self.sink.lock().expect("sched sink poisoned") = Some(self.world.sched_stats());
        n
    }

    fn stats(&self) -> SimStats {
        self.world.net_stats()
    }
}

/// [`softborg_hive::run_reliable_ingest_resumed`] under the
/// virtual-time scheduler (pass an empty `prior_journal` for a fresh
/// campaign). The ingest pipeline's gauges are driven by the world's
/// [`SimClock`], so latency/throughput read in virtual time.
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when the fault plan fails validation
/// against the node count.
///
/// # Panics
///
/// Panics when the host's scheduler statistics were never published
/// (the producer closure did not run — a pipeline bug, not a caller
/// error).
pub fn run_reliable_ingest_sim(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
    prior_journal: &[u8],
) -> Result<(TransportReport, IngestStats, SchedStats), FaultPlanError> {
    let clock = SimClock::new();
    let mut ingest_cfg = ingest_cfg.clone();
    ingest_cfg.clock = Arc::new(clock.clone());
    // Retime the caller's flight recorders (if any) onto the run's
    // virtual clock: transport/ingest events recorded during the
    // simulated run carry virtual instants, matching the threaded
    // path's events_hash (the hash never folds timestamps). The
    // previous clocks are restored once the run completes.
    let prev_transport_clock = cfg.obs.recorder.clock();
    let prev_ingest_clock = ingest_cfg.obs.recorder.clock();
    cfg.obs.recorder.set_clock(Arc::new(clock.clone()));
    ingest_cfg.obs.recorder.set_clock(Arc::new(clock.clone()));
    let sink: Arc<Mutex<Option<SchedStats>>> = Arc::new(Mutex::new(None));
    let builder_sink = Arc::clone(&sink);
    let (report, stats) = run_reliable_ingest_hosted(
        hive,
        pods,
        &ingest_cfg,
        cfg,
        prior_journal,
        move |c: &TransportConfig| {
            let mut host = WorldHost::new(
                SimConfig {
                    seed: c.seed,
                    link: c.link,
                    max_events: c.max_events,
                    faults: c.faults.clone(),
                },
                c.max_events,
                builder_sink,
            );
            host.world_mut().drive_clock(clock);
            host
        },
    )?;
    let sched = sink
        .lock()
        .expect("sched sink poisoned")
        .take()
        .expect("transport host never ran");
    if let Some(prev) = prev_transport_clock {
        cfg.obs.recorder.set_clock(prev);
    }
    if let Some(prev) = prev_ingest_clock {
        ingest_cfg.obs.recorder.set_clock(prev);
    }
    Ok((report, stats, sched))
}

/// A *prefix probe*: [`run_reliable_ingest_sim`] with the event fuel cut
/// to `max_events`, returning only the scheduler statistics. Because the
/// dispatch-trace hash folds events in dispatch order, a run truncated
/// at `k` events yields the hash of the full run's first `k` dispatches
/// — so two runs can be bisected to their first divergent dispatch by
/// binary-searching the smallest `k` where their prefix hashes differ
/// (`softborg-search` builds its divergence bisection on exactly this).
///
/// # Errors
///
/// Returns a [`FaultPlanError`] when the fault plan fails validation
/// against the node count.
pub fn run_reliable_ingest_prefix(
    hive: &mut Hive<'_>,
    pods: Vec<Vec<(u8, Vec<u8>)>>,
    ingest_cfg: &IngestConfig,
    cfg: &TransportConfig,
    prior_journal: &[u8],
    max_events: u64,
) -> Result<SchedStats, FaultPlanError> {
    let mut cfg = cfg.clone();
    cfg.max_events = max_events;
    let (_report, _stats, sched) =
        run_reliable_ingest_sim(hive, pods, ingest_cfg, &cfg, prior_journal)?;
    Ok(sched)
}
