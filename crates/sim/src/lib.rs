//! # softborg-sim — the virtual-time deterministic fleet simulator
//!
//! The paper's pitch is a *million-user day*: a whole fleet of pods
//! executing, failing, and recycling information through the hive. A
//! threaded test can only sample that day; this crate compresses it.
//! Everything runs on one thread under a discrete-event [`Scheduler`]
//! with **virtual time**: a diurnal day of fleet traffic is just events
//! on a heap, so CI can simulate ≥100k pods' worth of arrivals, churn,
//! partitions, and crash sweeps in seconds of wall time — and replay the
//! run bit-for-bit from a seed.
//!
//! Three layers:
//!
//! - [`Scheduler`] / [`SimClock`] / [`SchedStats`] — the event heap
//!   keyed by `(virtual_time, tie_break_key)`, fuel bounding, and the
//!   `trace_hash` over the dispatch sequence. Dispatch order is a pure
//!   function of the scheduled set, independent of insertion order.
//! - [`World`] — the cooperative runtime on top: network procs with the
//!   netsim link/fault model (byte-compatible with
//!   [`softborg_netsim::Sim`] on shared seeds), plus the blocking
//!   points networks don't have — bounded channels and disks with
//!   asynchronous fsync. [`NetProc`] hosts unmodified
//!   [`NetNode`](softborg_netsim::NetNode) impls.
//! - The product loops: [`run_reliable_ingest_sim`] (the transport
//!   session protocol) and [`sim_round`] / [`sim_round_multi`]
//!   (platform rounds) run the *same* production code under the
//!   scheduler and are asserted byte-identical to the threaded paths.
//!
//! ## Replay contract
//!
//! A run is identified by its configuration and seed. Re-running with
//! the same inputs must reproduce (a) the same final state, byte for
//! byte, and (b) the same [`SchedStats::trace_hash`] — the FNV-1a hash
//! of the `(time, key)` dispatch sequence. The hash is the cheap
//! first-line check: state equality says *where you ended up*, the
//! trace hash says *you took the same path*.

#![warn(missing_docs)]

pub mod platform;
pub mod sched;
pub mod transport;
pub mod world;

pub use platform::{sim_round, sim_round_multi, SimRoundConfig, SimRoundStats};
pub use sched::{SchedStats, Scheduler, SimClock, SimTime};
pub use transport::{run_reliable_ingest_prefix, run_reliable_ingest_sim, WorldHost};
pub use world::{ChanId, DiskId, IoStats, NetProc, Proc, Wake, World, WorldCtx};
