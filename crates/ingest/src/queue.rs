//! A bounded MPMC queue with an explicit backpressure policy.
//!
//! The ingest pipeline's stages are connected by these queues. Capacity
//! is a hard bound: when a queue is full, [`BackpressurePolicy::Block`]
//! parks the producer (lossless, propagates pressure upstream) while
//! [`BackpressurePolicy::DropOldest`] displaces the oldest queued item
//! (lossy, favors freshness — the displaced item is handed back to the
//! producer so the drop can be accounted for).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// What a producer does when the queue is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackpressurePolicy {
    /// Block the producer until a consumer makes room. No data loss;
    /// pressure propagates to the source.
    Block,
    /// Displace the oldest queued item to admit the new one. The
    /// producer never blocks; the displaced item is returned so the
    /// caller can count (and, for sequenced pipelines, record) the drop.
    DropOldest,
}

/// Result of a [`BoundedQueue::push`].
#[derive(Debug)]
pub enum PushOutcome<T> {
    /// The item was enqueued.
    Accepted,
    /// The item was enqueued after displacing the returned oldest item
    /// (only under [`BackpressurePolicy::DropOldest`]).
    Displaced(T),
    /// The queue was closed; the item is handed back untouched.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    high_water: usize,
}

/// The bounded queue. `T: Send` makes it usable across threads.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    policy: BackpressurePolicy,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize, policy: BackpressurePolicy) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
                high_water: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            policy,
        }
    }

    /// Pushes one item, honoring the backpressure policy.
    pub fn push(&self, item: T) -> PushOutcome<T> {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        loop {
            if g.closed {
                return PushOutcome::Closed(item);
            }
            if g.items.len() < self.capacity {
                g.items.push_back(item);
                g.high_water = g.high_water.max(g.items.len());
                drop(g);
                self.not_empty.notify_one();
                return PushOutcome::Accepted;
            }
            match self.policy {
                BackpressurePolicy::Block => {
                    g = self.not_full.wait(g).expect("queue lock poisoned");
                }
                BackpressurePolicy::DropOldest => {
                    let old = g.items.pop_front().expect("full queue is non-empty");
                    g.items.push_back(item);
                    g.high_water = g.high_water.max(g.items.len());
                    drop(g);
                    self.not_empty.notify_one();
                    return PushOutcome::Displaced(old);
                }
            }
        }
    }

    /// Pops the oldest item, blocking while the queue is open and empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        loop {
            if let Some(x) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(x);
            }
            if g.closed {
                return None;
            }
            g = self.not_empty.wait(g).expect("queue lock poisoned");
        }
    }

    /// Closes the queue: producers get [`PushOutcome::Closed`], consumers
    /// drain what remains and then see `None`. Idempotent.
    pub fn close(&self) {
        let mut g = self.inner.lock().expect("queue lock poisoned");
        g.closed = true;
        drop(g);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").items.len()
    }

    /// `true` when no items are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deepest the queue has ever been (a backpressure gauge).
    pub fn high_water(&self) -> usize {
        self.inner.lock().expect("queue lock poisoned").high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let q = BoundedQueue::new(4, BackpressurePolicy::Block);
        for i in 0..4 {
            assert!(matches!(q.push(i), PushOutcome::Accepted));
        }
        assert_eq!(q.high_water(), 4);
        q.close();
        assert_eq!(
            (0..5).map(|_| q.pop()).collect::<Vec<_>>(),
            vec![Some(0), Some(1), Some(2), Some(3), None]
        );
    }

    #[test]
    fn drop_oldest_displaces_in_order() {
        let q = BoundedQueue::new(2, BackpressurePolicy::DropOldest);
        assert!(matches!(q.push(1), PushOutcome::Accepted));
        assert!(matches!(q.push(2), PushOutcome::Accepted));
        match q.push(3) {
            PushOutcome::Displaced(old) => assert_eq!(old, 1),
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
    }

    #[test]
    fn push_after_close_returns_item() {
        let q = BoundedQueue::new(2, BackpressurePolicy::Block);
        q.close();
        match q.push(9) {
            PushOutcome::Closed(x) => assert_eq!(x, 9),
            other => panic!("expected closed, got {other:?}"),
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_push_wakes_on_pop() {
        let q = Arc::new(BoundedQueue::new(1, BackpressurePolicy::Block));
        assert!(matches!(q.push(0), PushOutcome::Accepted));
        let q2 = q.clone();
        let producer = std::thread::spawn(move || matches!(q2.push(1), PushOutcome::Accepted));
        // The producer is (or will be) parked on the full queue; popping
        // must release it.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().expect("producer"));
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn blocking_pop_wakes_on_close() {
        let q = Arc::new(BoundedQueue::<u32>::new(1, BackpressurePolicy::Block));
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        q.close();
        assert_eq!(consumer.join().expect("consumer"), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        // Capacity 0 would deadlock Block and make DropOldest displace
        // every item; the constructor clamps to 1 instead.
        let q = BoundedQueue::new(0, BackpressurePolicy::DropOldest);
        assert!(matches!(q.push(1), PushOutcome::Accepted));
        match q.push(2) {
            PushOutcome::Displaced(old) => assert_eq!(old, 1),
            other => panic!("expected displacement at capacity 1, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn drop_oldest_accounts_every_item_under_concurrent_producers() {
        // N producers race into a tiny DropOldest queue. Conservation:
        // every pushed item is either consumed or returned as displaced —
        // exactly once — no matter how pushes interleave.
        const PRODUCERS: u64 = 4;
        const PER_PRODUCER: u64 = 500;
        let q = Arc::new(BoundedQueue::new(2, BackpressurePolicy::DropOldest));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut displaced = Vec::new();
                    for i in 0..PER_PRODUCER {
                        match q.push(p * PER_PRODUCER + i) {
                            PushOutcome::Accepted => {}
                            PushOutcome::Displaced(old) => displaced.push(old),
                            PushOutcome::Closed(_) => panic!("queue closed early"),
                        }
                    }
                    displaced
                })
            })
            .collect();
        let mut seen: Vec<u64> = Vec::new();
        for h in handles {
            seen.extend(h.join().expect("producer"));
        }
        q.close();
        while let Some(x) = q.pop() {
            seen.push(x);
        }
        seen.sort_unstable();
        let expected: Vec<u64> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(seen, expected, "an item was lost or double-counted");
    }

    #[test]
    fn close_releases_producers_blocked_on_a_full_queue() {
        // Shutdown-while-blocked: producers parked in Block-policy push
        // must wake on close and get their items handed back, not hang.
        const PRODUCERS: usize = 3;
        let q = Arc::new(BoundedQueue::new(1, BackpressurePolicy::Block));
        assert!(matches!(q.push(99), PushOutcome::Accepted));
        let handles: Vec<_> = (0..PRODUCERS)
            .map(|i| {
                let q = q.clone();
                std::thread::spawn(move || q.push(i))
            })
            .collect();
        // Let the producers reach the condvar wait before closing. Not
        // required for correctness — close must wake them either way.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        let mut returned: Vec<usize> = handles
            .into_iter()
            .map(|h| match h.join().expect("producer") {
                PushOutcome::Closed(x) => x,
                other => panic!("expected Closed after shutdown, got {other:?}"),
            })
            .collect();
        returned.sort_unstable();
        assert_eq!(returned, (0..PRODUCERS).collect::<Vec<_>>());
        // The pre-close item is still drainable.
        assert_eq!(q.pop(), Some(99));
        assert_eq!(q.pop(), None);
    }
}
