//! The reconstruction memo cache: a fixed-capacity ring with
//! second-chance (clock) eviction.
//!
//! Workers recycle decode+reconstruction results keyed on the exact
//! encoded trace bytes. The original cache simply stopped inserting at
//! capacity, so a long-running worker's cache froze on whatever traces
//! arrived first — exactly wrong for a population whose hot paths drift
//! over time. This ring keeps admitting new entries and evicts the first
//! slot the clock hand finds whose reference bit is clear: recently-hit
//! entries get a second chance, cold ones rotate out. One `usize` per
//! slot and O(1) amortized per operation — a deliberate approximation of
//! LRU without the linked-list bookkeeping.

use softborg_trace::wire;
use std::collections::HashMap;
use std::sync::Mutex;

struct Slot<V> {
    key: Vec<u8>,
    value: V,
    /// Reference bit: set on hit, cleared as the clock hand sweeps by.
    referenced: bool,
}

/// A byte-keyed memo cache with clock (second-chance) eviction.
pub struct MemoCache<V> {
    capacity: usize,
    index: HashMap<Vec<u8>, usize>,
    slots: Vec<Slot<V>>,
    hand: usize,
    evictions: u64,
}

impl<V: Clone> MemoCache<V> {
    /// Creates a cache holding at most `capacity` entries. Zero
    /// capacity disables the cache (every `get` misses, `insert` is a
    /// no-op).
    pub fn new(capacity: usize) -> Self {
        MemoCache {
            capacity,
            index: HashMap::with_capacity(capacity.min(1 << 16)),
            slots: Vec::with_capacity(capacity.min(1 << 16)),
            hand: 0,
            evictions: 0,
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks `key` up, marking the entry recently used on a hit.
    pub fn get(&mut self, key: &[u8]) -> Option<V> {
        let &slot = self.index.get(key)?;
        let s = &mut self.slots[slot];
        s.referenced = true;
        Some(s.value.clone())
    }

    /// Inserts `key → value`. At capacity, the clock hand sweeps until
    /// it finds a slot whose reference bit is clear — clearing bits as
    /// it passes — and evicts it. Inserting an existing key refreshes
    /// its value and reference bit.
    pub fn insert(&mut self, key: Vec<u8>, value: V) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&slot) = self.index.get(&key) {
            let s = &mut self.slots[slot];
            s.value = value;
            s.referenced = true;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot {
                key,
                value,
                referenced: false,
            });
            return;
        }
        // Second-chance sweep. Bounded: after one full lap every bit is
        // clear, so the hand stops within 2·capacity steps.
        loop {
            let s = &mut self.slots[self.hand];
            if s.referenced {
                s.referenced = false;
                self.hand = (self.hand + 1) % self.capacity;
                continue;
            }
            let victim = self.hand;
            self.index.remove(&s.key);
            self.index.insert(key.clone(), victim);
            self.slots[victim] = Slot {
                key,
                value,
                referenced: false,
            };
            self.evictions += 1;
            self.hand = (victim + 1) % self.capacity;
            return;
        }
    }
}

/// A memo cache shared across a whole worker pool: the keyspace is
/// striped over independently-locked [`MemoCache`] stripes (stripe =
/// FNV-1a of the key, so placement is deterministic), turning the
/// per-worker shared-nothing memo into pool-wide recycling. A trace
/// reconstructed once by *any* worker is a hit for *every* worker —
/// which is what lifts hit rates at high worker counts, where the
/// per-worker caches each pay their own cold miss for the same popular
/// payload.
///
/// The workload is read-mostly (population ingest re-sees the same
/// payloads constantly), and a striped mutex is only contended when two
/// workers touch the same stripe at the same instant; with `stripes` a
/// few times the worker count, that is rare.
pub struct SharedMemoCache<V> {
    stripes: Vec<Mutex<MemoCache<V>>>,
}

impl<V: Clone> SharedMemoCache<V> {
    /// Creates a shared cache of `capacity` total entries split evenly
    /// over `stripes` locked stripes (both floored at 1 internally; zero
    /// `capacity` disables the cache exactly like [`MemoCache::new`]).
    pub fn new(capacity: usize, stripes: usize) -> Self {
        let stripes = stripes.max(1);
        let per_stripe = capacity / stripes;
        // Don't silently round a small-but-nonzero capacity down to a
        // disabled cache.
        let per_stripe = if capacity > 0 { per_stripe.max(1) } else { 0 };
        SharedMemoCache {
            stripes: (0..stripes)
                .map(|_| Mutex::new(MemoCache::new(per_stripe)))
                .collect(),
        }
    }

    fn stripe(&self, key: &[u8]) -> &Mutex<MemoCache<V>> {
        let h = wire::fnv1a(key) as usize;
        &self.stripes[h % self.stripes.len()]
    }

    /// Looks `key` up in its stripe, marking it recently used on a hit.
    pub fn get(&self, key: &[u8]) -> Option<V> {
        self.stripe(key).lock().expect("memo stripe").get(key)
    }

    /// Inserts `key → value` into its stripe (second-chance eviction at
    /// stripe capacity).
    pub fn insert(&self, key: Vec<u8>, value: V) {
        let stripe = self.stripe(&key);
        stripe.lock().expect("memo stripe").insert(key, value);
    }

    /// Total evictions across all stripes.
    pub fn evictions(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe").evictions())
            .sum()
    }

    /// Total entries cached across all stripes.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().expect("memo stripe").len())
            .sum()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A worker's view of whichever memo scope its run uses: a private
/// [`MemoCache`] or a borrowed pool-wide [`SharedMemoCache`]. Lets the
/// decode loops stay scope-agnostic.
pub enum WorkerMemo<'a, V> {
    /// Shared-nothing per-worker cache.
    Local(MemoCache<V>),
    /// Striped cache shared across the pool.
    Shared(&'a SharedMemoCache<V>),
}

impl<V: Clone> WorkerMemo<'_, V> {
    /// Looks `key` up in the underlying cache.
    pub fn get(&mut self, key: &[u8]) -> Option<V> {
        match self {
            WorkerMemo::Local(c) => c.get(key),
            WorkerMemo::Shared(c) => c.get(key),
        }
    }

    /// Inserts `key → value` into the underlying cache.
    pub fn insert(&mut self, key: Vec<u8>, value: V) {
        match self {
            WorkerMemo::Local(c) => c.insert(key, value),
            WorkerMemo::Shared(c) => c.insert(key, value),
        }
    }

    /// Evictions attributable to *this worker's* view: the private
    /// cache's count, or 0 for a shared cache (counted once pool-wide
    /// by the run, not per worker).
    pub fn local_evictions(&self) -> u64 {
        match self {
            WorkerMemo::Local(c) => c.evictions(),
            WorkerMemo::Shared(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u8) -> Vec<u8> {
        vec![b; 4]
    }

    #[test]
    fn hit_and_miss() {
        let mut c = MemoCache::new(4);
        assert_eq!(c.get(&k(1)), None);
        c.insert(k(1), 10);
        c.insert(k(2), 20);
        assert_eq!(c.get(&k(1)), Some(10));
        assert_eq!(c.get(&k(2)), Some(20));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn zero_capacity_disables_without_panicking() {
        let mut c = MemoCache::new(0);
        c.insert(k(1), 1);
        assert_eq!(c.get(&k(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn at_capacity_new_entries_still_admit_and_evict() {
        let mut c = MemoCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3); // evicts one of the cold entries
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.get(&k(3)), Some(3), "the newest entry must be cached");
    }

    #[test]
    fn recently_hit_entries_survive_the_sweep() {
        let mut c = MemoCache::new(3);
        c.insert(k(1), 1);
        c.insert(k(2), 2);
        c.insert(k(3), 3);
        // Keep 1 hot; 2 and 3 are cold.
        assert_eq!(c.get(&k(1)), Some(1));
        c.insert(k(4), 4); // hand passes 1 (second chance), evicts 2
        assert_eq!(c.get(&k(1)), Some(1), "hot entry evicted");
        assert_eq!(c.get(&k(2)), None, "cold entry should have rotated out");
        assert_eq!(c.get(&k(4)), Some(4));
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn reinserting_a_key_refreshes_in_place() {
        let mut c = MemoCache::new(2);
        c.insert(k(1), 1);
        c.insert(k(1), 100);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&k(1)), Some(100));
        assert_eq!(c.evictions(), 0);
    }

    #[test]
    fn shared_cache_is_visible_across_threads() {
        // Plenty of per-stripe headroom: stripe placement is hash-skewed,
        // so a tight capacity could evict within a single hot stripe.
        let c = std::sync::Arc::new(SharedMemoCache::new(256, 4));
        std::thread::scope(|s| {
            let writer = c.clone();
            s.spawn(move || {
                for b in 0u8..32 {
                    writer.insert(k(b), u32::from(b));
                }
            })
            .join()
            .unwrap();
        });
        // Every insert from the other thread is a hit here.
        for b in 0u8..32 {
            assert_eq!(c.get(&k(b)), Some(u32::from(b)), "miss for {b}");
        }
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn shared_cache_bounds_capacity_per_stripe() {
        let c = SharedMemoCache::<u32>::new(8, 4);
        for b in 0u8..=255 {
            c.insert(vec![b; 3], u32::from(b));
        }
        assert!(c.len() <= 8, "capacity exceeded: {}", c.len());
        assert!(c.evictions() > 0);
    }

    #[test]
    fn shared_cache_zero_capacity_disables() {
        let c = SharedMemoCache::<u32>::new(0, 4);
        c.insert(k(1), 1);
        assert_eq!(c.get(&k(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn shared_cache_small_capacity_still_caches() {
        let c = SharedMemoCache::<u32>::new(2, 16);
        c.insert(k(1), 1);
        assert_eq!(c.get(&k(1)), Some(1));
    }

    #[test]
    fn churn_stays_bounded_and_consistent() {
        let mut c = MemoCache::new(8);
        for round in 0u8..32 {
            for b in 0u8..16 {
                c.insert(vec![round.wrapping_mul(17) ^ b; 3], (b as u32) + 1);
            }
            assert!(c.len() <= 8);
        }
        assert!(c.evictions() > 0);
        // Every index entry must point at a slot holding its key.
        for b in 0u8..=255 {
            if let Some(v) = c.get(&[b; 3]) {
                assert!(v >= 1);
            }
        }
    }
}
