//! Injectable time source — re-exported from `softborg-obs`, where the
//! [`Clock`] abstraction now lives so the whole observability layer
//! (metrics spans, flight-recorder timestamps) shares one notion of
//! time with the pipeline gauges. Kept as a module so existing
//! `softborg_ingest::{Clock, ManualClock, MonotonicClock}` paths keep
//! working.

pub use softborg_obs::clock::{Clock, ManualClock, MonotonicClock};
