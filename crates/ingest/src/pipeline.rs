//! The staged ingest pipeline: producers → bounded frame queue → decode +
//! reconstruct worker pool → single ordered merger.
//!
//! ```text
//! producers ──submit_at(seq, frame)──▶ [frame queue] ──▶ worker 0 ─┐
//!   (pods, network receivers, …)           │            worker 1 ─┼─▶ [merge queue] ─▶ merger ─▶ sink
//!                                          └──▶ …       worker N ─┘     (reorders        (owns the
//!                                                                        by seq)          tree)
//! ```
//!
//! Three properties the shape buys:
//!
//! * **Determinism.** Every frame carries a sequence number; the merger
//!   releases frames to the sink strictly in sequence order, so the sink
//!   observes exactly the serial ingest order no matter how threads
//!   interleave. Dropped and corrupt frames consume their slot.
//! * **Backpressure.** Both queues are bounded ([`BoundedQueue`]);
//!   [`BackpressurePolicy::Block`] propagates pressure to producers,
//!   [`BackpressurePolicy::DropOldest`] sheds the oldest queued frame and
//!   counts it.
//! * **Recycling.** Workers memoize decode+reconstruction results keyed
//!   on the exact encoded trace bytes ([`wire::batch_payloads`] hands the
//!   slices out without decoding). Popular executions — by design the
//!   common case, since a deployed population re-executes the same paths
//!   constantly — cost one reconstruction total, not one per arrival.
//!   This is the paper's information recycling applied to the hive's own
//!   ingest path.

use crate::clock::{Clock, MonotonicClock};
use crate::memo::{MemoCache, SharedMemoCache};
use crate::queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
use crate::stats::{IngestStats, StatsCore};
use softborg_obs::ObsHandles;
use softborg_program::overlay::Overlay;
use softborg_program::taint::InputDependence;
use softborg_program::{BranchSiteId, Program};
use softborg_trace::{reconstruct, wire, ExecutionTrace};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How the reconstruction memo is scoped across the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemoMode {
    /// Each worker owns a private cache (shared-nothing; zero
    /// synchronization, but every worker pays its own cold miss for the
    /// same popular payload).
    #[default]
    PerWorker,
    /// One striped cache shared by every worker ([`SharedMemoCache`]):
    /// a payload reconstructed once is a hit pool-wide. `stripes` is
    /// the lock-striping factor (floored at 1; a few times the worker
    /// count keeps contention negligible).
    Shared {
        /// Number of independently-locked cache stripes.
        stripes: usize,
    },
}

/// Pipeline tuning knobs.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Decode + reconstruct workers (minimum 1).
    pub workers: usize,
    /// Frame-queue capacity (producer-side backpressure bound).
    pub queue_capacity: usize,
    /// Merge-queue capacity (worker→merger bound; always lossless).
    pub merge_capacity: usize,
    /// What producers do when the frame queue is full.
    pub policy: BackpressurePolicy,
    /// Memo entries for recycling reconstructions; at capacity the
    /// cache evicts with a second-chance (clock) sweep (0 disables the
    /// cache). Per worker under [`MemoMode::PerWorker`], pool-total
    /// under [`MemoMode::Shared`].
    pub memo_capacity: usize,
    /// Whether the memo is per-worker or shared across the pool.
    pub memo_mode: MemoMode,
    /// Time source for the latency/throughput gauges. Defaults to the
    /// monotonic wall clock; a virtual-time scheduler injects its own so
    /// `wall_ns`, `worker_busy_ns`, and `frame_latency_ns` stay
    /// meaningful under simulation.
    pub clock: Arc<dyn Clock>,
    /// Telemetry sinks: an optional shared metrics registry (attaching
    /// one also enables the per-frame stage histograms) and a flight
    /// recorder for run events. The default records nothing beyond the
    /// counters that back [`IngestStats`].
    pub obs: ObsHandles,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            workers: 2,
            queue_capacity: 64,
            merge_capacity: 64,
            policy: BackpressurePolicy::Block,
            memo_capacity: 4096,
            memo_mode: MemoMode::PerWorker,
            clock: Arc::new(MonotonicClock::new()),
            obs: ObsHandles::default(),
        }
    }
}

/// Read-only reconstruction inputs shared by every worker. The overlay
/// history must be frozen for the duration of a run (the hive only
/// promotes fixes between rounds, never mid-ingest).
#[derive(Debug, Clone, Copy)]
pub struct ReconstructContext<'a> {
    /// The program the traces were produced by.
    pub program: &'a Program,
    /// Its input-dependence (taint) analysis.
    pub deps: &'a InputDependence,
    /// Every overlay version ever distributed (index = version).
    pub overlays: &'a [Overlay],
}

/// One decoded trace plus its reconstruction result, as delivered to the
/// merger's sink. `decisions` is `None` exactly when the serial
/// [`softborg_hive`-style] path would count the trace unreconstructed
/// (unknown overlay version or any `ReconstructError`).
#[derive(Debug)]
pub struct ProcessedTrace {
    /// The decoded trace (detectors always consume it).
    pub trace: ExecutionTrace,
    /// Reconstructed branch decisions, when the trace is exact.
    pub decisions: Option<Vec<(BranchSiteId, bool)>>,
}

struct FrameItem {
    seq: u64,
    bytes: Vec<u8>,
    /// [`Clock::now_ns`] at submit, for the submit→merge latency gauge.
    enqueued_at_ns: u64,
}

enum WorkerOut {
    Frame(Vec<Arc<ProcessedTrace>>),
    Corrupt,
}

struct MergeItem {
    seq: u64,
    enqueued_at_ns: u64,
    out: WorkerOut,
}

struct Shared {
    frames: BoundedQueue<FrameItem>,
    merged: BoundedQueue<MergeItem>,
    /// Sequence numbers that will never reach the merger (displaced by
    /// DropOldest or submitted after shutdown).
    dropped: Mutex<BTreeSet<u64>>,
    stats: StatsCore,
    next_seq: AtomicU64,
    senders: AtomicUsize,
    clock: Arc<dyn Clock>,
}

/// A clonable handle producers use to feed frames into a running
/// pipeline. The frame queue closes when the last clone is dropped, so
/// producer panics still shut the pipeline down cleanly.
pub struct FrameSender {
    shared: Arc<Shared>,
}

impl Clone for FrameSender {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        FrameSender {
            shared: self.shared.clone(),
        }
    }
}

impl Drop for FrameSender {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.shared.frames.close();
        }
    }
}

impl FrameSender {
    /// Submits a frame with an explicit sequence number. The merger
    /// releases frames in sequence order, so over one run the submitted
    /// numbers must be exactly `0..n` (pre-partition ranges among
    /// producers when several threads submit). Do not mix with
    /// [`submit`](Self::submit).
    pub fn submit_at(&self, seq: u64, frame: Vec<u8>) {
        let sh = &self.shared;
        sh.stats.frames_submitted.incr();
        match sh.frames.push(FrameItem {
            seq,
            bytes: frame,
            enqueued_at_ns: sh.clock.now_ns(),
        }) {
            PushOutcome::Accepted => {}
            PushOutcome::Displaced(old) => {
                sh.dropped.lock().expect("drop set").insert(old.seq);
                sh.stats.frames_dropped.incr();
            }
            PushOutcome::Closed(item) => {
                sh.dropped.lock().expect("drop set").insert(item.seq);
                sh.stats.frames_dropped.incr();
            }
        }
    }

    /// Submits a frame with an auto-assigned sequence number (shared by
    /// all clones of this sender). Returns the number used.
    pub fn submit(&self, frame: Vec<u8>) -> u64 {
        let seq = self.shared.next_seq.fetch_add(1, Ordering::Relaxed);
        self.submit_at(seq, frame);
        seq
    }
}

/// Decrements the live-worker count; the last worker out (including by
/// panic) closes the merge queue so the merger can finish.
struct WorkerGuard<'a> {
    active: &'a AtomicUsize,
    merged: &'a BoundedQueue<MergeItem>,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        if self.active.fetch_sub(1, Ordering::SeqCst) == 1 {
            self.merged.close();
        }
    }
}

/// Closes both queues when the merger exits — on the normal path this is
/// a no-op (everything is already closed), on a sink panic it unblocks
/// workers and producers so the scope can unwind instead of deadlocking.
struct MergerGuard<'a> {
    shared: &'a Shared,
}

impl Drop for MergerGuard<'_> {
    fn drop(&mut self) {
        self.shared.frames.close();
        self.shared.merged.close();
    }
}

fn reconstruct_decisions(
    ctx: &ReconstructContext<'_>,
    trace: &ExecutionTrace,
) -> Option<Vec<(BranchSiteId, bool)>> {
    let overlay = ctx.overlays.get(trace.overlay_version as usize)?;
    reconstruct(ctx.program, ctx.deps, overlay, trace)
        .ok()
        .map(|p| p.decisions)
}

fn worker_loop(
    shared: &Shared,
    ctx: ReconstructContext<'_>,
    memo_capacity: usize,
    shared_memo: Option<&SharedMemoCache<Arc<ProcessedTrace>>>,
    active: &AtomicUsize,
) {
    let _guard = WorkerGuard {
        active,
        merged: &shared.merged,
    };
    let mut memo: crate::memo::WorkerMemo<'_, Arc<ProcessedTrace>> = match shared_memo {
        Some(pool) => crate::memo::WorkerMemo::Shared(pool),
        None => crate::memo::WorkerMemo::Local(MemoCache::new(memo_capacity)),
    };
    while let Some(frame) = shared.frames.pop() {
        let t0 = shared.clock.now_ns();
        let out = match wire::batch_payloads(&frame.bytes) {
            Err(_) => WorkerOut::Corrupt,
            Ok(payloads) => {
                let mut entries = Vec::with_capacity(payloads.len());
                let mut corrupt = false;
                for p in payloads {
                    if let Some(hit) = memo.get(p) {
                        shared.stats.cache_hits.incr();
                        entries.push(hit);
                        continue;
                    }
                    shared.stats.cache_misses.incr();
                    match wire::decode(p) {
                        Err(_) => {
                            corrupt = true;
                            break;
                        }
                        Ok(trace) => {
                            let decisions = reconstruct_decisions(&ctx, &trace);
                            let entry = Arc::new(ProcessedTrace { trace, decisions });
                            memo.insert(p.to_vec(), entry.clone());
                            entries.push(entry);
                        }
                    }
                }
                if corrupt {
                    WorkerOut::Corrupt
                } else {
                    WorkerOut::Frame(entries)
                }
            }
        };
        let busy_ns = shared.clock.now_ns().saturating_sub(t0);
        shared.stats.worker_busy_ns.add(busy_ns);
        if let Some(h) = &shared.stats.stage_work_ns {
            h.record(busy_ns);
        }
        if matches!(out, WorkerOut::Corrupt) {
            shared.stats.frames_corrupt.incr();
        }
        // If the merger died (sink panic) the queue is closed; the item
        // is simply discarded while the scope unwinds.
        let _ = shared.merged.push(MergeItem {
            seq: frame.seq,
            enqueued_at_ns: frame.enqueued_at_ns,
            out,
        });
    }
    shared.stats.cache_evictions.add(memo.local_evictions());
}

/// Heap entry ordered by ascending sequence number.
struct BySeq(MergeItem);

impl PartialEq for BySeq {
    fn eq(&self, other: &Self) -> bool {
        self.0.seq == other.0.seq
    }
}
impl Eq for BySeq {}
impl PartialOrd for BySeq {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for BySeq {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.seq.cmp(&other.0.seq)
    }
}

fn merger_loop<F: FnMut(&ProcessedTrace)>(shared: &Shared, sink: &mut F) {
    let _guard = MergerGuard { shared };
    let mut next: u64 = 0;
    let mut pending: BinaryHeap<Reverse<BySeq>> = BinaryHeap::new();
    let emit = |item: MergeItem, sink: &mut F| {
        match &item.out {
            WorkerOut::Frame(entries) => {
                for entry in entries {
                    sink(entry);
                }
                shared.stats.traces_merged.add(entries.len() as u64);
            }
            WorkerOut::Corrupt => {
                // Already counted by the worker; the slot is consumed so
                // ordering stays intact.
            }
        }
        shared.stats.frames_merged.incr();
        let latency_ns = shared.clock.now_ns().saturating_sub(item.enqueued_at_ns);
        shared.stats.frame_latency_ns.add(latency_ns);
        if let Some(h) = &shared.stats.stage_merge_wait_ns {
            h.record(latency_ns);
        }
    };
    let skip_dropped = |next: &mut u64| {
        let mut dropped = shared.dropped.lock().expect("drop set");
        while dropped.remove(next) {
            *next += 1;
        }
    };
    loop {
        skip_dropped(&mut next);
        while pending
            .peek()
            .is_some_and(|Reverse(BySeq(item))| item.seq == next)
        {
            let Reverse(BySeq(item)) = pending.pop().expect("peeked");
            emit(item, sink);
            next += 1;
            skip_dropped(&mut next);
        }
        match shared.merged.pop() {
            Some(item) => pending.push(Reverse(BySeq(item))),
            // Workers are done: every surviving frame is in `pending`,
            // every gap is in the drop set. Drain in order.
            None => break,
        }
    }
    while let Some(Reverse(BySeq(item))) = pending.pop() {
        skip_dropped(&mut next);
        debug_assert_eq!(item.seq, next, "merger saw a non-dropped gap");
        next = item.seq + 1;
        emit(item, sink);
    }
}

/// Runs the pipeline to completion.
///
/// `producer` runs on its own thread and feeds encoded batch frames
/// through the [`FrameSender`] it is given (clone it to fan production
/// out over more threads); its return value is handed back. `sink` runs
/// on the calling thread and receives every surviving trace in exact
/// sequence order — it is the single merger and may freely own mutable
/// state (the hive passes closures over its execution tree and
/// detectors).
///
/// Worker, producer, and sink panics all shut the pipeline down and
/// propagate; none of them can deadlock the run.
pub fn run<R, P, F>(
    config: &IngestConfig,
    ctx: ReconstructContext<'_>,
    producer: P,
    mut sink: F,
) -> (R, IngestStats)
where
    P: FnOnce(FrameSender) -> R + Send,
    R: Send,
    F: FnMut(&ProcessedTrace),
{
    let shared = Arc::new(Shared {
        frames: BoundedQueue::new(config.queue_capacity, config.policy),
        merged: BoundedQueue::new(config.merge_capacity, BackpressurePolicy::Block),
        dropped: Mutex::new(BTreeSet::new()),
        stats: StatsCore::new(config.obs.registry.as_ref()),
        next_seq: AtomicU64::new(0),
        senders: AtomicUsize::new(1),
        clock: config.clock.clone(),
    });
    let sender = FrameSender {
        shared: shared.clone(),
    };
    let n_workers = config.workers.max(1);
    let active = AtomicUsize::new(n_workers);
    let memo_capacity = config.memo_capacity;
    let pool_memo: Option<SharedMemoCache<Arc<ProcessedTrace>>> = match config.memo_mode {
        MemoMode::PerWorker => None,
        MemoMode::Shared { stripes } => Some(SharedMemoCache::new(memo_capacity, stripes)),
    };
    let started = config.clock.now_ns();
    let result = std::thread::scope(|s| {
        let producer_handle = s.spawn(move || producer(sender));
        let worker_handles: Vec<_> = (0..n_workers)
            .map(|_| {
                let shared = &shared;
                let active = &active;
                let pool_memo = pool_memo.as_ref();
                s.spawn(move || worker_loop(shared, ctx, memo_capacity, pool_memo, active))
            })
            .collect();
        merger_loop(&shared, &mut sink);
        for h in worker_handles {
            if let Err(p) = h.join() {
                std::panic::resume_unwind(p);
            }
        }
        match producer_handle.join() {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    });
    if let Some(pool) = &pool_memo {
        shared.stats.cache_evictions.add(pool.evictions());
    }
    let stats = shared.stats.snapshot(
        n_workers,
        shared.frames.high_water(),
        config.clock.now_ns().saturating_sub(started),
    );
    // Only content-determined fields go in the event payload (frame and
    // trace counts are fixed by the sequence-ordered merge contract);
    // cache hits and queue depths vary with thread interleaving and
    // would break the events-hash stability guarantee.
    config.obs.recorder.info(
        "ingest",
        "run_done",
        &[
            ("frames_merged", stats.frames_merged),
            ("traces_merged", stats.traces_merged),
            ("frames_corrupt", stats.frames_corrupt),
        ],
        format_args!(
            "ingest run merged {} traces over {} frames ({} corrupt) in {}ns",
            stats.traces_merged, stats.frames_merged, stats.frames_corrupt, stats.wall_ns
        ),
    );
    (result, stats)
}
