//! # softborg-ingest — the hive's staged trace-ingest pipeline
//!
//! The serial hive ingests one trace at a time: decode, reconstruct,
//! merge. At population scale that single loop is the bottleneck — and
//! it redoes work constantly, because a deployed population re-executes
//! the same paths over and over. This crate turns ingest into a staged,
//! concurrent, batched, backpressured pipeline that *recycles* prior
//! work (the paper's theme applied to the hive's own front door):
//!
//! * [`queue`] — [`BoundedQueue`], a bounded MPMC queue with an explicit
//!   [`BackpressurePolicy`] (`Block` or `DropOldest` + drop accounting).
//! * [`pipeline`] — the pipeline itself: producers submit batch frames
//!   ([`softborg_trace::wire::encode_batch`]) through a [`FrameSender`];
//!   a pool of decode+reconstruct workers processes frames concurrently,
//!   memoizing reconstructions keyed on the exact encoded bytes; a
//!   single merger releases results to the sink in strict sequence
//!   order, so pipelined ingest is observably identical to serial
//!   ingest.
//! * [`stats`] — [`IngestStats`]: queue depth, drops, corrupt frames,
//!   batch latency, cache hit rate, throughput.
//!
//! The hive wires this up in `Hive::ingest_batch` /
//! `Hive::ingest_frames`; the platform's round loop feeds it from pods
//! running on scoped threads.

#![warn(missing_docs)]

pub mod clock;
pub mod memo;
pub mod pipeline;
pub mod queue;
pub mod stats;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use memo::{MemoCache, SharedMemoCache, WorkerMemo};
pub use pipeline::{run, FrameSender, IngestConfig, MemoMode, ProcessedTrace, ReconstructContext};
pub use queue::{BackpressurePolicy, BoundedQueue, PushOutcome};
pub use stats::IngestStats;
