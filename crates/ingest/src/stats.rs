//! Pipeline observability: lock-free counters updated by every stage,
//! snapshotted into an [`IngestStats`] when a run completes.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters the pipeline stages update concurrently.
#[derive(Debug, Default)]
pub(crate) struct StatsCore {
    pub frames_submitted: AtomicU64,
    pub frames_dropped: AtomicU64,
    pub frames_corrupt: AtomicU64,
    pub frames_merged: AtomicU64,
    pub traces_merged: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Total worker time spent decoding + reconstructing, in ns.
    pub worker_busy_ns: AtomicU64,
    /// Total submit→merge latency over merged frames, in ns.
    pub frame_latency_ns: AtomicU64,
}

impl StatsCore {
    pub(crate) fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(
        &self,
        workers: usize,
        queue_high_water: usize,
        wall_ns: u64,
    ) -> IngestStats {
        let ld = |c: &AtomicU64| c.load(Ordering::Relaxed);
        // A run that did work but finished inside one clock tick (coarse
        // clock, or a virtual clock nobody advanced) would report
        // wall_ns == 0 and a throughput of 0 traces/sec — nonsense for a
        // run that merged traces. Clamp to 1ns so rates stay finite.
        let wall_ns = if wall_ns == 0 && ld(&self.frames_submitted) > 0 {
            1
        } else {
            wall_ns
        };
        IngestStats {
            frames_submitted: ld(&self.frames_submitted),
            frames_dropped: ld(&self.frames_dropped),
            frames_corrupt: ld(&self.frames_corrupt),
            frames_merged: ld(&self.frames_merged),
            traces_merged: ld(&self.traces_merged),
            cache_hits: ld(&self.cache_hits),
            cache_misses: ld(&self.cache_misses),
            cache_evictions: ld(&self.cache_evictions),
            worker_busy_ns: ld(&self.worker_busy_ns),
            frame_latency_ns: ld(&self.frame_latency_ns),
            queue_high_water,
            wall_ns,
            workers,
        }
    }
}

/// Counters and gauges for one pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames handed to the pipeline (before any drop).
    pub frames_submitted: u64,
    /// Frames displaced by [`DropOldest`](crate::BackpressurePolicy::DropOldest)
    /// backpressure (or submitted after shutdown) and never merged.
    pub frames_dropped: u64,
    /// Frames rejected by wire validation (bad magic, truncation,
    /// checksum mismatch, …). Counted and skipped — never a panic.
    pub frames_corrupt: u64,
    /// Frames that reached the merger (corrupt frames included: the
    /// merger consumes their slot to preserve ordering).
    pub frames_merged: u64,
    /// Traces delivered to the sink, over all merged frames.
    pub traces_merged: u64,
    /// Traces whose decode+reconstruction was recycled from the memo
    /// cache (byte-identical by-product seen before).
    pub cache_hits: u64,
    /// Traces that required a full decode + reconstruction.
    pub cache_misses: u64,
    /// Memo entries rotated out by the second-chance sweep (summed over
    /// workers).
    pub cache_evictions: u64,
    /// Total worker time spent decoding + reconstructing, in ns.
    pub worker_busy_ns: u64,
    /// Total submit→merge latency across merged frames, in ns.
    pub frame_latency_ns: u64,
    /// Deepest the frame queue ever got (backpressure gauge).
    pub queue_high_water: usize,
    /// Wall-clock duration of the whole run, in ns.
    pub wall_ns: u64,
    /// Decode/reconstruct workers the run used.
    pub workers: usize,
}

impl IngestStats {
    /// Mean submit→merge latency per merged frame, in ns.
    pub fn mean_frame_latency_ns(&self) -> u64 {
        self.frame_latency_ns
            .checked_div(self.frames_merged)
            .unwrap_or(0)
    }

    /// Sink throughput in traces per second.
    pub fn throughput_traces_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.traces_merged as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Fraction of traces served from the memo cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}
