//! Pipeline observability: registry-backed counters updated by every
//! stage, snapshotted into an [`IngestStats`] when a run completes.
//!
//! The counters live in a `softborg-obs` [`MetricsRegistry`] under
//! `ingest.*` paths. When the caller attaches a shared registry
//! ([`IngestConfig::obs`](crate::IngestConfig)), the same handles feed
//! fleet-wide metrics *and* the per-run [`IngestStats`] view (the
//! snapshot subtracts a baseline captured at run start, so per-run
//! stats stay per-run even when the registry accumulates across
//! rounds); without one, the run keeps a private registry and the cost
//! is identical — one relaxed atomic add per update, exactly what the
//! old hand-rolled `StatsCore` did.

use softborg_obs::{rates, Counter, Gauge, Histogram, MetricsRegistry};

/// Baseline counter values at run start, subtracted at snapshot time.
#[derive(Debug, Default, Clone, Copy)]
struct Baseline {
    frames_submitted: u64,
    frames_dropped: u64,
    frames_corrupt: u64,
    frames_merged: u64,
    traces_merged: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    worker_busy_ns: u64,
    frame_latency_ns: u64,
}

/// Shared counters the pipeline stages update concurrently, interned in
/// a metrics registry under `ingest.*`.
#[derive(Debug)]
pub(crate) struct StatsCore {
    pub frames_submitted: Counter,
    pub frames_dropped: Counter,
    pub frames_corrupt: Counter,
    pub frames_merged: Counter,
    pub traces_merged: Counter,
    pub cache_hits: Counter,
    pub cache_misses: Counter,
    pub cache_evictions: Counter,
    /// Total worker time spent decoding + reconstructing, in ns.
    pub worker_busy_ns: Counter,
    /// Total submit→merge latency over merged frames, in ns.
    pub frame_latency_ns: Counter,
    /// Per-frame decode+reconstruct stage histogram (attached registry
    /// only — `None` is the telemetry-off fast path).
    pub stage_work_ns: Option<Histogram>,
    /// Per-frame submit→merge latency histogram (attached registry
    /// only).
    pub stage_merge_wait_ns: Option<Histogram>,
    queue_high_water: Gauge,
    wall_ns: Gauge,
    workers: Gauge,
    base: Baseline,
}

impl StatsCore {
    /// Handles into `registry`, or a private registry when `None`.
    /// Histogram spans are only recorded into an attached registry.
    pub(crate) fn new(registry: Option<&MetricsRegistry>) -> Self {
        let attached = registry.is_some();
        let private;
        let reg = match registry {
            Some(r) => r,
            None => {
                private = MetricsRegistry::new();
                &private
            }
        };
        let c = |path| reg.counter(path);
        let core = StatsCore {
            frames_submitted: c("ingest.frames_submitted"),
            frames_dropped: c("ingest.frames_dropped"),
            frames_corrupt: c("ingest.frames_corrupt"),
            frames_merged: c("ingest.frames_merged"),
            traces_merged: c("ingest.traces_merged"),
            cache_hits: c("ingest.cache_hits"),
            cache_misses: c("ingest.cache_misses"),
            cache_evictions: c("ingest.cache_evictions"),
            worker_busy_ns: c("ingest.worker_busy_ns"),
            frame_latency_ns: c("ingest.frame_latency_ns"),
            stage_work_ns: attached.then(|| reg.histogram("ingest.stage.work_ns")),
            stage_merge_wait_ns: attached.then(|| reg.histogram("ingest.stage.merge_wait_ns")),
            queue_high_water: reg.gauge("ingest.queue_high_water"),
            wall_ns: reg.gauge("ingest.wall_ns"),
            workers: reg.gauge("ingest.workers"),
            base: Baseline::default(),
        };
        StatsCore {
            base: Baseline {
                frames_submitted: core.frames_submitted.get(),
                frames_dropped: core.frames_dropped.get(),
                frames_corrupt: core.frames_corrupt.get(),
                frames_merged: core.frames_merged.get(),
                traces_merged: core.traces_merged.get(),
                cache_hits: core.cache_hits.get(),
                cache_misses: core.cache_misses.get(),
                cache_evictions: core.cache_evictions.get(),
                worker_busy_ns: core.worker_busy_ns.get(),
                frame_latency_ns: core.frame_latency_ns.get(),
            },
            ..core
        }
    }

    pub(crate) fn snapshot(
        &self,
        workers: usize,
        queue_high_water: usize,
        wall_ns: u64,
    ) -> IngestStats {
        self.queue_high_water.set_max(queue_high_water as u64);
        self.wall_ns.set(wall_ns);
        self.workers.set(workers as u64);
        let frames_submitted = self.frames_submitted.get() - self.base.frames_submitted;
        let wall_ns = rates::clamp_wall_ns(wall_ns, frames_submitted > 0);
        IngestStats {
            frames_submitted,
            frames_dropped: self.frames_dropped.get() - self.base.frames_dropped,
            frames_corrupt: self.frames_corrupt.get() - self.base.frames_corrupt,
            frames_merged: self.frames_merged.get() - self.base.frames_merged,
            traces_merged: self.traces_merged.get() - self.base.traces_merged,
            cache_hits: self.cache_hits.get() - self.base.cache_hits,
            cache_misses: self.cache_misses.get() - self.base.cache_misses,
            cache_evictions: self.cache_evictions.get() - self.base.cache_evictions,
            worker_busy_ns: self.worker_busy_ns.get() - self.base.worker_busy_ns,
            frame_latency_ns: self.frame_latency_ns.get() - self.base.frame_latency_ns,
            queue_high_water,
            wall_ns,
            workers,
        }
    }
}

/// Counters and gauges for one pipeline run — the per-run derived view
/// over the `ingest.*` registry metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Frames handed to the pipeline (before any drop).
    pub frames_submitted: u64,
    /// Frames displaced by [`DropOldest`](crate::BackpressurePolicy::DropOldest)
    /// backpressure (or submitted after shutdown) and never merged.
    pub frames_dropped: u64,
    /// Frames rejected by wire validation (bad magic, truncation,
    /// checksum mismatch, …). Counted and skipped — never a panic.
    pub frames_corrupt: u64,
    /// Frames that reached the merger (corrupt frames included: the
    /// merger consumes their slot to preserve ordering).
    pub frames_merged: u64,
    /// Traces delivered to the sink, over all merged frames.
    pub traces_merged: u64,
    /// Traces whose decode+reconstruction was recycled from the memo
    /// cache (byte-identical by-product seen before).
    pub cache_hits: u64,
    /// Traces that required a full decode + reconstruction.
    pub cache_misses: u64,
    /// Memo entries rotated out by the second-chance sweep (summed over
    /// workers).
    pub cache_evictions: u64,
    /// Total worker time spent decoding + reconstructing, in ns.
    pub worker_busy_ns: u64,
    /// Total submit→merge latency across merged frames, in ns.
    pub frame_latency_ns: u64,
    /// Deepest the frame queue ever got (backpressure gauge).
    pub queue_high_water: usize,
    /// Wall-clock duration of the whole run, in ns.
    pub wall_ns: u64,
    /// Decode/reconstruct workers the run used.
    pub workers: usize,
}

impl IngestStats {
    /// Mean submit→merge latency per merged frame, in ns.
    pub fn mean_frame_latency_ns(&self) -> u64 {
        rates::mean(self.frame_latency_ns, self.frames_merged)
    }

    /// Sink throughput in traces per second.
    pub fn throughput_traces_per_sec(&self) -> f64 {
        rates::per_sec(self.traces_merged, self.wall_ns)
    }

    /// Fraction of traces served from the memo cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        rates::hit_rate(self.cache_hits, self.cache_misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attached_registry_snapshots_are_per_run_deltas() {
        let reg = MetricsRegistry::new();
        let run1 = StatsCore::new(Some(&reg));
        run1.frames_submitted.add(3);
        run1.traces_merged.add(7);
        assert_eq!(run1.snapshot(1, 0, 10).traces_merged, 7);
        // A second run over the same registry sees only its own counts…
        let run2 = StatsCore::new(Some(&reg));
        run2.frames_submitted.add(1);
        run2.traces_merged.add(2);
        let s2 = run2.snapshot(1, 0, 10);
        assert_eq!(s2.frames_submitted, 1);
        assert_eq!(s2.traces_merged, 2);
        // …while the registry accumulates fleet-wide totals.
        assert_eq!(reg.snapshot().counter("ingest.traces_merged"), Some(9));
    }

    #[test]
    fn private_registry_has_no_histograms() {
        let core = StatsCore::new(None);
        assert!(core.stage_work_ns.is_none());
        let attached = StatsCore::new(Some(&MetricsRegistry::new()));
        assert!(attached.stage_work_ns.is_some());
    }

    #[test]
    fn zero_wall_clamps_only_when_busy() {
        let core = StatsCore::new(None);
        assert_eq!(core.snapshot(1, 0, 0).wall_ns, 0);
        core.frames_submitted.incr();
        assert_eq!(core.snapshot(1, 0, 0).wall_ns, 1);
    }
}
