//! Directives: what the hive sends pods to steer future executions.
//!
//! "SoftBorg can also guide the execution of P's instances to cover
//! execution paths about which SoftBorg does not yet have sufficient
//! information" (§3). Directives never change program semantics — they
//! pick inputs the program could receive anyway, bias the scheduler
//! toward legal interleavings, or inject environment faults that the real
//! world could produce (§3.3: test cases "stated in terms of inputs or in
//! terms of system call faults to be injected").

use serde::{Deserialize, Serialize};
use softborg_program::sched::ScheduleHint;
use softborg_program::syscall::ForcedFault;
use softborg_program::{BranchSiteId, ProgramId};

/// One steering instruction for a pod.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Directive {
    /// Run with these concrete inputs (synthesized by the symbolic
    /// executor to reach a frontier arm).
    InputSeed {
        /// Inputs to use.
        inputs: Vec<i64>,
        /// The frontier arm this seed targets (for telemetry).
        target: (BranchSiteId, bool),
    },
    /// Bias the scheduler toward an interleaving family.
    Schedule(ScheduleHint),
    /// Inject environment faults (e.g. a short `read()`).
    FaultInjection {
        /// Forced syscall faults by call index.
        forced: Vec<ForcedFault>,
        /// Spontaneous short-read probability, in parts per 1000.
        short_read_per_mille: u32,
    },
}

/// A batch of directives for one program, produced per hive round.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuidancePlan {
    /// The program the plan applies to.
    pub program: Option<ProgramId>,
    /// Directives, in priority order.
    pub directives: Vec<Directive>,
}

impl GuidancePlan {
    /// An empty plan.
    pub fn new(program: ProgramId) -> Self {
        GuidancePlan {
            program: Some(program),
            directives: Vec::new(),
        }
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// `true` when no directives are present.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Directives of the input-seed kind.
    pub fn input_seeds(&self) -> impl Iterator<Item = &Directive> {
        self.directives
            .iter()
            .filter(|d| matches!(d, Directive::InputSeed { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::ThreadId;

    #[test]
    fn plan_collects_directives() {
        let mut plan = GuidancePlan::new(ProgramId(1));
        assert!(plan.is_empty());
        plan.directives.push(Directive::InputSeed {
            inputs: vec![1, 2],
            target: (BranchSiteId::new(0), true),
        });
        plan.directives.push(Directive::Schedule(ScheduleHint {
            order: vec![ThreadId::new(1), ThreadId::new(0)],
            bias_per_mille: 800,
        }));
        plan.directives.push(Directive::FaultInjection {
            forced: vec![],
            short_read_per_mille: 500,
        });
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.input_seeds().count(), 1);
    }
}
