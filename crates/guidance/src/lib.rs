//! # softborg-guidance — execution steering and exploration portfolios
//!
//! Implements the paper's §3.3 execution guidance ("accelerated
//! learning") and §4 portfolio-theoretic resource allocation:
//!
//! * [`directive`] — the steering instructions pods receive (input seeds,
//!   schedule hints, syscall fault injection).
//! * [`frontier`] — target selection over the execution tree plus
//!   symbolic input synthesis and infeasibility marking.
//! * [`portfolio`] — Markowitz mean-variance allocation of hive workers
//!   to subtree "equities", with uniform and greedy baselines.

#![warn(missing_docs)]

pub mod directive;
pub mod frontier;
pub mod portfolio;

pub use directive::{Directive, GuidancePlan};
pub use frontier::{arm_score, plan, PlanStats, PlannerConfig};
pub use portfolio::{allocate, objective, Asset, ReturnStats, Strategy};
