//! Markowitz portfolio allocation of hive workers to execution subtrees.
//!
//! "In SoftBorg, equities correspond to roots of subtrees in the
//! execution tree, and the capital invested in each equity corresponds to
//! the hive nodes allocated to analyze them" (§4). Expected *return* is
//! the estimated new coverage a worker-round on the subtree yields; *risk*
//! is the variance of past returns. Mean-variance allocation balances
//! high-return subtrees against the risk of burning workers on subtrees
//! whose payoff is unpredictable — diversification, exactly as in
//! Markowitz portfolio selection.

use serde::{Deserialize, Serialize};

/// One investable subtree ("equity").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Asset {
    /// Caller-meaningful identifier (e.g. a tree node id).
    pub id: u64,
    /// Expected per-worker return (estimated new coverage).
    pub expected_return: f64,
    /// Variance of historical returns (risk).
    pub variance: f64,
}

/// Online estimator of an asset's return statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReturnStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl ReturnStats {
    /// An empty estimator.
    pub fn new() -> Self {
        ReturnStats::default()
    }

    /// Records one observed return (Welford update).
    pub fn record(&mut self, value: f64) {
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.n
    }
}

/// Allocation strategies compared in experiment E12.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Equal workers to every asset.
    Uniform,
    /// All workers to the highest-expected-return asset ("choosing the
    /// equities with the highest return", which the paper calls
    /// undecidable in general).
    Greedy,
    /// Mean-variance water-filling with risk-aversion λ.
    MeanVariance {
        /// Risk-aversion coefficient (λ ≥ 0; 0 degenerates to greedy).
        risk_aversion: f64,
    },
}

/// Allocates `budget` integer workers across `assets`.
///
/// Mean-variance uses greedy water-filling on the marginal utility
/// `r_i - λ·(2·w_i + 1)·σ²_i`, which maximizes
/// `Σ w_i·r_i - λ·Σ w_i²·σ²_i` over integer allocations.
///
/// Returns a worker count per asset (same order as `assets`).
pub fn allocate(assets: &[Asset], budget: u32, strategy: Strategy) -> Vec<u32> {
    if assets.is_empty() || budget == 0 {
        return vec![0; assets.len()];
    }
    match strategy {
        Strategy::Uniform => {
            let base = budget / assets.len() as u32;
            let extra = (budget % assets.len() as u32) as usize;
            (0..assets.len())
                .map(|i| base + u32::from(i < extra))
                .collect()
        }
        Strategy::Greedy => {
            let best = assets
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.expected_return
                        .partial_cmp(&b.expected_return)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let mut w = vec![0; assets.len()];
            w[best] = budget;
            w
        }
        Strategy::MeanVariance { risk_aversion } => {
            let mut w = vec![0u32; assets.len()];
            for _ in 0..budget {
                let best = assets
                    .iter()
                    .enumerate()
                    .map(|(i, a)| {
                        let marginal = a.expected_return
                            - risk_aversion * (2.0 * f64::from(w[i]) + 1.0) * a.variance;
                        (i, marginal)
                    })
                    .max_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                w[best] += 1;
            }
            w
        }
    }
}

/// Portfolio objective value of an allocation (used by tests & benches).
pub fn objective(assets: &[Asset], weights: &[u32], risk_aversion: f64) -> f64 {
    assets
        .iter()
        .zip(weights)
        .map(|(a, &w)| {
            let w = f64::from(w);
            w * a.expected_return - risk_aversion * w * w * a.variance
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assets() -> Vec<Asset> {
        vec![
            Asset {
                id: 0,
                expected_return: 10.0,
                variance: 100.0, // high return, high risk
            },
            Asset {
                id: 1,
                expected_return: 6.0,
                variance: 1.0, // decent return, low risk
            },
            Asset {
                id: 2,
                expected_return: 1.0,
                variance: 0.5, // poor return
            },
        ]
    }

    #[test]
    fn uniform_splits_evenly_with_remainder() {
        let w = allocate(&assets(), 10, Strategy::Uniform);
        assert_eq!(w, vec![4, 3, 3]);
        assert_eq!(w.iter().sum::<u32>(), 10);
    }

    #[test]
    fn greedy_puts_everything_on_max_return() {
        let w = allocate(&assets(), 10, Strategy::Greedy);
        assert_eq!(w, vec![10, 0, 0]);
    }

    #[test]
    fn mean_variance_diversifies() {
        let w = allocate(
            &assets(),
            10,
            Strategy::MeanVariance {
                risk_aversion: 0.02,
            },
        );
        assert_eq!(w.iter().sum::<u32>(), 10);
        // The risky asset gets some workers but not all; the low-risk
        // asset gets a meaningful share.
        assert!(w[0] >= 1, "{w:?}");
        assert!(w[1] >= 3, "{w:?}");
        assert!(w[0] < 10, "{w:?}");
    }

    #[test]
    fn zero_risk_aversion_degenerates_to_greedy() {
        let w = allocate(&assets(), 7, Strategy::MeanVariance { risk_aversion: 0.0 });
        assert_eq!(w, vec![7, 0, 0]);
    }

    #[test]
    fn water_filling_beats_uniform_and_greedy_on_its_own_objective() {
        let a = assets();
        let lambda = 0.1;
        let mv = allocate(
            &a,
            12,
            Strategy::MeanVariance {
                risk_aversion: lambda,
            },
        );
        let uni = allocate(&a, 12, Strategy::Uniform);
        let grd = allocate(&a, 12, Strategy::Greedy);
        let omv = objective(&a, &mv, lambda);
        assert!(omv >= objective(&a, &uni, lambda) - 1e-9);
        assert!(omv >= objective(&a, &grd, lambda) - 1e-9);
    }

    #[test]
    fn empty_assets_or_budget_yield_zeroes() {
        assert!(allocate(&[], 5, Strategy::Uniform).is_empty());
        assert_eq!(allocate(&assets(), 0, Strategy::Greedy), vec![0, 0, 0]);
    }

    #[test]
    fn return_stats_welford_matches_naive() {
        let samples = [1.0, 4.0, 2.0, 8.0, 5.0];
        let mut rs = ReturnStats::new();
        for s in samples {
            rs.record(s);
        }
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((rs.mean() - mean).abs() < 1e-9);
        assert!((rs.variance() - var).abs() < 1e-9);
        assert_eq!(rs.count(), 5);
    }

    #[test]
    fn return_stats_single_sample_has_zero_variance() {
        let mut rs = ReturnStats::new();
        rs.record(3.0);
        assert_eq!(rs.variance(), 0.0);
        assert_eq!(rs.mean(), 3.0);
    }
}
