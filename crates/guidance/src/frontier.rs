//! Frontier targeting: turn unexplored tree arms into directives.
//!
//! The planner scores frontier arms (rarity-weighted), asks the symbolic
//! executor for each target's feasibility, marks proven-infeasible arms in
//! the tree (enabling closure/proofs), and emits input seeds for the
//! feasible ones. For multi-threaded programs — where tree prefixes bake
//! in a schedule the single-unit executor cannot reproduce — it falls
//! back to schedule-perturbation and fault-injection directives.

use crate::directive::{Directive, GuidancePlan};
use softborg_program::sched::ScheduleHint;
use softborg_program::Program;
use softborg_symex::{arm_feasibility, explore, Feasibility, SymConfig, SymexError};
use softborg_tree::{ExecutionTree, FrontierArm};

/// Planner configuration.
#[derive(Debug, Clone)]
pub struct PlannerConfig {
    /// Maximum frontier arms targeted per round.
    pub max_targets: usize,
    /// Symbolic-execution configuration (input box etc.).
    pub sym: SymConfig,
    /// Short-read probability to request when environment-dependent
    /// frontier remains, in parts per 1000.
    pub fault_per_mille: u32,
    /// Maximum symbolic *crash* counterexamples turned into seeds per
    /// round (§3.3: the hive "can also produce specific test cases" —
    /// crash forks found by the symbolic executor become directed
    /// inputs that a pod confirms with a real execution). 0 disables
    /// the hunt.
    pub max_crash_seeds: usize,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            max_targets: 16,
            sym: SymConfig::default(),
            fault_per_mille: 200,
            max_crash_seeds: 8,
        }
    }
}

/// Per-round planning outcome counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanStats {
    /// Arms proven infeasible and marked in the tree.
    pub infeasible_marked: u64,
    /// Input seeds synthesized for frontier coverage.
    pub seeds: u64,
    /// Input seeds synthesized from symbolic crash counterexamples.
    pub crash_seeds: u64,
    /// Arms left unknown.
    pub unknown: u64,
}

/// Scores a frontier arm: deeper and rarer arms score higher (they are
/// the ones natural executions will not reach soon).
pub fn arm_score(arm: &FrontierArm) -> f64 {
    let rarity = 1.0 / (1.0 + arm.visits as f64);
    arm.depth as f64 + 10.0 * rarity
}

/// Produces a guidance plan for `program` from its current tree, marking
/// proven-infeasible arms as a side effect.
pub fn plan(
    program: &Program,
    tree: &mut ExecutionTree,
    config: &PlannerConfig,
) -> (GuidancePlan, PlanStats) {
    let mut plan = GuidancePlan::new(tree.program());
    let mut stats = PlanStats::default();
    let mut frontier = tree.frontier();
    frontier.sort_by(|a, b| {
        arm_score(b)
            .partial_cmp(&arm_score(a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    frontier.truncate(config.max_targets);

    let single_threaded = program.threads.len() == 1;

    // Symbolic crash hunt: the cooperative prover's counterexample
    // search. Crash forks found symbolically are solved into concrete
    // inputs and dispatched so a pod *confirms* the bug with a real
    // execution (whose trace then drives diagnosis + fixing).
    if single_threaded && config.max_crash_seeds > 0 {
        if let Ok(exploration) = explore(program, &config.sym) {
            // One counterexample per distinct crash *site*: several
            // symbolic paths can reach the same crash and some of them
            // are contradictory (e.g. a fork taken under a conflicting
            // earlier arm), so keep solving alternatives per site until
            // one yields a model.
            let mut by_site: std::collections::BTreeMap<
                softborg_program::Loc,
                Vec<&softborg_symex::SymPath>,
            > = std::collections::BTreeMap::new();
            for path in exploration.crashing() {
                if let softborg_symex::SymOutcome::Crash { loc, .. } = &path.outcome {
                    by_site.entry(*loc).or_default().push(path);
                }
            }
            let mut solve_attempts = 0usize;
            for (_, paths) in by_site {
                if stats.crash_seeds as usize >= config.max_crash_seeds {
                    break;
                }
                for path in paths {
                    solve_attempts += 1;
                    if solve_attempts > 128 {
                        break;
                    }
                    if let Feasibility::Feasible(model) =
                        path.solve(&config.sym.input_box, config.sym.solve_budget)
                    {
                        let inputs = model[..program.n_inputs as usize].to_vec();
                        let target = path
                            .decisions
                            .last()
                            .copied()
                            .unwrap_or((softborg_program::BranchSiteId::new(0), true));
                        plan.directives
                            .push(Directive::InputSeed { inputs, target });
                        stats.crash_seeds += 1;
                        break; // next site
                    }
                }
            }
        }
    }

    let mut any_unknown = false;
    for arm in &frontier {
        if single_threaded {
            let prefix = tree.prefix(arm.node);
            match arm_feasibility(program, &prefix, arm.site, arm.missing_taken, &config.sym) {
                Ok(Feasibility::Feasible(model)) => {
                    let inputs = model[..program.n_inputs as usize].to_vec();
                    plan.directives.push(Directive::InputSeed {
                        inputs,
                        target: (arm.site, arm.missing_taken),
                    });
                    stats.seeds += 1;
                }
                Ok(Feasibility::Infeasible) => {
                    tree.mark_infeasible(arm.node, arm.site, arm.missing_taken);
                    stats.infeasible_marked += 1;
                }
                Ok(Feasibility::Unknown) => {
                    stats.unknown += 1;
                    any_unknown = true;
                }
                Err(SymexError::PrefixMismatch { .. }) | Err(_) => {
                    stats.unknown += 1;
                    any_unknown = true;
                }
            }
        } else {
            stats.unknown += 1;
            any_unknown = true;
        }
    }

    if !single_threaded {
        // Schedule perturbation: request both priority orders so rare
        // interleavings (e.g. lock inversions) get provoked.
        let n = program.threads.len() as u32;
        let fwd: Vec<_> = (0..n).map(softborg_program::ThreadId::new).collect();
        let rev: Vec<_> = (0..n).rev().map(softborg_program::ThreadId::new).collect();
        for order in [fwd, rev] {
            plan.directives.push(Directive::Schedule(ScheduleHint {
                order,
                bias_per_mille: 700,
            }));
        }
    }
    if any_unknown && config.fault_per_mille > 0 {
        plan.directives.push(Directive::FaultInjection {
            forced: vec![],
            short_read_per_mille: config.fault_per_mille,
        });
    }
    (plan, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::interp::{Executor, Observer};
    use softborg_program::scenarios;
    use softborg_program::{BranchSiteId, ThreadId};
    use softborg_symex::InputBox;

    #[derive(Default)]
    struct PathObs(Vec<(BranchSiteId, bool)>);
    impl Observer for PathObs {
        fn on_branch(&mut self, _t: ThreadId, s: BranchSiteId, taken: bool, _d: bool) {
            self.0.push((s, taken));
        }
    }

    fn run_and_merge(
        program: &softborg_program::Program,
        inputs: &[i64],
        tree: &mut ExecutionTree,
    ) {
        let mut obs = PathObs::default();
        let r = Executor::new(program)
            .run(
                inputs,
                &mut softborg_program::syscall::DefaultEnv::seeded(0),
                &mut softborg_program::sched::RoundRobin::new(),
                &softborg_program::Overlay::empty(),
                &mut obs,
            )
            .unwrap();
        tree.merge_path(&obs.0, &r.outcome);
    }

    #[test]
    fn arm_score_prefers_rare_deep_arms() {
        let a = FrontierArm {
            node: softborg_tree::NodeId(1),
            site: BranchSiteId::new(0),
            missing_taken: true,
            depth: 5,
            visits: 1,
        };
        let b = FrontierArm {
            node: softborg_tree::NodeId(2),
            site: BranchSiteId::new(1),
            missing_taken: true,
            depth: 1,
            visits: 1000,
        };
        assert!(arm_score(&a) > arm_score(&b));
    }

    #[test]
    fn planner_seeds_rare_parser_arms() {
        let s = scenarios::token_parser();
        let mut tree = ExecutionTree::new(s.program.id());
        // Only common executions so far: the extended-header arm (in0 ==
        // 13) is unexplored.
        for i in 0..20 {
            run_and_merge(&s.program, &[i % 10, 20, 3, 4, 5, 6], &mut tree);
        }
        let cfg = PlannerConfig {
            sym: SymConfig {
                input_box: InputBox::uniform(6, 0, 99),
                ..SymConfig::default()
            },
            ..PlannerConfig::default()
        };
        let (plan, stats) = plan(&s.program, &mut tree, &cfg);
        assert!(stats.seeds > 0, "expected input seeds, got {stats:?}");
        // Every seed must actually flip its target arm when executed.
        for d in plan.input_seeds() {
            if let Directive::InputSeed { inputs, target } = d {
                let mut obs = PathObs::default();
                Executor::new(&s.program)
                    .run(
                        inputs,
                        &mut softborg_program::syscall::DefaultEnv::seeded(0),
                        &mut softborg_program::sched::RoundRobin::new(),
                        &softborg_program::Overlay::empty(),
                        &mut obs,
                    )
                    .unwrap();
                assert!(
                    obs.0.contains(target),
                    "seed {inputs:?} did not exercise {target:?}; path {:?}",
                    obs.0
                );
            }
        }
    }

    #[test]
    fn planner_marks_infeasible_arms() {
        use softborg_program::builder::ProgramBuilder;
        use softborg_program::expr::{BinOp, Expr};
        let mut pb = ProgramBuilder::new("one-sided");
        pb.inputs(1);
        pb.thread(|t| {
            t.if_else(
                Expr::bin(BinOp::Ge, Expr::input(0), Expr::Const(0)),
                |t| {
                    t.emit(Expr::Const(1));
                },
                |t| {
                    t.emit(Expr::Const(0));
                },
            );
        });
        let p = pb.build().unwrap();
        let mut tree = ExecutionTree::new(p.id());
        run_and_merge(&p, &[5], &mut tree);
        assert_eq!(tree.frontier().len(), 1);
        let cfg = PlannerConfig {
            sym: SymConfig {
                input_box: InputBox::uniform(1, 0, 9),
                ..SymConfig::default()
            },
            ..PlannerConfig::default()
        };
        let (_, stats) = plan(&p, &mut tree, &cfg);
        assert_eq!(stats.infeasible_marked, 1);
        assert!(tree.frontier().is_empty());
        assert!(tree.is_closed(softborg_tree::NodeId::ROOT));
    }

    #[test]
    fn crash_hunt_synthesizes_the_div_bug_trigger() {
        // The parser's div-by-zero needs in0==13 && in1>=90 && in2==7 —
        // never a coverage target (the crash is not behind its own
        // branch), so only the symbolic crash hunt can seed it.
        let s = scenarios::token_parser();
        let mut tree = ExecutionTree::new(s.program.id());
        run_and_merge(&s.program, &[1, 2, 3, 4, 5, 6], &mut tree);
        let cfg = PlannerConfig {
            sym: SymConfig {
                input_box: InputBox::uniform(6, 0, 99),
                ..SymConfig::default()
            },
            ..PlannerConfig::default()
        };
        let (plan, stats) = plan(&s.program, &mut tree, &cfg);
        assert!(stats.crash_seeds > 0, "no crash seeds: {stats:?}");
        // At least one seed must actually crash the program.
        let mut crashed = false;
        for d in plan.input_seeds() {
            if let Directive::InputSeed { inputs, .. } = d {
                let r = Executor::new(&s.program)
                    .run(
                        inputs,
                        &mut softborg_program::syscall::DefaultEnv::seeded(0),
                        &mut softborg_program::sched::RoundRobin::new(),
                        &softborg_program::Overlay::empty(),
                        &mut softborg_program::interp::NopObserver,
                    )
                    .unwrap();
                if r.outcome.is_failure() {
                    crashed = true;
                    break;
                }
            }
        }
        assert!(crashed, "no synthesized seed reproduced a crash");
    }

    #[test]
    fn multithreaded_programs_get_schedule_directives() {
        let s = scenarios::bank_transfer();
        let mut tree = ExecutionTree::new(s.program.id());
        run_and_merge(&s.program, &[10, 20], &mut tree);
        let (plan, _) = plan(&s.program, &mut tree, &PlannerConfig::default());
        let schedules = plan
            .directives
            .iter()
            .filter(|d| matches!(d, Directive::Schedule(_)))
            .count();
        assert_eq!(schedules, 2, "forward and reverse priority orders");
    }
}
