//! # softborg — collective information recycling, end to end
//!
//! A faithful reproduction of the system proposed in *"Exterminating
//! Bugs via Collective Information Recycling"* (George Candea, HotDep
//! 2011): every execution of a program is treated as a test run; pods
//! record execution by-products; a hive merges them into a collective
//! execution tree, diagnoses bugs, synthesizes and validates fixes,
//! assembles cumulative proofs, and steers future executions — closing
//! the quality feedback loop so that *the more a program is used, the
//! more reliable it becomes*.
//!
//! This facade crate re-exports every subsystem and provides the
//! [`Platform`]: the closed-loop population simulation of Figure 1.
//!
//! ## Quickstart
//!
//! ```
//! use softborg::platform::{Platform, PlatformConfig};
//! use softborg::program::scenarios;
//!
//! // A parser with two rare crash bugs, run by a small user population.
//! let scenario = scenarios::token_parser();
//! let mut platform = Platform::new(
//!     &scenario.program,
//!     PlatformConfig {
//!         n_pods: 20,
//!         pod: softborg::pod::PodConfig {
//!             input_range: scenario.input_range,
//!             ..softborg::pod::PodConfig::default()
//!         },
//!         ..PlatformConfig::default()
//!     },
//! );
//! let history = platform.run(5, 20).to_vec();
//! assert_eq!(history.len(), 5);
//! // The tree grew and the hive processed every trace.
//! assert!(platform.hive().coverage().nodes > 1);
//! ```
//!
//! ## Subsystem map
//!
//! | Re-export | Paper section | Contents |
//! |---|---|---|
//! | [`program`] | substrate | guest programs, interpreter, overlays |
//! | [`trace`] | §3.1 | by-product recording, wire format, anonymization |
//! | [`tree`] | §3.2 | the collective execution tree |
//! | [`solver`] | §4 | SAT engine + portfolio |
//! | [`symex`] | §3.3/§4 | symbolic execution, consistency levels |
//! | [`analysis`] | §3.3/§5 | detectors + WER/CBI baselines |
//! | [`fix`] | §3.3 | fix synthesis + repair lab |
//! | [`guidance`] | §3.3/§4 | steering + Markowitz allocation |
//! | [`netsim`] | §4 | discrete-event network simulator |
//! | [`pod`] | §3 | the per-instance agent |
//! | [`hive`] | §3–§4 | aggregation, fixes, proofs, distribution |

#![warn(missing_docs)]

pub mod multi;
pub mod platform;

pub use multi::{
    FleetSpec, LaneTask, MultiDrivenExecution, MultiPlatform, MultiPlatformConfig,
    MultiResumeReport, MultiRoundReport, ProgramRoundReport, ShardResumeReport,
};
pub use platform::{
    ChainSettings, DrivenExecution, DurabilityConfig, DurabilityError, IngestSettings, Platform,
    PlatformConfig, ResumeReport, RoundReport, RoundTelemetry,
};

pub use softborg_analysis as analysis;
pub use softborg_fix as fix;
pub use softborg_guidance as guidance;
pub use softborg_hive as hive;
pub use softborg_ingest as ingest;
pub use softborg_netsim as netsim;
pub use softborg_obs as obs;
pub use softborg_pod as pod;
pub use softborg_program as program;
pub use softborg_shard as shard;
pub use softborg_solver as solver;
pub use softborg_store as store;
pub use softborg_symex as symex;
pub use softborg_trace as trace;
pub use softborg_tree as tree;

#[cfg(test)]
mod tests {
    use super::*;
    use softborg_program::scenarios;

    fn parser_platform(fixes: bool, guidance: bool, seed: u64) -> PlatformConfig {
        let s = scenarios::token_parser();
        PlatformConfig {
            n_pods: 30,
            pod: pod::PodConfig {
                input_range: s.input_range,
                ..pod::PodConfig::default()
            },
            seed,
            fixes_enabled: fixes,
            guidance_enabled: guidance,
            ..PlatformConfig::default()
        }
    }

    #[test]
    fn closed_loop_reduces_parser_failure_rate() {
        let s = scenarios::token_parser();
        // The parser's bugs are rare under uniform inputs; use guidance to
        // find them fast, then fixes to suppress them.
        let mut with = Platform::new(&s.program, parser_platform(true, true, 7));
        with.run(8, 30);
        let history = with.history().to_vec();
        let early: u64 = history[..4].iter().map(|r| r.failures).sum();
        let late: u64 = history[4..].iter().map(|r| r.failures).sum();
        let promoted: u64 = history.iter().map(|r| r.fixes_promoted).sum();
        assert!(promoted > 0, "no fixes were ever promoted");
        assert!(
            late <= early,
            "failures should not increase after fixes: early {early}, late {late}"
        );
        // Control arm: without fixes the failure modes persist.
        let mut without = Platform::new(&s.program, parser_platform(false, true, 7));
        without.run(8, 30);
        let control_total: u64 = without.history().iter().map(|r| r.failures).sum();
        let treated_late: u64 = history[6..].iter().map(|r| r.failures).sum();
        assert!(
            control_total > 0,
            "control arm should keep failing (otherwise the test is vacuous)"
        );
        // After the fixes have landed, the treated arm's tail should be
        // clean (guards avert both parser bugs deterministically).
        assert_eq!(treated_late, 0, "failures persist after fixes: {history:?}");
    }

    #[test]
    fn bank_deadlock_gets_predicted_and_fixed() {
        let s = scenarios::bank_transfer();
        let mut platform = Platform::new(
            &s.program,
            PlatformConfig {
                n_pods: 20,
                pod: pod::PodConfig {
                    input_range: s.input_range,
                    ..pod::PodConfig::default()
                },
                seed: 3,
                ..PlatformConfig::default()
            },
        );
        platform.run(6, 20);
        let history = platform.history();
        let promoted: u64 = history.iter().map(|r| r.fixes_promoted).sum();
        assert!(promoted >= 1, "deadlock gate never promoted: {history:?}");
        // Once the gate is in, deadlocks stop.
        let last = history.last().unwrap();
        assert_eq!(
            last.failures, 0,
            "deadlocks persist in the final round: {history:?}"
        );
    }

    #[test]
    fn guidance_accelerates_coverage() {
        let s = scenarios::token_parser();
        let coverage_after = |guidance: bool| {
            let mut p = Platform::new(&s.program, parser_platform(false, guidance, 11));
            p.run(6, 10);
            p.hive().coverage()
        };
        let guided = coverage_after(true);
        let natural = coverage_after(false);
        assert!(
            guided.distinct_paths >= natural.distinct_paths,
            "guided {guided:?} vs natural {natural:?}"
        );
        assert!(
            guided.frontier_arms <= natural.frontier_arms,
            "guided should shrink the frontier: {guided:?} vs {natural:?}"
        );
    }

    #[test]
    fn proofs_emerge_for_bug_free_triangle() {
        let s = scenarios::triangle();
        let mut platform = Platform::new(
            &s.program,
            PlatformConfig {
                n_pods: 20,
                pod: pod::PodConfig {
                    input_range: s.input_range,
                    ..pod::PodConfig::default()
                },
                hive: hive::HiveConfig {
                    planner: guidance::PlannerConfig {
                        sym: symex::SymConfig {
                            input_box: symex::InputBox::uniform(3, 1, 20),
                            ..symex::SymConfig::default()
                        },
                        max_targets: 32,
                        ..guidance::PlannerConfig::default()
                    },
                    ..hive::HiveConfig::default()
                },
                seed: 5,
                ..PlatformConfig::default()
            },
        );
        platform.run(10, 30);
        let proofs = platform.hive().proofs();
        assert!(!proofs.is_empty(), "no proofs for the triangle program");
        // Certificates verify independently.
        for cert in &proofs {
            softborg_hive::verify(cert, platform.hive().tree()).unwrap();
        }
    }

    #[test]
    fn history_metrics_are_internally_consistent() {
        let s = scenarios::token_parser();
        let mut p = Platform::new(&s.program, parser_platform(true, true, 1));
        let r = p.round(10);
        assert_eq!(r.executions, 30 * 10);
        assert!(r.failure_rate_per_10k >= 0.0);
        assert_eq!(p.history().len(), 1);
        assert_eq!(p.history()[0], r);
    }
}
