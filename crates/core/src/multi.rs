//! The multi-program platform: several pod fleets, one sharded hive.
//!
//! [`Platform`](crate::Platform) closes the quality-feedback loop for a
//! single program. A real deployment recycles information from *many*
//! programs at once, so a [`MultiPlatform`] runs one pod fleet per
//! program and drives every fleet's traffic through the sharded ingest
//! layer (`softborg-shard`): all fleets share **one** decode+reconstruct
//! worker pool, while each program's hive lives on its deterministic
//! shard and sees its own traces in exact submission order.
//!
//! Durability composes with sharding by construction: each shard owns
//! its own `shard-<i>/` directory (journal + snapshot generations), and
//! a round commits in two phases — first the round's frames, promotions,
//! and round record are appended and fsynced to **every** shard journal
//! (phase A), only then may any shard compact into a snapshot (phase B).
//! A crash can therefore leave shards at *different* committed rounds,
//! but never with a snapshot ahead of another shard's journal;
//! [`MultiPlatform::resume`] recovers every shard, takes the *minimum*
//! committed round as the campaign's truth, and truncates any shard that
//! got ahead (those rounds were never acked). The recovered per-shard
//! state is byte-identical to an uninterrupted run at the same committed
//! round.

use crate::platform::{
    chain_dir, decode_pod_states, encode_pod_states, io_err, restore_pod_states, CommitStats,
    DurabilityConfig, DurabilityError, IngestSettings, RoundTelemetry,
};
use softborg_fix::{rank, FixCandidate, LabConfig, TestCase, Verdict};
use softborg_guidance::Directive;
use softborg_hive::journal::{
    self, JournalRecord, REC_ABORT, REC_FRAME, REC_PODS, REC_PROMOTE, REC_ROUND, REC_TOMBSTONE,
    SESSION_PROMOTE, SESSION_ROUND,
};
use softborg_hive::{
    outcome_signature, scrub_campaign, scrub_chained_campaign, scrub_page_dir, FileJournal,
    HiveConfig, HiveSnapshot, JournalStore, LoadReport, PageScrub, ScrubReport, SnapshotSource,
    SnapshotStore,
};
use softborg_obs::{ObsHandles, SpanTimer};
use softborg_pod::{Pod, PodConfig, PodState};
use softborg_program::codec::{self, CodecError};
use softborg_program::{Program, ProgramId};
use softborg_shard::{ShardRunStats, ShardedHive};
use softborg_store::{ChainReport, ChainSource, ChainStore, PageStats, PagedConfig, RecordKind};
use softborg_trace::wire;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// One program's fleet specification: the program plus the pod template
/// its population is built from (each pod gets a derived seed).
#[derive(Debug, Clone)]
pub struct FleetSpec<'p> {
    /// The program this fleet executes.
    pub program: &'p Program,
    /// Template for the fleet's pods.
    pub pod: PodConfig,
}

/// Multi-program platform configuration.
#[derive(Debug, Clone)]
pub struct MultiPlatformConfig {
    /// Pods per program.
    pub n_pods: u32,
    /// Hive shards (each shard serves one or more programs).
    pub n_shards: usize,
    /// Hive configuration (applied to every program's hive).
    pub hive: HiveConfig,
    /// Master seed; pod seeds derive from (seed, lane, pod index).
    pub seed: u64,
    /// Whether hives distribute fixes.
    pub fixes_enabled: bool,
    /// Whether guidance directives are distributed.
    pub guidance_enabled: bool,
    /// Passing cases required before a predicted (zero-failing-case)
    /// deadlock fix may distribute on preservation evidence alone.
    pub min_preservation_cases: usize,
    /// Execution/ingest tuning. `pipelined` is ignored: multi-program
    /// rounds always flow through the sharded pipeline.
    pub ingest: IngestSettings,
    /// Crash-only durability root. Each shard persists under its own
    /// `shard-<i>/` subdirectory of [`DurabilityConfig::dir`].
    pub durability: Option<DurabilityConfig>,
    /// Paged execution-tree storage: each program's tree pages into a
    /// `prog-<id>/` subdirectory of the configured page dir, under the
    /// same resident budget. Byte-identical state with paging on or off.
    pub tree_paging: Option<PagedConfig>,
    /// Telemetry sinks: per-round `multi.*` counters, commit/fsync span
    /// histograms, and `round_committed` events. Passive — shard state
    /// is byte-identical with telemetry on or off.
    pub obs: ObsHandles,
}

impl Default for MultiPlatformConfig {
    fn default() -> Self {
        MultiPlatformConfig {
            n_pods: 20,
            n_shards: 2,
            hive: HiveConfig::default(),
            seed: 0,
            fixes_enabled: true,
            guidance_enabled: true,
            min_preservation_cases: 5,
            ingest: IngestSettings::default(),
            durability: None,
            tree_paging: None,
            obs: ObsHandles::default(),
        }
    }
}

/// One program's slice of a multi-program round.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramRoundReport {
    /// Raw program id.
    pub program: u64,
    /// Executions this fleet performed.
    pub executions: u64,
    /// Failures this fleet observed.
    pub failures: u64,
    /// Fixes promoted for this program.
    pub fixes_promoted: u64,
    /// The program's overlay version after the round.
    pub overlay_version: u64,
    /// Directed (guided) executions in this fleet.
    pub directed: u64,
}

/// Metrics for one multi-program round (aggregate + per program).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiRoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Total executions across all fleets.
    pub executions: u64,
    /// Total failures across all fleets.
    pub failures: u64,
    /// Aggregate failures per 10k executions.
    pub failure_rate_per_10k: f64,
    /// Total fixes promoted across all programs.
    pub fixes_promoted: u64,
    /// Per-program breakdown, in lane (sorted program id) order.
    pub programs: Vec<ProgramRoundReport>,
}

impl MultiRoundReport {
    /// Serializes the report for durable `REC_ROUND` records.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.round);
        codec::put_u64(buf, self.executions);
        codec::put_u64(buf, self.failures);
        codec::put_f64(buf, self.failure_rate_per_10k);
        codec::put_u64(buf, self.fixes_promoted);
        codec::put_u32(buf, self.programs.len() as u32);
        for p in &self.programs {
            codec::put_u64(buf, p.program);
            codec::put_u64(buf, p.executions);
            codec::put_u64(buf, p.failures);
            codec::put_u64(buf, p.fixes_promoted);
            codec::put_u64(buf, p.overlay_version);
            codec::put_u64(buf, p.directed);
        }
    }

    /// Decodes a report written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncated or malformed input.
    pub fn decode(r: &mut codec::Reader<'_>) -> Result<Self, CodecError> {
        let round = r.u64("MultiRoundReport.round")?;
        let executions = r.u64("MultiRoundReport.executions")?;
        let failures = r.u64("MultiRoundReport.failures")?;
        let failure_rate_per_10k = r.f64("MultiRoundReport.failure_rate_per_10k")?;
        let fixes_promoted = r.u64("MultiRoundReport.fixes_promoted")?;
        let n = r.seq_len("MultiRoundReport.programs", 40)?;
        let mut programs = Vec::with_capacity(n);
        for _ in 0..n {
            programs.push(ProgramRoundReport {
                program: r.u64("ProgramRoundReport.program")?,
                executions: r.u64("ProgramRoundReport.executions")?,
                failures: r.u64("ProgramRoundReport.failures")?,
                fixes_promoted: r.u64("ProgramRoundReport.fixes_promoted")?,
                overlay_version: r.u64("ProgramRoundReport.overlay_version")?,
                directed: r.u64("ProgramRoundReport.directed")?,
            });
        }
        Ok(MultiRoundReport {
            round,
            executions,
            failures,
            failure_rate_per_10k,
            fixes_promoted,
            programs,
        })
    }
}

/// What [`MultiPlatform::resume`] found and did on one shard.
#[derive(Debug, Clone)]
pub struct ShardResumeReport {
    /// Shard index.
    pub shard: usize,
    /// How this shard's snapshot load went.
    pub snapshot: LoadReport,
    /// Committed rounds restored from the snapshot alone.
    pub rounds_from_snapshot: u64,
    /// Committed rounds replayed from this shard's journal suffix.
    pub rounds_replayed: u64,
    /// Corrupt/unsynced journal-tail bytes dropped.
    pub wal_tail_dropped: u64,
    /// Intact records discarded because they belong past the campaign's
    /// minimum committed round: an uncommitted partial segment, a round
    /// this shard journaled while another shard's fsync never happened
    /// (the round was never acked), or a suffix disconnected from a
    /// fallback snapshot generation. All are truncated.
    pub records_discarded: u64,
    /// Chain-walk report when [`DurabilityConfig::chain`] is set.
    pub chain: Option<ChainReport>,
    /// Delta records applied on top of this shard's chain full record.
    pub chain_deltas_applied: u64,
}

/// What [`MultiPlatform::resume`] found and did across all shards.
#[derive(Debug, Clone)]
pub struct MultiResumeReport {
    /// The campaign's recovered committed round: the *minimum* across
    /// shards (a round is acked only once every shard fsynced it).
    pub target_round: u64,
    /// Per-shard recovery detail.
    pub shards: Vec<ShardResumeReport>,
}

/// A round's durable frame log: `(lane, seq, frame)` triples mirrored
/// from the sharded ingest path, shared across pod threads.
type FrameLog = Mutex<Vec<(u64, u64, Vec<u8>)>>;

/// One shard's open durable state.
#[derive(Debug)]
struct ShardDurable {
    store: SnapshotStore,
    /// Delta-snapshot chain, open iff [`DurabilityConfig::chain`] is
    /// set.
    chain: Option<ChainStore>,
    journal: FileJournal,
}

/// The live durable half of a multi-program campaign.
#[derive(Debug)]
struct MultiDurableState {
    cfg: DurabilityConfig,
    shards: Vec<ShardDurable>,
    /// Next sequence number for `REC_PROMOTE` records (global across
    /// shards, so promotion order is totally ordered).
    promote_seq: u64,
    /// Per-lane frame floors (`lane → next seq`), snapshotted per shard.
    frame_floors: BTreeMap<u64, u64>,
}

/// One program's fleet: the program, its lane, and its pods.
struct Fleet<'p> {
    id: ProgramId,
    program: &'p Program,
    pods: Vec<Pod<'p>>,
}

/// One fleet's slice of work handed to a
/// [`MultiPlatform::round_driven`] driver.
#[derive(Debug)]
pub struct LaneTask<'a, 'p> {
    /// Lane index (the durable journal session for this fleet's frames).
    pub lane: u64,
    /// The fleet's program id.
    pub program: ProgramId,
    /// The fleet's pods, overlay already distributed.
    pub pods: &'a mut [Pod<'p>],
}

/// What an external driver executed during one
/// [`MultiPlatform::round_driven`] round.
#[derive(Debug, Default)]
pub struct MultiDrivenExecution {
    /// `(executions, failures, directed)` per lane, in lane order — one
    /// entry per [`LaneTask`] handed to the driver.
    pub per_lane: Vec<(u64, u64, u64)>,
    /// Every wire-encoded batch frame produced, as `(lane, seq, frame)`
    /// in the same layout [`MultiPlatform::round`] journals.
    pub frames: Vec<(u64, u64, Vec<u8>)>,
}

/// The multi-program platform. See the [module docs](self).
pub struct MultiPlatform<'p> {
    sharded: ShardedHive<'p>,
    /// Fleets in lane order (sorted by program id) — lane index is the
    /// durable journal session for that program's frames.
    fleets: Vec<Fleet<'p>>,
    config: MultiPlatformConfig,
    round_idx: u64,
    history: Vec<MultiRoundReport>,
    telemetry: Vec<RoundTelemetry>,
    last_run: Option<ShardRunStats>,
    durable: Option<MultiDurableState>,
}

impl<'p> MultiPlatform<'p> {
    /// Builds the in-memory shell: one sharded hive plus one fleet per
    /// program, lanes sorted by program id.
    fn base(specs: &[FleetSpec<'p>], config: MultiPlatformConfig) -> Self {
        let mut specs: Vec<&FleetSpec<'p>> = specs.iter().collect();
        specs.sort_by_key(|s| s.program.id());
        let programs: Vec<&'p Program> = specs.iter().map(|s| s.program).collect();
        let sharded = ShardedHive::new(&programs, config.n_shards, &config.hive)
            .expect("sharded hive placement failed");
        let fleets = specs
            .iter()
            .enumerate()
            .map(|(lane, spec)| {
                let pods = (0..config.n_pods)
                    .map(|i| {
                        let mut pc = spec.pod.clone();
                        pc.seed = config
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((lane as u64) << 20)
                            .wrapping_add(u64::from(i) + 1);
                        Pod::new(spec.program, pc)
                    })
                    .collect();
                Fleet {
                    id: spec.program.id(),
                    program: spec.program,
                    pods,
                }
            })
            .collect();
        MultiPlatform {
            sharded,
            fleets,
            config,
            round_idx: 0,
            history: Vec::new(),
            telemetry: Vec::new(),
            last_run: None,
            durable: None,
        }
    }

    /// Moves every hive's tree behind the paged store (when
    /// [`MultiPlatformConfig::tree_paging`] is set), one `prog-<id>/`
    /// page directory per program.
    fn enable_tree_paging(&mut self) -> Result<(), DurabilityError> {
        let Some(root) = self.config.tree_paging.clone() else {
            return Ok(());
        };
        for (id, hive) in self.sharded.hives_mut() {
            let mut cfg = root.clone();
            cfg.dir = root.dir.join(format!("prog-{}", id.0));
            hive.enable_tree_paging(cfg)
                .map_err(|e| io_err("page-store", &e))?;
        }
        Ok(())
    }

    /// Builds a multi-program platform. With durability configured this
    /// starts a *fresh* campaign and panics if any shard directory
    /// already holds campaign state (use [`try_new`](Self::try_new) to
    /// handle the error, or [`resume`](Self::resume) to continue).
    ///
    /// # Panics
    ///
    /// On duplicate programs, zero shards, or durable initialization
    /// failure.
    pub fn new(specs: &[FleetSpec<'p>], config: MultiPlatformConfig) -> Self {
        Self::try_new(specs, config).expect("durable multi-platform initialization failed")
    }

    /// Fallible [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::CampaignExists`] when any shard directory
    /// already holds a snapshot or non-empty journal;
    /// [`DurabilityError::Io`] when a shard's journal or snapshot store
    /// cannot be opened.
    pub fn try_new(
        specs: &[FleetSpec<'p>],
        config: MultiPlatformConfig,
    ) -> Result<Self, DurabilityError> {
        let mut platform = Self::base(specs, config);
        platform.enable_tree_paging()?;
        if let Some(dcfg) = platform.config.durability.clone() {
            let mut shards = Vec::with_capacity(platform.sharded.n_shards());
            for i in 0..platform.sharded.n_shards() {
                let dir = dcfg.dir.join(format!("shard-{i}"));
                let store = SnapshotStore::open(&dir).map_err(|e| io_err("snapshot-dir", &e))?;
                if store.snap_path().exists() || store.prev_path().exists() {
                    return Err(DurabilityError::CampaignExists(dir));
                }
                let journal =
                    FileJournal::open(store.wal_path()).map_err(|e| io_err("wal-open", &e))?;
                if !journal.is_empty() {
                    return Err(DurabilityError::CampaignExists(dir));
                }
                let chain = if dcfg.chain.is_some() {
                    let chain =
                        ChainStore::open(&chain_dir(&dir)).map_err(|e| io_err("chain-dir", &e))?;
                    if chain.head_generation().is_some() {
                        return Err(DurabilityError::CampaignExists(dir));
                    }
                    Some(chain)
                } else {
                    None
                };
                shards.push(ShardDurable {
                    store,
                    chain,
                    journal,
                });
            }
            platform.durable = Some(MultiDurableState {
                cfg: dcfg,
                shards,
                promote_seq: 0,
                frame_floors: BTreeMap::new(),
            });
        }
        Ok(platform)
    }

    /// Resumes (or cold-starts) a durable multi-program campaign.
    ///
    /// Every shard recovers independently — newest valid snapshot
    /// (falling back a generation if torn), then journal replay — and
    /// the campaign's committed round is the **minimum** across shards:
    /// a round was acked only once phase A fsynced it on every shard, so
    /// any shard past the minimum holds rounds that were never acked.
    /// Those suffixes (and any uncommitted partial segment) are
    /// truncated, leaving every shard byte-identical to the
    /// uninterrupted run at the recovered round.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] without a durability config;
    /// [`DurabilityError::Io`] on filesystem failures;
    /// [`DurabilityError::Corrupt`] when a checksummed record decodes to
    /// garbage.
    pub fn resume(
        specs: &[FleetSpec<'p>],
        config: MultiPlatformConfig,
    ) -> Result<(Self, MultiResumeReport), DurabilityError> {
        let dcfg = config
            .durability
            .clone()
            .ok_or(DurabilityError::NotConfigured)?;
        let mut platform = Self::base(specs, config);
        let n_shards = platform.sharded.n_shards();
        let lanes: Vec<ProgramId> = platform.fleets.iter().map(|f| f.id).collect();

        // Pass 1: load every shard's snapshot + journal and count its
        // committed rounds (snapshot rounds + connected ROUND records).
        struct ShardScan {
            store: SnapshotStore,
            chain: Option<ChainStore>,
            chain_load: Option<softborg_store::ChainLoad>,
            journal: FileJournal,
            /// The authoritative checkpoint meta: the loaded snapshot, or
            /// in chain mode the decoded *last* chain record (its
            /// sessions/wal-coverage/app_meta describe the chain head).
            snap: Option<HiveSnapshot>,
            load: LoadReport,
            wal: Vec<u8>,
            replay_from: usize,
            records: Vec<JournalRecord>,
            tail_dropped: u64,
            snap_round: u64,
            committed: u64,
        }
        let mut scans = Vec::with_capacity(n_shards);
        for i in 0..n_shards {
            let dir = dcfg.dir.join(format!("shard-{i}"));
            let store = SnapshotStore::open(&dir).map_err(|e| io_err("snapshot-dir", &e))?;
            let (snap, load, chain_load, chain) = if dcfg.chain.is_some() {
                let chain =
                    ChainStore::open(&chain_dir(&dir)).map_err(|e| io_err("chain-dir", &e))?;
                let cl = chain.load();
                let snap = match cl.records.last() {
                    Some(rec) => Some(HiveSnapshot::decode(&rec.payload).map_err(|e| {
                        DurabilityError::Corrupt(format!(
                            "shard {i} chain record {}: {e}",
                            rec.generation
                        ))
                    })?),
                    None => {
                        if store.snap_path().exists() || store.prev_path().exists() {
                            return Err(DurabilityError::Corrupt(format!(
                                "shard {i}: chain mode found no chain records but a hive.snap \
                                 exists (legacy campaign); resume it without chain settings"
                            )));
                        }
                        None
                    }
                };
                let load = LoadReport {
                    source: match cl.report.source {
                        ChainSource::Primary => SnapshotSource::Primary,
                        ChainSource::Fallback => SnapshotSource::Fallback,
                        ChainSource::None => SnapshotSource::None,
                    },
                    primary_error: None,
                    fallback_error: None,
                };
                (snap, load, Some(cl), Some(chain))
            } else {
                let (snap, load) = store.load();
                (snap, load, None, None)
            };
            let journal =
                FileJournal::open(store.wal_path()).map_err(|e| io_err("wal-open", &e))?;
            let wal = journal.read().map_err(|e| io_err("wal-read", &e))?;
            let (snap_round, replay_from) = match &snap {
                Some(s) => {
                    let (round, _, _) = decode_multi_app_meta(&s.app_meta)?;
                    (round, s.replay_offset(&wal))
                }
                None => (0, 0),
            };
            let (records, scan) = journal::scan(&wal[replay_from..]);
            if let Some(err) = scan.tail_error {
                platform.config.obs.recorder.warn_or_ops(
                    "multi.resume",
                    "wal_tail_dropped",
                    &[
                        ("shard", i as u64),
                        ("tail_bytes", scan.tail_dropped as u64),
                        ("intact_records", scan.records as u64),
                    ],
                    format_args!(
                        "shard {i} resume dropped {} journal tail byte(s) after {} intact \
                         record(s): {err}",
                        scan.tail_dropped, scan.records
                    ),
                );
            }
            let mut committed = snap_round;
            let mut expected = snap_round;
            for rec in &records {
                match rec.kind {
                    REC_ROUND => {
                        let mut r = codec::Reader::new(&rec.frame);
                        let report = MultiRoundReport::decode(&mut r)
                            .map_err(|e| DurabilityError::Corrupt(format!("round record: {e}")))?;
                        if report.round != expected {
                            // Disconnected suffix (snapshot generation
                            // fell back); nothing past here counts.
                            break;
                        }
                        expected += 1;
                        committed = expected;
                    }
                    REC_FRAME | REC_PROMOTE | REC_PODS | REC_TOMBSTONE | REC_ABORT => {}
                    other => {
                        return Err(DurabilityError::Corrupt(format!(
                            "unknown journal record kind {other}"
                        )));
                    }
                }
            }
            scans.push(ShardScan {
                store,
                chain,
                chain_load,
                journal,
                snap,
                load,
                wal,
                replay_from,
                records,
                tail_dropped: scan.tail_dropped as u64,
                snap_round,
                committed,
            });
        }
        let target = scans.iter().map(|s| s.committed).min().unwrap_or(0);

        // Pass 2: restore each shard's snapshot state and replay its
        // journal up to (exactly) the target round, truncating whatever
        // lies beyond — ahead rounds, partial segments, damaged tails.
        let mut shard_reports = Vec::with_capacity(n_shards);
        let mut durable_shards = Vec::with_capacity(n_shards);
        let mut promote_seq = 0u64;
        let mut frame_floors: BTreeMap<u64, u64> = BTreeMap::new();
        let mut recovered_history: Option<Vec<MultiRoundReport>> = None;
        // Per-lane durable pod populations: seeded from each shard's
        // snapshot, then overwritten by committed `REC_PODS` records
        // replayed from that shard's journal suffix.
        let mut lane_pod_states: BTreeMap<u64, Vec<PodState>> = BTreeMap::new();
        for (shard, mut sc) in scans.into_iter().enumerate() {
            if sc.snap_round > target {
                // Phase B runs only after phase A committed on every
                // shard, so a snapshot can never be ahead of the
                // campaign minimum.
                return Err(DurabilityError::Corrupt(format!(
                    "shard {shard} snapshot is at round {} but the campaign minimum is {target}",
                    sc.snap_round
                )));
            }
            let mut history = Vec::new();
            let mut chain_deltas_applied = 0u64;
            if let Some(load) = &sc.chain_load {
                // Chain mode: rebuild the shard from the oldest full
                // record, then fold every delta on top in generation
                // order. Meta (sessions, wal coverage, pods) comes from
                // the already-decoded chain head in `sc.snap`.
                if let Some((first, rest)) = load.records.split_first() {
                    let full = HiveSnapshot::decode(&first.payload).map_err(|e| {
                        DurabilityError::Corrupt(format!(
                            "shard {shard} chain record {}: {e}",
                            first.generation
                        ))
                    })?;
                    platform
                        .sharded
                        .decode_shard_state(shard, &full.state, &platform.config.hive)
                        .map_err(|e| {
                            DurabilityError::Corrupt(format!("shard {shard} state: {e}"))
                        })?;
                    let skip_last = dcfg.chain.as_ref().is_some_and(|c| c.skip_last_delta);
                    for (k, rec) in rest.iter().enumerate() {
                        if skip_last && k + 1 == rest.len() {
                            // Planted bug (`skip_delta` canary): the
                            // head's metadata (already in `sc.snap`) is
                            // trusted while its state changes are
                            // silently dropped.
                            continue;
                        }
                        let delta = HiveSnapshot::decode(&rec.payload).map_err(|e| {
                            DurabilityError::Corrupt(format!(
                                "shard {shard} chain record {}: {e}",
                                rec.generation
                            ))
                        })?;
                        platform
                            .sharded
                            .apply_shard_state_delta(shard, &delta.state)
                            .map_err(|e| {
                                DurabilityError::Corrupt(format!(
                                    "shard {shard} chain delta {}: {e}",
                                    rec.generation
                                ))
                            })?;
                        chain_deltas_applied += 1;
                    }
                }
            } else if let Some(s) = &sc.snap {
                platform
                    .sharded
                    .decode_shard_state(shard, &s.state, &platform.config.hive)
                    .map_err(|e| DurabilityError::Corrupt(format!("shard {shard} state: {e}")))?;
            }
            if let Some(s) = &sc.snap {
                let (_, h, snap_pods) = decode_multi_app_meta(&s.app_meta)?;
                history = h;
                for (lane, states) in snap_pods {
                    lane_pod_states.insert(lane, states);
                }
                for (&session, &floor) in &s.sessions {
                    let f = frame_floors.entry(session).or_insert(0);
                    *f = (*f).max(floor);
                }
            }
            let mut rounds_applied = sc.snap_round;
            let mut seg_frames: Vec<&JournalRecord> = Vec::new();
            let mut seg_promotes: Vec<&JournalRecord> = Vec::new();
            let mut seg_pods: BTreeMap<u64, &JournalRecord> = BTreeMap::new();
            let mut offset = sc.replay_from;
            // End of the last fully-applied round (the truncation
            // boundary if anything uncommitted follows).
            let mut boundary = sc.replay_from;
            let mut applied_records = 0usize;
            for (idx, rec) in sc.records.iter().enumerate() {
                if rounds_applied == target {
                    break;
                }
                let rec_end = offset + rec.encoded_len();
                match rec.kind {
                    REC_FRAME => seg_frames.push(rec),
                    REC_PROMOTE => seg_promotes.push(rec),
                    REC_PODS => {
                        seg_pods.insert(rec.session, rec);
                    }
                    REC_TOMBSTONE => {}
                    REC_ABORT => {
                        // Fenced by an earlier recovery: never apply.
                        seg_frames.clear();
                        seg_promotes.clear();
                        seg_pods.clear();
                        boundary = rec_end;
                        applied_records = idx + 1;
                    }
                    REC_ROUND => {
                        let mut r = codec::Reader::new(&rec.frame);
                        let report = MultiRoundReport::decode(&mut r)
                            .map_err(|e| DurabilityError::Corrupt(format!("round record: {e}")))?;
                        if report.round != rounds_applied {
                            break; // disconnected: truncated below
                        }
                        seg_frames.sort_by_key(|r| (r.session, r.seq));
                        for fr in seg_frames.drain(..) {
                            let lane = usize::try_from(fr.session)
                                .ok()
                                .filter(|&l| l < lanes.len());
                            let Some(lane) = lane else {
                                return Err(DurabilityError::Corrupt(format!(
                                    "frame record on unknown lane {}",
                                    fr.session
                                )));
                            };
                            let traces = wire::decode_batch(&fr.frame).map_err(|e| {
                                DurabilityError::Corrupt(format!("frame batch: {e}"))
                            })?;
                            let hive = platform
                                .sharded
                                .hive_mut(lanes[lane])
                                .expect("lane program is placed");
                            for trace in &traces {
                                hive.ingest(trace);
                            }
                            let floor = frame_floors.entry(fr.session).or_insert(0);
                            *floor = (*floor).max(fr.seq + 1);
                        }
                        for pr in seg_promotes.drain(..) {
                            let mut r = codec::Reader::new(&pr.frame);
                            let program = ProgramId(
                                r.u64("promote.program")
                                    .map_err(|e| DurabilityError::Corrupt(e.to_string()))?,
                            );
                            let signature = r
                                .str("promote.signature")
                                .map_err(|e| DurabilityError::Corrupt(e.to_string()))?
                                .to_string();
                            let overlay = softborg_program::Overlay::decode(&mut r)
                                .map_err(|e| DurabilityError::Corrupt(e.to_string()))?;
                            platform
                                .sharded
                                .hive_mut(program)
                                .map_err(|e| {
                                    DurabilityError::Corrupt(format!("promote record: {e}"))
                                })?
                                .promote(
                                    &signature,
                                    &FixCandidate {
                                        overlay,
                                        description: String::new(),
                                    },
                                );
                            promote_seq = promote_seq.max(pr.seq + 1);
                        }
                        if platform.config.guidance_enabled {
                            for id in platform.sharded.map().programs_on(shard) {
                                let _ = platform
                                    .sharded
                                    .hive_mut(id)
                                    .expect("placed program")
                                    .guidance();
                            }
                        }
                        for (lane, pr) in std::mem::take(&mut seg_pods) {
                            lane_pod_states.insert(lane, decode_pod_states(&pr.frame)?);
                        }
                        rounds_applied += 1;
                        history.push(report);
                        boundary = rec_end;
                        applied_records = idx + 1;
                    }
                    other => {
                        return Err(DurabilityError::Corrupt(format!(
                            "unknown journal record kind {other}"
                        )));
                    }
                }
                offset = rec_end;
            }
            let records_discarded = (sc.records.len() - applied_records) as u64;
            if (boundary as u64) < sc.wal.len() as u64 {
                if records_discarded > 0 {
                    platform.config.obs.recorder.warn_or_ops(
                        "multi.resume",
                        "records_truncated",
                        &[
                            ("shard", shard as u64),
                            ("records", records_discarded),
                            ("target_round", target),
                        ],
                        format_args!(
                            "shard {shard} resume truncating {records_discarded} journal \
                             record(s) past committed round {target}"
                        ),
                    );
                }
                sc.journal.truncate(boundary as u64)?;
            }
            if rounds_applied != target {
                return Err(DurabilityError::Corrupt(format!(
                    "shard {shard} replayed to round {rounds_applied} but the campaign minimum \
                     is {target}"
                )));
            }
            if recovered_history.is_none() {
                recovered_history = Some(history);
            }
            shard_reports.push(ShardResumeReport {
                shard,
                snapshot: sc.load,
                chain: sc.chain_load.map(|l| l.report),
                chain_deltas_applied,
                rounds_from_snapshot: sc.snap_round,
                rounds_replayed: rounds_applied - sc.snap_round,
                wal_tail_dropped: sc.tail_dropped,
                records_discarded,
            });
            durable_shards.push(ShardDurable {
                store: sc.store,
                chain: sc.chain,
                journal: sc.journal,
            });
        }

        // Paging attaches only after every shard's state is final:
        // decode_shard_state replaces whole hives, so an earlier enable
        // would be silently discarded.
        platform.enable_tree_paging()?;

        // Process equivalence: install every fleet's freshest committed
        // pod images (journal beats snapshot; lanes with no durable
        // record — a cold campaign — keep their seed-derived round-0
        // population).
        for (lane, fleet) in platform.fleets.iter_mut().enumerate() {
            if let Some(states) = lane_pod_states.remove(&(lane as u64)) {
                restore_pod_states(&mut fleet.pods, states)?;
            }
        }
        if let Some((&lane, _)) = lane_pod_states.iter().next() {
            return Err(DurabilityError::Corrupt(format!(
                "durable pod states reference unknown lane {lane}"
            )));
        }

        platform.round_idx = target;
        platform.history = recovered_history.unwrap_or_default();
        platform.durable = Some(MultiDurableState {
            cfg: dcfg,
            shards: durable_shards,
            promote_seq,
            frame_floors,
        });
        Ok((
            platform,
            MultiResumeReport {
                target_round: target,
                shards: shard_reports,
            },
        ))
    }

    /// The sharded hive (read access for experiments).
    pub fn sharded(&self) -> &ShardedHive<'p> {
        &self.sharded
    }

    /// Program ids in lane order (lane index = durable frame session).
    pub fn programs(&self) -> Vec<ProgramId> {
        self.fleets.iter().map(|f| f.id).collect()
    }

    /// All round reports so far.
    pub fn history(&self) -> &[MultiRoundReport] {
        &self.history
    }

    /// Rounds committed so far.
    pub fn committed_rounds(&self) -> u64 {
        self.round_idx
    }

    /// Sharded-run statistics from the most recent round, if any.
    pub fn last_run(&self) -> Option<&ShardRunStats> {
        self.last_run.as_ref()
    }

    /// Paged-tree counters summed over every program's execution tree
    /// (all zeros when [`MultiPlatformConfig::tree_paging`] is off).
    pub fn page_stats(&self) -> PageStats {
        let mut total = PageStats::default();
        for (_, hive) in self.sharded.hives() {
            let s = hive.tree().page_stats();
            total.faults += s.faults;
            total.evictions += s.evictions;
            total.writes += s.writes;
            total.pages_trusted += s.pages_trusted;
            total.resident_pages += s.resident_pages;
            total.total_pages += s.total_pages;
            total.total_items += s.total_items;
            total.resident_items += s.resident_items;
        }
        total
    }

    /// Per-round telemetry for every round this *process* ran, parallel
    /// to [`history`](Self::history) but never journaled (resumed rounds
    /// therefore have no entries — see [`RoundTelemetry`]).
    pub fn round_telemetry(&self) -> &[RoundTelemetry] {
        &self.telemetry
    }

    /// The configuration the platform was built with (telemetry sinks
    /// included — the simulator paths use this to retime the attached
    /// flight recorder onto virtual time).
    pub fn config(&self) -> &MultiPlatformConfig {
        &self.config
    }

    /// Serialized state of shard `shard` — the byte-identity invariant
    /// checked by the kill/restart harness.
    ///
    /// # Panics
    ///
    /// On an out-of-range shard index.
    pub fn shard_state(&self, shard: usize) -> Vec<u8> {
        self.sharded
            .encode_shard_state(shard)
            .expect("shard index in range")
    }

    /// Exports every fleet's durable pod images, in lane order — the
    /// pod half of the process-equivalence invariant checked by the
    /// kill/restart harness.
    pub fn export_pod_states(&self) -> Vec<Vec<PodState>> {
        self.fleets
            .iter()
            .map(|f| f.pods.iter().map(Pod::export_state).collect())
            .collect()
    }

    /// Scrubs every shard's durable files for bit rot *before*
    /// resuming, in shard order — the multi-shard analogue of
    /// [`Platform::scrub`](crate::Platform::scrub). Returns one
    /// [`ScrubReport`] per shard.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] without a durability config;
    /// otherwise the first failing shard's error (I/O, or a shard whose
    /// durable data was entirely destroyed).
    pub fn scrub(config: &MultiPlatformConfig) -> Result<Vec<ScrubReport>, DurabilityError> {
        let dcfg = config
            .durability
            .as_ref()
            .ok_or(DurabilityError::NotConfigured)?;
        let mut reports = Vec::with_capacity(config.n_shards);
        for i in 0..config.n_shards {
            let dir = dcfg.dir.join(format!("shard-{i}"));
            let store = SnapshotStore::open(&dir).map_err(|e| io_err("snapshot-dir", &e))?;
            reports.push(if dcfg.chain.is_some() {
                let chain =
                    ChainStore::open(&chain_dir(&dir)).map_err(|e| io_err("chain-dir", &e))?;
                scrub_chained_campaign(&store, &chain, &config.obs.recorder)?
            } else {
                scrub_campaign(&store, &config.obs.recorder)?
            });
        }
        // Page stores are per program (`prog-<id>/` under the paging
        // root), not per shard; their merged verdict rides on the first
        // shard's report.
        if let Some(pcfg) = &config.tree_paging {
            let mut merged = PageScrub {
                pages_valid: 0,
                quarantined: Vec::new(),
            };
            let mut prog_dirs: Vec<std::path::PathBuf> = match std::fs::read_dir(&pcfg.dir) {
                Ok(entries) => entries
                    .filter_map(Result::ok)
                    .map(|e| e.path())
                    .filter(|p| {
                        p.is_dir()
                            && p.file_name()
                                .is_some_and(|n| n.to_string_lossy().starts_with("prog-"))
                    })
                    .collect(),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
                Err(e) => return Err(io_err("page-root", &e)),
            };
            prog_dirs.sort();
            for dir in prog_dirs {
                let sub = scrub_page_dir(&dir, &config.obs.recorder)?;
                merged.pages_valid += sub.pages_valid;
                let prefix = dir
                    .file_name()
                    .map(|n| n.to_string_lossy().into_owned())
                    .unwrap_or_default();
                merged
                    .quarantined
                    .extend(sub.quarantined.into_iter().map(|f| format!("{prefix}/{f}")));
            }
            if let Some(first) = reports.first_mut() {
                first.pages = Some(merged);
            }
        }
        Ok(reports)
    }

    /// Advances one round: distribute overlays, execute every fleet
    /// through the sharded pipeline, validate and promote fixes per
    /// program, distribute guidance, and (when durable) commit the round
    /// to every shard journal before returning the report.
    pub fn round(&mut self, execs_per_pod: u32) -> MultiRoundReport {
        // 1. Distribute each program's current overlay to its fleet.
        self.distribute_overlays();

        // 2. Execute all fleets through the shared sharded pipeline.
        let frame_log = self
            .durable
            .is_some()
            .then(|| Mutex::new(Vec::<(u64, u64, Vec<u8>)>::new()));
        let per_lane = self.execute_sharded(execs_per_pod, frame_log.as_ref());
        let frames = frame_log
            .map(|m| m.into_inner().expect("frame log poisoned"))
            .unwrap_or_default();

        // 3-6. Fix pipelines, guidance, report, durable commit.
        self.finish_round(per_lane, frames)
    }

    /// Advances one round with execution *driven from outside*, the
    /// multi-program counterpart of
    /// [`Platform::round_driven`](crate::Platform::round_driven):
    /// `driver` receives one [`LaneTask`] per fleet (overlays already
    /// distributed) plus the configured batch size, runs the pods
    /// however it likes, and returns per-lane counters plus every
    /// wire-encoded batch frame as `(lane, seq, frame)` triples in the
    /// pre-partitioned per-lane sequence layout (pod `j` owns slots
    /// `j*k..(j+1)*k`, `k = ceil(execs_per_pod / batch)`).
    ///
    /// Frames are ingested in `(lane, seq)` order — each lane's order is
    /// exactly the sharded merger's release order and the durable resume
    /// replay order — then the identical fix / guidance / report /
    /// commit pipeline runs.
    ///
    /// # Panics
    ///
    /// Panics when the driver returns the wrong number of per-lane
    /// entries, an out-of-range lane, or a frame that fails wire
    /// validation — driver bugs, not input conditions.
    pub fn round_driven<F>(&mut self, driver: F) -> MultiRoundReport
    where
        F: for<'a> FnOnce(Vec<LaneTask<'a, 'p>>, u64) -> MultiDrivenExecution,
    {
        self.distribute_overlays();
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let n_lanes = self.fleets.len();
        let tasks: Vec<LaneTask<'_, 'p>> = self
            .fleets
            .iter_mut()
            .enumerate()
            .map(|(lane, fleet)| LaneTask {
                lane: lane as u64,
                program: fleet.id,
                pods: &mut fleet.pods,
            })
            .collect();
        let drv = driver(tasks, batch);
        assert_eq!(
            drv.per_lane.len(),
            n_lanes,
            "driver must report one (executions, failures, directed) entry per lane"
        );
        let mut frames = drv.frames;
        frames.sort_by_key(|&(lane, seq, _)| (lane, seq));
        for (lane, _, frame) in &frames {
            let id = self.fleets[*lane as usize].id;
            let traces = wire::decode_batch(frame).expect("driver produced a corrupt frame");
            let hive = self.sharded.hive_mut(id).expect("fleet program is placed");
            for trace in &traces {
                hive.ingest(trace);
            }
        }
        let frames = if self.durable.is_some() {
            frames
        } else {
            Vec::new()
        };
        self.finish_round(drv.per_lane, frames)
    }

    /// Step 1 of a round: push each program's current overlay to its
    /// fleet.
    fn distribute_overlays(&mut self) {
        if self.config.fixes_enabled {
            for fleet in &mut self.fleets {
                let (overlay, version) = {
                    let (o, v) = self
                        .sharded
                        .hive(fleet.id)
                        .expect("fleet program is placed")
                        .current_overlay();
                    (o.clone(), v)
                };
                for pod in &mut fleet.pods {
                    pod.install_fix(overlay.clone(), version);
                }
            }
        }
    }

    /// Steps 3–6 of a round, shared by [`round`](Self::round) and
    /// [`round_driven`](Self::round_driven): fix pipelines, guidance,
    /// report, durable two-phase commit.
    fn finish_round(
        &mut self,
        per_lane: Vec<(u64, u64, u64)>,
        frames: Vec<(u64, u64, Vec<u8>)>,
    ) -> MultiRoundReport {
        // 3. Per-program fix pipeline. Proposals from every program are
        //    validated concurrently on scoped threads (each against its
        //    own program's round-start overlay), then promoted
        //    sequentially in (lane, proposal) order — deterministic
        //    regardless of scheduling, and replayed from recorded
        //    promotion decisions on resume.
        let mut promoted: Vec<(ProgramId, String, softborg_program::Overlay)> = Vec::new();
        let mut fixes_by_lane = vec![0u64; self.fleets.len()];
        if self.config.fixes_enabled {
            struct Trial {
                lane: usize,
                signature: String,
                candidates: Vec<FixCandidate>,
                failing: Vec<TestCase>,
                passing: Vec<TestCase>,
                base: softborg_program::Overlay,
            }
            let mut trials: Vec<Trial> = Vec::new();
            for (lane, fleet) in self.fleets.iter().enumerate() {
                let hive = self
                    .sharded
                    .hive(fleet.id)
                    .expect("fleet program is placed");
                let base = hive.current_overlay().0.clone();
                for proposal in hive.propose_fixes() {
                    let failing: Vec<TestCase> = fleet
                        .pods
                        .iter()
                        .flat_map(|p| p.failing_cases())
                        .filter(|(_, o)| {
                            outcome_signature(o).as_deref() == Some(proposal.signature.as_str())
                        })
                        .map(|(c, _)| c.clone())
                        .take(16)
                        .collect();
                    let passing: Vec<TestCase> = fleet
                        .pods
                        .iter()
                        .flat_map(|p| p.passing_cases())
                        .take(32)
                        .cloned()
                        .collect();
                    trials.push(Trial {
                        lane,
                        signature: proposal.signature,
                        candidates: proposal.candidates,
                        failing,
                        passing,
                        base: base.clone(),
                    });
                }
            }
            let fleets = &self.fleets;
            let winners: Vec<_> = std::thread::scope(|s| {
                let handles: Vec<_> = trials
                    .iter()
                    .map(|t| {
                        let program = fleets[t.lane].program;
                        s.spawn(move || {
                            rank(
                                program,
                                &t.base,
                                &t.candidates,
                                &t.failing,
                                &t.passing,
                                LabConfig::default(),
                            )
                            .into_iter()
                            .next()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial validation thread panicked"))
                    .collect()
            });
            for (t, winner) in trials.iter().zip(winners) {
                let Some((candidate, validation)) = winner else {
                    continue;
                };
                let distribute = match validation.verdict {
                    Verdict::Distribute => true,
                    Verdict::Reject | Verdict::Suggest => {
                        t.signature.starts_with("lock-cycle:")
                            && t.failing.is_empty()
                            && validation.passing_total as usize
                                >= self.config.min_preservation_cases
                            && validation.passing_preserved == validation.passing_total
                    }
                };
                if distribute {
                    let id = self.fleets[t.lane].id;
                    self.sharded
                        .hive_mut(id)
                        .expect("fleet program is placed")
                        .promote(&t.signature, &candidate);
                    if self.durable.is_some() {
                        promoted.push((id, t.signature.clone(), candidate.overlay.clone()));
                    }
                    fixes_by_lane[t.lane] += 1;
                }
            }
        }

        // 4. Guidance, per program.
        if self.config.guidance_enabled {
            for fleet in &mut self.fleets {
                let (plan, _stats) = self
                    .sharded
                    .hive_mut(fleet.id)
                    .expect("fleet program is placed")
                    .guidance();
                if !plan.directives.is_empty() {
                    let n = fleet.pods.len();
                    for (i, d) in plan.directives.into_iter().enumerate() {
                        match d {
                            Directive::InputSeed { .. } => {
                                for k in 0..3usize {
                                    fleet.pods[(i * 3 + k) % n].receive_guidance([d.clone()]);
                                }
                            }
                            other => {
                                fleet.pods[i % n].receive_guidance([other]);
                            }
                        }
                    }
                }
            }
        }

        // 5. Report.
        let programs: Vec<ProgramRoundReport> = self
            .fleets
            .iter()
            .enumerate()
            .map(|(lane, fleet)| {
                let (e, f, d) = per_lane[lane];
                ProgramRoundReport {
                    program: fleet.id.0,
                    executions: e,
                    failures: f,
                    fixes_promoted: fixes_by_lane[lane],
                    overlay_version: self
                        .sharded
                        .hive(fleet.id)
                        .expect("fleet program is placed")
                        .current_overlay()
                        .1,
                    directed: d,
                }
            })
            .collect();
        let executions: u64 = programs.iter().map(|p| p.executions).sum();
        let failures: u64 = programs.iter().map(|p| p.failures).sum();
        let report = MultiRoundReport {
            round: self.round_idx,
            executions,
            failures,
            failure_rate_per_10k: if executions == 0 {
                0.0
            } else {
                failures as f64 * 10_000.0 / executions as f64
            },
            fixes_promoted: fixes_by_lane.iter().sum(),
            programs,
        };
        self.round_idx += 1;
        self.history.push(report.clone());

        // 6. Durable two-phase commit.
        let obs = self.config.obs.clone();
        let clock = obs.span_clock();
        let commit_hist = obs
            .registry
            .as_ref()
            .map(|r| r.histogram("multi.round_commit_ns"));
        let frames_journaled = frames.len() as u64;
        let promotions_journaled = promoted.len() as u64;
        let commit_span = SpanTimer::start_if(clock.as_ref(), &commit_hist);
        let commit = self
            .commit_round(&report, frames, &promoted)
            .expect("durable round commit failed");
        let commit_ns = commit_span.map_or(0, SpanTimer::stop);
        self.telemetry.push(RoundTelemetry {
            round: report.round,
            commit_ns,
            fsync_ns: commit.fsync_ns,
            frames_journaled,
            promotions_journaled,
            compacted: commit.compacted,
            checkpoint_ns: commit.checkpoint_ns,
            checkpoint_bytes: commit.checkpoint_bytes,
        });
        if let Some(reg) = obs.registry.as_ref() {
            reg.counter("multi.rounds").incr();
            reg.counter("multi.executions").add(report.executions);
            reg.counter("multi.failures").add(report.failures);
            reg.counter("multi.fixes_promoted")
                .add(report.fixes_promoted);
        }
        // Content-determined fields only, so events_hash stays replay-
        // and host-stable.
        obs.recorder.info(
            "multi",
            "round_committed",
            &[
                ("round", report.round),
                ("executions", report.executions),
                ("failures", report.failures),
                ("fixes_promoted", report.fixes_promoted),
            ],
            format_args!(
                "round {} committed: {} executions, {} failures, {} fix(es) promoted",
                report.round, report.executions, report.failures, report.fixes_promoted
            ),
        );
        report
    }

    /// Runs `rounds` rounds and returns the full history.
    pub fn run(&mut self, rounds: u32, execs_per_pod: u32) -> &[MultiRoundReport] {
        for _ in 0..rounds {
            self.round(execs_per_pod);
        }
        self.history()
    }

    /// Executes every fleet's pods on scoped threads, submitting batch
    /// frames into pre-partitioned per-program sequence slots (pod `j`
    /// of a fleet owns slots `j*k..(j+1)*k`), so each program's merge
    /// order is pod-major — byte-identical to a serial per-program loop
    /// — regardless of thread scheduling. Returns `(executions,
    /// failures, directed)` per lane.
    fn execute_sharded(
        &mut self,
        execs_per_pod: u32,
        frame_log: Option<&FrameLog>,
    ) -> Vec<(u64, u64, u64)> {
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let n_lanes = self.fleets.len();
        let MultiPlatform {
            sharded,
            fleets,
            config,
            last_run,
            ..
        } = self;
        let mut units: Vec<(u64, ProgramId, u64, &mut Pod<'p>)> = Vec::new();
        for (lane, fleet) in fleets.iter_mut().enumerate() {
            for (j, pod) in fleet.pods.iter_mut().enumerate() {
                units.push((lane as u64, fleet.id, j as u64, pod));
            }
        }
        let threads = config.ingest.pod_threads.max(1).min(units.len().max(1));
        let chunk_size = units.len().div_ceil(threads).max(1);
        let mut cfg = config.ingest.pipeline.clone();
        if !cfg.obs.is_enabled() {
            // One attach point: platform-level telemetry flows into the
            // sharded ingest stage unless the pipeline has its own sinks.
            cfg.obs = config.obs.clone();
        }
        let (per_unit, stats) = sharded.ingest_frames(&cfg, move |tx| {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for chunk in units.chunks_mut(chunk_size) {
                    let tx = tx.clone();
                    handles.push(s.spawn(move || {
                        let mut out: Vec<(u64, u64, u64, u64)> = Vec::with_capacity(chunk.len());
                        for (lane, id, pod_index, pod) in chunk {
                            let (mut executions, mut failures, mut directed) = (0u64, 0u64, 0u64);
                            let mut next_seq = *pod_index * frames_per_pod;
                            let mut buf: Vec<softborg_trace::ExecutionTrace> =
                                Vec::with_capacity(batch as usize);
                            let flush =
                                |buf: &mut Vec<softborg_trace::ExecutionTrace>,
                                 next_seq: &mut u64| {
                                    let frame = wire::encode_batch(&*buf);
                                    if let Some(log) = frame_log {
                                        log.lock().expect("frame log poisoned").push((
                                            *lane,
                                            *next_seq,
                                            frame.clone(),
                                        ));
                                    }
                                    tx.submit_for_at(*id, *next_seq, frame)
                                        .expect("lane program is placed");
                                    *next_seq += 1;
                                    buf.clear();
                                };
                            for _ in 0..execs_per_pod {
                                let run = pod.run_once();
                                executions += 1;
                                if run.result.outcome.is_failure() {
                                    failures += 1;
                                }
                                if run.directed {
                                    directed += 1;
                                }
                                buf.push(run.trace);
                                if buf.len() as u64 == batch {
                                    flush(&mut buf, &mut next_seq);
                                }
                            }
                            if !buf.is_empty() {
                                flush(&mut buf, &mut next_seq);
                            }
                            out.push((*lane, executions, failures, directed));
                        }
                        out
                    }));
                }
                drop(tx);
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("pod thread panicked"))
                    .collect::<Vec<_>>()
            })
        });
        *last_run = Some(stats);
        let mut per_lane = vec![(0u64, 0u64, 0u64); n_lanes];
        for (lane, e, f, d) in per_unit {
            let entry = &mut per_lane[lane as usize];
            entry.0 += e;
            entry.1 += f;
            entry.2 += d;
        }
        per_lane
    }

    /// Commits one round durably. Phase A: append this round's frames
    /// (per-lane, in merge order), promotions, and the round record to
    /// **every** shard journal, then fsync them all — only after every
    /// fsync is the round acked. Phase B: per-shard snapshot compaction,
    /// which can therefore never capture a round some journal lacks.
    /// Returns `(fsync_ns, compacted)` for the round's telemetry entry
    /// (fsync is timed only when a registry is attached).
    fn commit_round(
        &mut self,
        report: &MultiRoundReport,
        mut frames: Vec<(u64, u64, Vec<u8>)>,
        promoted: &[(ProgramId, String, softborg_program::Overlay)],
    ) -> Result<CommitStats, DurabilityError> {
        let obs = self.config.obs.clone();
        let lanes: Vec<ProgramId> = self.fleets.iter().map(|f| f.id).collect();
        if self.durable.is_none() {
            return Ok(CommitStats::default());
        }
        // Capture every fleet's pod population *after* guidance queued
        // next-round directives — the exact state an uninterrupted
        // process carries into the next round.
        let pod_bodies: Vec<Vec<u8>> = self
            .fleets
            .iter()
            .map(|f| encode_pod_states(&f.pods))
            .collect();
        let d = self.durable.as_mut().expect("checked above");
        frames.sort_by_key(|&(lane, seq, _)| (lane, seq));

        // Phase A: append everywhere…
        let mut rec = Vec::new();
        for (lane, seq, bytes) in &frames {
            let shard = self
                .sharded
                .map()
                .shard_of(lanes[*lane as usize])
                .expect("lane program is placed");
            rec.clear();
            journal::append_record(&mut rec, REC_FRAME, *lane, *seq, bytes);
            d.shards[shard].journal.append(&rec)?;
            let floor = d.frame_floors.entry(*lane).or_insert(0);
            *floor = (*floor).max(seq + 1);
        }
        for (program, signature, overlay) in promoted {
            let shard = self
                .sharded
                .map()
                .shard_of(*program)
                .expect("promoted program is placed");
            let mut body = Vec::new();
            codec::put_u64(&mut body, program.0);
            codec::put_str(&mut body, signature);
            overlay.encode_into(&mut body);
            rec.clear();
            journal::append_record(&mut rec, REC_PROMOTE, SESSION_PROMOTE, d.promote_seq, &body);
            d.promote_seq += 1;
            d.shards[shard].journal.append(&rec)?;
        }
        for (lane, pod_body) in pod_bodies.iter().enumerate() {
            let shard = self
                .sharded
                .map()
                .shard_of(lanes[lane])
                .expect("lane program is placed");
            rec.clear();
            journal::append_record(&mut rec, REC_PODS, lane as u64, report.round, pod_body);
            d.shards[shard].journal.append(&rec)?;
        }
        let mut body = Vec::new();
        report.encode_into(&mut body);
        rec.clear();
        journal::append_record(&mut rec, REC_ROUND, SESSION_ROUND, report.round, &body);
        for sd in &mut d.shards {
            sd.journal.append(&rec)?;
        }
        // …then fsync everywhere. A crash between fsyncs leaves some
        // shards one round ahead; resume truncates them back to the
        // minimum (the round was never acked).
        let clock = obs.span_clock();
        let fsync_hist = obs.registry.as_ref().map(|r| r.histogram("hive.fsync_ns"));
        let fsync_span = SpanTimer::start_if(clock.as_ref(), &fsync_hist);
        for sd in &mut d.shards {
            sd.journal.sync()?;
        }
        let fsync_ns = fsync_span.map_or(0, SpanTimer::stop);

        // Phase B: per-shard compaction.
        let mut stats = CommitStats {
            fsync_ns,
            ..CommitStats::default()
        };
        let (ratio, min_bytes) = (d.cfg.compact_ratio, d.cfg.min_compact_wal_bytes);
        if ratio > 0 {
            for shard in 0..d.shards.len() {
                let wal_len = d.shards[shard].journal.len();
                if wal_len < min_bytes {
                    continue;
                }
                // In chain mode the trigger compares against the chain's
                // own bookkeeping (last full + deltas since), so the
                // check itself is O(1) instead of re-encoding the shard.
                let (due, kind, state) = if let Some(cs) = &d.cfg.chain {
                    let chain = d.shards[shard]
                        .chain
                        .as_ref()
                        .expect("chain mode shards carry a chain store");
                    let footprint = chain
                        .last_full_payload_bytes()
                        .saturating_add(chain.delta_payload_bytes_since_full())
                        .max(1);
                    let due = wal_len >= ratio.saturating_mul(footprint);
                    let kind = if due && chain.rebase_due(cs.rebase_ratio) {
                        RecordKind::Full
                    } else {
                        RecordKind::Delta
                    };
                    (due, kind, None)
                } else {
                    let state = self
                        .sharded
                        .encode_shard_state(shard)
                        .expect("shard index in range");
                    let due = wal_len >= ratio.saturating_mul(state.len() as u64);
                    (due, RecordKind::Full, Some(state))
                };
                if due {
                    let started = std::time::Instant::now();
                    let state = match (kind, state) {
                        (RecordKind::Delta, _) => self
                            .sharded
                            .encode_shard_state_delta(shard)
                            .expect("shard index in range"),
                        (RecordKind::Full, Some(s)) => s,
                        (RecordKind::Full, None) => self
                            .sharded
                            .encode_shard_state(shard)
                            .expect("shard index in range"),
                    };
                    stats.checkpoint_bytes += write_shard_checkpoint(
                        d,
                        shard,
                        &lanes,
                        self.sharded.map(),
                        kind,
                        state,
                        self.round_idx,
                        &self.history,
                        &pod_bodies,
                        true,
                    )?;
                    if d.cfg.chain.is_some() {
                        self.sharded.mark_shard_clean(shard);
                    }
                    stats.checkpoint_ns += started.elapsed().as_nanos() as u64;
                    stats.compacted = true;
                }
            }
        }
        Ok(stats)
    }

    /// On-demand compaction of every shard: each folds its journal into
    /// a fresh snapshot generation and truncates it.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] on a non-durable platform;
    /// [`DurabilityError::Io`] when a snapshot swap fails.
    pub fn checkpoint(&mut self) -> Result<(), DurabilityError> {
        let lanes: Vec<ProgramId> = self.fleets.iter().map(|f| f.id).collect();
        let pod_bodies: Vec<Vec<u8>> = self
            .fleets
            .iter()
            .map(|f| encode_pod_states(&f.pods))
            .collect();
        let d = self
            .durable
            .as_mut()
            .ok_or(DurabilityError::NotConfigured)?;
        for shard in 0..self.sharded.n_shards() {
            let kind = match &d.cfg.chain {
                Some(cs) => {
                    let chain = d.shards[shard]
                        .chain
                        .as_ref()
                        .expect("chain mode shards carry a chain store");
                    if chain.rebase_due(cs.rebase_ratio) {
                        RecordKind::Full
                    } else {
                        RecordKind::Delta
                    }
                }
                None => RecordKind::Full,
            };
            let state = match kind {
                RecordKind::Full => self
                    .sharded
                    .encode_shard_state(shard)
                    .expect("shard index in range"),
                RecordKind::Delta => self
                    .sharded
                    .encode_shard_state_delta(shard)
                    .expect("shard index in range"),
            };
            write_shard_checkpoint(
                d,
                shard,
                &lanes,
                self.sharded.map(),
                kind,
                state,
                self.round_idx,
                &self.history,
                &pod_bodies,
                true,
            )?;
            if d.cfg.chain.is_some() {
                self.sharded.mark_shard_clean(shard);
            }
        }
        Ok(())
    }
}

/// Writes one shard's checkpoint generation covering its whole journal,
/// then (when `truncate`) empties that journal. The snapshot's session
/// floors and pod populations cover only the lanes whose frames land in
/// this shard's journal.
///
/// In chain mode the record is appended to the shard's delta chain
/// (`kind` picks full rebase vs delta, and `state` must hold the
/// matching encoding); otherwise `kind` is ignored and a classic
/// two-generation snapshot is swapped in. Returns the checkpoint
/// payload size in bytes.
#[allow(clippy::too_many_arguments)]
fn write_shard_checkpoint(
    d: &mut MultiDurableState,
    shard: usize,
    lanes: &[ProgramId],
    map: &softborg_shard::ShardMap,
    kind: RecordKind,
    state: Vec<u8>,
    round_idx: u64,
    history: &[MultiRoundReport],
    lane_pods: &[Vec<u8>],
    truncate: bool,
) -> Result<u64, DurabilityError> {
    let sd = &mut d.shards[shard];
    let wal_bytes = sd.journal.read().map_err(|e| io_err("wal-read", &e))?;
    let on_shard = |lane: u64| {
        lanes
            .get(lane as usize)
            .is_some_and(|&id| map.shard_of(id) == Ok(shard))
    };
    let sessions: BTreeMap<u64, u64> = d
        .frame_floors
        .iter()
        .filter(|(&lane, _)| on_shard(lane))
        .map(|(&lane, &floor)| (lane, floor))
        .collect();
    let shard_pods: Vec<(u64, &[u8])> = lane_pods
        .iter()
        .enumerate()
        .filter(|&(lane, _)| on_shard(lane as u64))
        .map(|(lane, body)| (lane as u64, body.as_slice()))
        .collect();
    let snap = HiveSnapshot {
        state,
        sessions,
        wal_covered: wal_bytes.len() as u64,
        wal_covered_hash: wire::fnv1a(&wal_bytes),
        app_meta: encode_multi_app_meta(round_idx, history, &shard_pods),
    };
    let written = if let Some(chain) = sd.chain.as_mut() {
        let payload = snap.encode();
        chain
            .append(kind, &payload)
            .map_err(|e| io_err("chain-append", &e))?;
        payload.len() as u64
    } else {
        sd.store.write_snapshot(&snap)?
    };
    if truncate {
        sd.journal.truncate(0)?;
    }
    Ok(written)
}

/// Shard-snapshot `app_meta` payload: committed-round counter, the full
/// multi-round history, and this shard's lanes' durable pod populations
/// (`u32 count` then `u64 lane | bytes` per lane), in the deterministic
/// byte codec.
fn encode_multi_app_meta(
    round_idx: u64,
    history: &[MultiRoundReport],
    lane_pods: &[(u64, &[u8])],
) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, round_idx);
    codec::put_u32(&mut buf, history.len() as u32);
    for report in history {
        report.encode_into(&mut buf);
    }
    codec::put_u32(&mut buf, lane_pods.len() as u32);
    for (lane, body) in lane_pods {
        codec::put_u64(&mut buf, *lane);
        codec::put_bytes(&mut buf, body);
    }
    buf
}

type MultiAppMeta = (u64, Vec<MultiRoundReport>, Vec<(u64, Vec<PodState>)>);

fn decode_multi_app_meta(bytes: &[u8]) -> Result<MultiAppMeta, DurabilityError> {
    let mut r = codec::Reader::new(bytes);
    let round_idx = r.u64("multi_app_meta.round_idx")?;
    let n = r.seq_len("multi_app_meta.history", 112)?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        history.push(MultiRoundReport::decode(&mut r)?);
    }
    let n_lanes = r.seq_len("multi_app_meta.lane_pods", 12)?;
    let mut lane_pods = Vec::with_capacity(n_lanes);
    for _ in 0..n_lanes {
        let lane = r.u64("multi_app_meta.lane")?;
        let body = r.bytes("multi_app_meta.pods")?;
        lane_pods.push((lane, decode_pod_states(body)?));
    }
    if !r.is_empty() {
        return Err(DurabilityError::Corrupt(format!(
            "multi_app_meta has {} trailing byte(s)",
            r.remaining()
        )));
    }
    Ok((round_idx, history, lane_pods))
}
