//! The SoftBorg platform: the closed quality-feedback loop of Figure 1.
//!
//! A [`Platform`] owns a hive and a population of pods for one program
//! and advances in *rounds*. Each round: pods execute on behalf of their
//! users and ship traces; the hive aggregates, diagnoses, and proposes
//! fixes; candidates are validated on trial pods' locally-retained cases
//! (the privacy-preserving repair lab); validated fixes are promoted and
//! distributed; and guidance directives steer the next round's
//! executions. The headline experiment E1 charts the population failure
//! rate across rounds — "the more a program is used, the more reliable
//! it should become" (§2).

use serde::{Deserialize, Serialize};
use softborg_fix::{rank, LabConfig, TestCase, Verdict};
use softborg_guidance::Directive;
use softborg_hive::{diagnosis_signature, outcome_signature, Hive, HiveConfig};
use softborg_ingest::{IngestConfig, IngestStats};
use softborg_pod::{Pod, PodConfig};
use softborg_program::Program;
use softborg_trace::wire;
use softborg_tree::CoverageStats;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Population size.
    pub n_pods: u32,
    /// Template for every pod (each pod gets a derived seed).
    pub pod: PodConfig,
    /// Hive configuration.
    pub hive: HiveConfig,
    /// Master seed.
    pub seed: u64,
    /// Whether the hive distributes fixes (off = observation only; the
    /// E1 control arm).
    pub fixes_enabled: bool,
    /// Whether guidance directives are distributed.
    pub guidance_enabled: bool,
    /// Passing cases required before a *predicted* (zero-failing-case)
    /// deadlock fix may be distributed on preservation evidence alone.
    pub min_preservation_cases: usize,
    /// How round executions report into the hive.
    pub ingest: IngestSettings,
}

/// How a round's executions flow into the hive.
#[derive(Debug, Clone)]
pub struct IngestSettings {
    /// `true`: pods run on scoped threads and report through the staged
    /// ingest pipeline (wire-encoded batch frames, decode+reconstruct
    /// worker pool, ordered merger). `false`: the original serial loop.
    /// Both produce byte-identical hive state.
    pub pipelined: bool,
    /// Threads executing pods (pods are partitioned into contiguous
    /// chunks, one per thread).
    pub pod_threads: usize,
    /// Traces bundled per batch frame.
    pub batch_size: usize,
    /// Pipeline tuning (workers, queue bounds, backpressure, memo).
    pub pipeline: IngestConfig,
}

impl Default for IngestSettings {
    fn default() -> Self {
        IngestSettings {
            pipelined: true,
            pod_threads: 2,
            batch_size: 32,
            pipeline: IngestConfig::default(),
        }
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            n_pods: 50,
            pod: PodConfig::default(),
            hive: HiveConfig::default(),
            seed: 0,
            fixes_enabled: true,
            guidance_enabled: true,
            min_preservation_cases: 5,
            ingest: IngestSettings::default(),
        }
    }
}

/// Metrics for one platform round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Executions performed this round.
    pub executions: u64,
    /// Failures observed this round.
    pub failures: u64,
    /// Failures per 10k executions this round.
    pub failure_rate_per_10k: f64,
    /// Fixes promoted this round.
    pub fixes_promoted: u64,
    /// Overlay version after the round.
    pub overlay_version: u64,
    /// Tree coverage after the round.
    pub coverage: CoverageStats,
    /// Published proof certificates after the round.
    pub proofs: u64,
    /// Directed (guided) executions this round.
    pub directed: u64,
}

/// The platform. See the [module docs](self).
#[derive(Debug)]
pub struct Platform<'p> {
    program: &'p Program,
    hive: Hive<'p>,
    pods: Vec<Pod<'p>>,
    config: PlatformConfig,
    round_idx: u64,
    history: Vec<RoundReport>,
    last_ingest: Option<IngestStats>,
}

impl<'p> Platform<'p> {
    /// Builds a platform: one hive plus `n_pods` pods with derived seeds.
    pub fn new(program: &'p Program, config: PlatformConfig) -> Self {
        let pods = (0..config.n_pods)
            .map(|i| {
                let mut pc = config.pod.clone();
                pc.seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(i) + 1);
                Pod::new(program, pc)
            })
            .collect();
        Platform {
            hive: Hive::new(program, config.hive.clone()),
            pods,
            config,
            program,
            round_idx: 0,
            history: Vec::new(),
            last_ingest: None,
        }
    }

    /// The hive (read access for experiments).
    pub fn hive(&self) -> &Hive<'p> {
        &self.hive
    }

    /// The pods.
    pub fn pods(&self) -> &[Pod<'p>] {
        &self.pods
    }

    /// All round reports so far.
    pub fn history(&self) -> &[RoundReport] {
        &self.history
    }

    /// Advances one round with `execs_per_pod` executions per pod.
    pub fn round(&mut self, execs_per_pod: u32) -> RoundReport {
        // 1. Distribute the current overlay.
        let (overlay, version) = {
            let (o, v) = self.hive.current_overlay();
            (o.clone(), v)
        };
        if self.config.fixes_enabled {
            for pod in &mut self.pods {
                pod.install_fix(overlay.clone(), version);
            }
        }

        // 2. Execute and ingest.
        let (executions, failures, directed) = if self.config.ingest.pipelined {
            self.execute_pipelined(execs_per_pod)
        } else {
            self.execute_serial(execs_per_pod)
        };

        // 3. Fix pipeline.
        let mut fixes_promoted = 0u64;
        if self.config.fixes_enabled {
            let proposals = self.hive.propose_fixes();
            for proposal in proposals {
                // Pool trial cases from pods: failing cases of this mode +
                // passing regression cases.
                let failing: Vec<TestCase> = self
                    .pods
                    .iter()
                    .flat_map(|p| p.failing_cases())
                    .filter(|(_, o)| {
                        outcome_signature(o).as_deref() == Some(proposal.signature.as_str())
                    })
                    .map(|(c, _)| c.clone())
                    .take(16)
                    .collect();
                let passing: Vec<TestCase> = self
                    .pods
                    .iter()
                    .flat_map(|p| p.passing_cases())
                    .take(32)
                    .cloned()
                    .collect();
                let (base, _) = self.hive.current_overlay();
                let ranked = rank(
                    self.program,
                    &base.clone(),
                    &proposal.candidates,
                    &failing,
                    &passing,
                    LabConfig::default(),
                );
                let Some((candidate, validation)) = ranked.first() else {
                    continue;
                };
                let distribute = match validation.verdict {
                    Verdict::Distribute => true,
                    // Predicted deadlock fixes have no failing cases yet;
                    // distribute on perfect preservation evidence.
                    Verdict::Reject | Verdict::Suggest => {
                        proposal.signature.starts_with("lock-cycle:")
                            && failing.is_empty()
                            && validation.passing_total as usize
                                >= self.config.min_preservation_cases
                            && validation.passing_preserved == validation.passing_total
                    }
                };
                if distribute {
                    self.hive.promote(&proposal.signature, candidate);
                    fixes_promoted += 1;
                }
            }
        }

        // 4. Guidance.
        if self.config.guidance_enabled {
            let (plan, _stats) = self.hive.guidance();
            if !plan.directives.is_empty() {
                let n = self.pods.len();
                for (i, d) in plan.directives.into_iter().enumerate() {
                    // Spread directives; replicate input seeds to a few
                    // pods so one lost/odd pod cannot stall exploration.
                    match d {
                        Directive::InputSeed { .. } => {
                            for k in 0..3usize {
                                self.pods[(i * 3 + k) % n].receive_guidance([d.clone()]);
                            }
                        }
                        other => {
                            self.pods[i % n].receive_guidance([other]);
                        }
                    }
                }
            }
        }

        // 5. Report.
        let report = RoundReport {
            round: self.round_idx,
            executions,
            failures,
            failure_rate_per_10k: if executions == 0 {
                0.0
            } else {
                failures as f64 * 10_000.0 / executions as f64
            },
            fixes_promoted,
            overlay_version: self.hive.current_overlay().1,
            coverage: self.hive.coverage(),
            proofs: self.hive.proofs().len() as u64,
            directed,
        };
        self.round_idx += 1;
        self.history.push(report.clone());
        report
    }

    /// The original serial loop: run, ingest, repeat.
    fn execute_serial(&mut self, execs_per_pod: u32) -> (u64, u64, u64) {
        let (mut executions, mut failures, mut directed) = (0u64, 0u64, 0u64);
        for pod in &mut self.pods {
            for _ in 0..execs_per_pod {
                let run = pod.run_once();
                executions += 1;
                if run.result.outcome.is_failure() {
                    failures += 1;
                }
                if run.directed {
                    directed += 1;
                }
                self.hive.ingest(&run.trace);
            }
        }
        (executions, failures, directed)
    }

    /// Pods run on scoped threads and report wire-encoded batch frames
    /// into the hive's staged ingest pipeline while it decodes,
    /// reconstructs, and merges concurrently.
    ///
    /// Frame sequence numbers are pre-partitioned by pod index (each pod
    /// produces exactly `ceil(execs_per_pod / batch)` frames), so the
    /// ordered merger replays traces in exact pod-major order — the same
    /// order the serial loop ingests in. Pods carry their own RNG and
    /// receive no mid-round feedback, so the resulting hive state is
    /// byte-identical to [`execute_serial`](Self::execute_serial).
    fn execute_pipelined(&mut self, execs_per_pod: u32) -> (u64, u64, u64) {
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let n_pods = self.pods.len();
        let threads = self.config.ingest.pod_threads.max(1).min(n_pods.max(1));
        let chunk_size = n_pods.div_ceil(threads).max(1);
        let cfg = self.config.ingest.pipeline.clone();
        let pods = &mut self.pods;
        let (counters, stats) = self.hive.ingest_frames(&cfg, move |tx| {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for (ci, chunk) in pods.chunks_mut(chunk_size).enumerate() {
                    let tx = tx.clone();
                    handles.push(s.spawn(move || {
                        let (mut executions, mut failures, mut directed) = (0u64, 0u64, 0u64);
                        for (j, pod) in chunk.iter_mut().enumerate() {
                            let pod_index = (ci * chunk_size + j) as u64;
                            let mut next_seq = pod_index * frames_per_pod;
                            let mut buf: Vec<softborg_trace::ExecutionTrace> =
                                Vec::with_capacity(batch as usize);
                            for _ in 0..execs_per_pod {
                                let run = pod.run_once();
                                executions += 1;
                                if run.result.outcome.is_failure() {
                                    failures += 1;
                                }
                                if run.directed {
                                    directed += 1;
                                }
                                buf.push(run.trace);
                                if buf.len() as u64 == batch {
                                    tx.submit_at(next_seq, wire::encode_batch(&buf));
                                    next_seq += 1;
                                    buf.clear();
                                }
                            }
                            if !buf.is_empty() {
                                tx.submit_at(next_seq, wire::encode_batch(&buf));
                            }
                        }
                        (executions, failures, directed)
                    }));
                }
                drop(tx);
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pod thread panicked"))
                    .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
            })
        });
        self.last_ingest = Some(stats);
        counters
    }

    /// Pipeline statistics from the most recent pipelined round, if any.
    pub fn last_ingest(&self) -> Option<&IngestStats> {
        self.last_ingest.as_ref()
    }

    /// Runs `rounds` rounds and returns the full history.
    pub fn run(&mut self, rounds: u32, execs_per_pod: u32) -> &[RoundReport] {
        for _ in 0..rounds {
            self.round(execs_per_pod);
        }
        self.history()
    }

    /// Signatures of all currently-diagnosed failure modes.
    pub fn diagnosed_modes(&self) -> Vec<String> {
        self.hive
            .diagnoses()
            .iter()
            .map(|d| diagnosis_signature(d))
            .collect()
    }
}
