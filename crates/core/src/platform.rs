//! The SoftBorg platform: the closed quality-feedback loop of Figure 1.
//!
//! A [`Platform`] owns a hive and a population of pods for one program
//! and advances in *rounds*. Each round: pods execute on behalf of their
//! users and ship traces; the hive aggregates, diagnoses, and proposes
//! fixes; candidates are validated on trial pods' locally-retained cases
//! (the privacy-preserving repair lab); validated fixes are promoted and
//! distributed; and guidance directives steer the next round's
//! executions. The headline experiment E1 charts the population failure
//! rate across rounds — "the more a program is used, the more reliable
//! it should become" (§2).

use serde::{Deserialize, Serialize};
use softborg_fix::{rank, FixCandidate, LabConfig, TestCase, Verdict};
use softborg_guidance::Directive;
use softborg_hive::journal::{
    self, JournalRecord, REC_ABORT, REC_FRAME, REC_PODS, REC_PROMOTE, REC_ROUND, REC_TOMBSTONE,
    SESSION_PROMOTE, SESSION_ROUND,
};
use softborg_hive::{
    diagnosis_signature, outcome_signature, scrub_campaign, scrub_chained_campaign, scrub_page_dir,
    FileJournal, Hive, HiveConfig, HiveSnapshot, JournalIoError, JournalStore, LoadReport,
    ScrubError, ScrubReport, SnapshotSource, SnapshotStore,
};
use softborg_ingest::{IngestConfig, IngestStats};
use softborg_obs::{ObsHandles, SpanTimer};
use softborg_pod::{Pod, PodConfig, PodState};
use softborg_program::codec::{self, CodecError};
use softborg_program::{Overlay, Program};
use softborg_store::{ChainReport, ChainSource, ChainStore, PageStats, PagedConfig, RecordKind};
use softborg_trace::wire;
use softborg_tree::CoverageStats;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Mutex;

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Population size.
    pub n_pods: u32,
    /// Template for every pod (each pod gets a derived seed).
    pub pod: PodConfig,
    /// Hive configuration.
    pub hive: HiveConfig,
    /// Master seed.
    pub seed: u64,
    /// Whether the hive distributes fixes (off = observation only; the
    /// E1 control arm).
    pub fixes_enabled: bool,
    /// Whether guidance directives are distributed.
    pub guidance_enabled: bool,
    /// Passing cases required before a *predicted* (zero-failing-case)
    /// deadlock fix may be distributed on preservation evidence alone.
    pub min_preservation_cases: usize,
    /// How round executions report into the hive.
    pub ingest: IngestSettings,
    /// Crash-only durability: when set, every round is committed to a
    /// write-ahead journal (with periodic snapshot compaction) before
    /// its report is returned, and a killed process can continue the
    /// campaign via [`Platform::resume`]. `None` = in-memory only.
    pub durability: Option<DurabilityConfig>,
    /// Paged execution-tree storage: when set, cold tree pages are
    /// evicted to checksummed page files under the configured resident
    /// budget and faulted back transparently. Paging is pure storage —
    /// merges, traversals, snapshots, and deltas are byte-identical with
    /// paging on or off. `None` = fully in-memory tree.
    pub tree_paging: Option<PagedConfig>,
    /// Telemetry sinks: per-round `platform.*` counters, commit/fsync
    /// span histograms, and `round_committed` flight-recorder events.
    /// Telemetry is passive — it never changes what a round computes or
    /// journals, so platform state is byte-identical on or off.
    pub obs: ObsHandles,
}

/// Where and how a durable campaign persists itself.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding the campaign's `hive.wal`, `hive.snap`, and
    /// `hive.snap.prev` files (created if absent).
    pub dir: PathBuf,
    /// Snapshot compaction trigger: compact when the journal is at
    /// least this many times larger than the live serialized hive
    /// state. `0` disables compaction.
    pub compact_ratio: u64,
    /// Journal size below which compaction never triggers, so tiny
    /// campaigns don't churn snapshots every round.
    pub min_compact_wal_bytes: u64,
    /// Incremental snapshot chains: when set, checkpoints append
    /// checksummed full/delta records to a `chain/` subdirectory instead
    /// of rewriting `hive.snap` whole — a compaction writes O(changes
    /// since the last checkpoint), not O(hive). `None` keeps the classic
    /// two-generation full-snapshot store, byte-for-byte.
    pub chain: Option<ChainSettings>,
}

impl DurabilityConfig {
    /// Durability rooted at `dir` with the default compaction policy
    /// (compact once the journal exceeds 4× the live state and 64 KiB).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            dir: dir.into(),
            compact_ratio: 4,
            min_compact_wal_bytes: 64 * 1024,
            chain: None,
        }
    }

    /// Same policy, with delta-snapshot chains enabled at the default
    /// rebase ratio.
    pub fn chained(dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            chain: Some(ChainSettings::default()),
            ..DurabilityConfig::new(dir)
        }
    }
}

/// Delta-snapshot chain policy.
#[derive(Debug, Clone)]
pub struct ChainSettings {
    /// Full-rebase trigger: append a fresh full record once accumulated
    /// delta payload bytes exceed this many times the newest full's
    /// size, bounding chain length and recovery work. `0` = never rebase
    /// (deltas forever; only sensible in fault harnesses).
    pub rebase_ratio: u64,
    /// **Injected bug** — resume silently drops the newest delta record
    /// when folding the chain, rebuilding state one checkpoint stale
    /// while trusting the head's metadata (the `skip_delta` canary for
    /// the durable fault-search campaign). Must stay `false` outside
    /// fault harnesses.
    pub skip_last_delta: bool,
}

impl Default for ChainSettings {
    fn default() -> Self {
        ChainSettings {
            rebase_ratio: 4,
            skip_last_delta: false,
        }
    }
}

/// The chain subdirectory under a campaign (or shard) durability dir.
pub(crate) fn chain_dir(dir: &std::path::Path) -> PathBuf {
    dir.join("chain")
}

/// Why a durable platform could not be created or resumed, or why a
/// durable round commit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurabilityError {
    /// The operation requires [`PlatformConfig::durability`] to be set.
    NotConfigured,
    /// [`Platform::try_new`] found campaign state already on disk; use
    /// [`Platform::resume`] instead of silently clobbering it.
    CampaignExists(PathBuf),
    /// An underlying journal or snapshot I/O operation failed.
    Io(JournalIoError),
    /// A durable record decoded to garbage (wrong program, torn bytes
    /// that passed no checksum, or a version this build cannot read).
    Corrupt(String),
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::NotConfigured => {
                write!(f, "platform has no durability configuration")
            }
            DurabilityError::CampaignExists(dir) => write!(
                f,
                "campaign state already exists in {} (resume it instead)",
                dir.display()
            ),
            DurabilityError::Io(e) => write!(f, "durability I/O failure: {e}"),
            DurabilityError::Corrupt(what) => write!(f, "durable state corrupt: {what}"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<JournalIoError> for DurabilityError {
    fn from(e: JournalIoError) -> Self {
        DurabilityError::Io(e)
    }
}

impl From<CodecError> for DurabilityError {
    fn from(e: CodecError) -> Self {
        DurabilityError::Corrupt(e.to_string())
    }
}

impl From<ScrubError> for DurabilityError {
    fn from(e: ScrubError) -> Self {
        match e {
            ScrubError::Io(io) => DurabilityError::Io(io),
            ScrubError::NothingRecoverable => {
                DurabilityError::Corrupt(ScrubError::NothingRecoverable.to_string())
            }
        }
    }
}

pub(crate) fn io_err(op: &'static str, e: &std::io::Error) -> DurabilityError {
    DurabilityError::Io(JournalIoError {
        op,
        kind: e.kind(),
        msg: e.to_string(),
    })
}

/// How a round's executions flow into the hive.
#[derive(Debug, Clone)]
pub struct IngestSettings {
    /// `true`: pods run on scoped threads and report through the staged
    /// ingest pipeline (wire-encoded batch frames, decode+reconstruct
    /// worker pool, ordered merger). `false`: the original serial loop.
    /// Both produce byte-identical hive state.
    pub pipelined: bool,
    /// Threads executing pods (pods are partitioned into contiguous
    /// chunks, one per thread).
    pub pod_threads: usize,
    /// Traces bundled per batch frame.
    pub batch_size: usize,
    /// Pipeline tuning (workers, queue bounds, backpressure, memo).
    pub pipeline: IngestConfig,
}

impl Default for IngestSettings {
    fn default() -> Self {
        IngestSettings {
            pipelined: true,
            pod_threads: 2,
            batch_size: 32,
            pipeline: IngestConfig::default(),
        }
    }
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            n_pods: 50,
            pod: PodConfig::default(),
            hive: HiveConfig::default(),
            seed: 0,
            fixes_enabled: true,
            guidance_enabled: true,
            min_preservation_cases: 5,
            ingest: IngestSettings::default(),
            durability: None,
            tree_paging: None,
            obs: ObsHandles::default(),
        }
    }
}

/// Metrics for one platform round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: u64,
    /// Executions performed this round.
    pub executions: u64,
    /// Failures observed this round.
    pub failures: u64,
    /// Failures per 10k executions this round.
    pub failure_rate_per_10k: f64,
    /// Fixes promoted this round.
    pub fixes_promoted: u64,
    /// Overlay version after the round.
    pub overlay_version: u64,
    /// Tree coverage after the round.
    pub coverage: CoverageStats,
    /// Published proof certificates after the round.
    pub proofs: u64,
    /// Directed (guided) executions this round.
    pub directed: u64,
}

impl RoundReport {
    /// Serializes the report for the durable journal's `REC_ROUND`
    /// record (floats as IEEE-754 bit patterns, so the roundtrip is
    /// exact).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        codec::put_u64(buf, self.round);
        codec::put_u64(buf, self.executions);
        codec::put_u64(buf, self.failures);
        codec::put_f64(buf, self.failure_rate_per_10k);
        codec::put_u64(buf, self.fixes_promoted);
        codec::put_u64(buf, self.overlay_version);
        codec::put_u64(buf, self.coverage.nodes);
        codec::put_u64(buf, self.coverage.distinct_paths);
        codec::put_u64(buf, self.coverage.sites_seen);
        codec::put_u64(buf, self.coverage.paths_merged);
        codec::put_u64(buf, self.coverage.frontier_arms);
        codec::put_f64(buf, self.coverage.closed_fraction);
        codec::put_u64(buf, self.proofs);
        codec::put_u64(buf, self.directed);
    }

    /// Decodes a report written by [`encode_into`](Self::encode_into).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    pub fn decode(r: &mut codec::Reader<'_>) -> Result<Self, CodecError> {
        Ok(RoundReport {
            round: r.u64("RoundReport.round")?,
            executions: r.u64("RoundReport.executions")?,
            failures: r.u64("RoundReport.failures")?,
            failure_rate_per_10k: r.f64("RoundReport.failure_rate_per_10k")?,
            fixes_promoted: r.u64("RoundReport.fixes_promoted")?,
            overlay_version: r.u64("RoundReport.overlay_version")?,
            coverage: CoverageStats {
                nodes: r.u64("CoverageStats.nodes")?,
                distinct_paths: r.u64("CoverageStats.distinct_paths")?,
                sites_seen: r.u64("CoverageStats.sites_seen")?,
                paths_merged: r.u64("CoverageStats.paths_merged")?,
                frontier_arms: r.u64("CoverageStats.frontier_arms")?,
                closed_fraction: r.f64("CoverageStats.closed_fraction")?,
            },
            proofs: r.u64("RoundReport.proofs")?,
            directed: r.u64("RoundReport.directed")?,
        })
    }
}

/// What [`Platform::resume`] found and did, for recovery observability.
#[derive(Debug, Clone)]
pub struct ResumeReport {
    /// How the snapshot load went (primary, fallback, or cold start).
    pub snapshot: LoadReport,
    /// Committed rounds restored from the snapshot alone.
    pub rounds_from_snapshot: u64,
    /// Committed rounds replayed from the journal suffix.
    pub rounds_replayed: u64,
    /// Byte offset of the journal suffix that was replayed (nonzero
    /// exactly when a crash hit between snapshot rename and journal
    /// truncate).
    pub wal_replay_offset: u64,
    /// Corrupt/unsynced journal-tail bytes dropped (warned, not silent).
    pub wal_tail_dropped: u64,
    /// Intact records belonging to an uncommitted round, discarded and
    /// fenced behind a `REC_ABORT` so later replays skip them too.
    pub fenced_records: u64,
    /// Intact records discarded because their round index did not
    /// continue from the recovered snapshot — the newest snapshot was
    /// lost and recovery fell back a generation, so the journal suffix
    /// belongs to rounds the fallback never saw. The suffix is
    /// truncated; the campaign resumes from the older (consistent)
    /// state.
    pub disconnected_records: u64,
    /// Chain-walk report when [`DurabilityConfig::chain`] is set: which
    /// lineage validated and every damaged record file found. `None` in
    /// classic full-snapshot mode.
    pub chain: Option<ChainReport>,
    /// Delta records applied on top of the chain's full record.
    pub chain_deltas_applied: u64,
}

/// Per-round telemetry the platform keeps *beside* the journaled
/// [`RoundReport`] history. Deliberately not part of the report: commit
/// and fsync timings are host-speed-dependent, and the report's durable
/// codec (and the equivalence suites that compare reports byte-for-byte)
/// must stay identical with telemetry on or off. Timings are measured by
/// the span timers that feed the `platform.round_commit_ns` /
/// `hive.fsync_ns` histograms, so they are zero unless
/// [`PlatformConfig::obs`] has a registry attached.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundTelemetry {
    /// Round index this entry describes.
    pub round: u64,
    /// Durable-commit duration (append + fsync + compaction), ns.
    pub commit_ns: u64,
    /// The fsync portion of the commit, ns.
    pub fsync_ns: u64,
    /// Batch frames appended to the journal this round.
    pub frames_journaled: u64,
    /// Fix promotions appended to the journal this round.
    pub promotions_journaled: u64,
    /// Whether this round's commit triggered snapshot compaction.
    pub compacted: bool,
    /// Wall-clock duration of this round's checkpoint write — the
    /// compaction stall — in ns (0 when no checkpoint ran). Unlike
    /// `commit_ns`/`fsync_ns` this is measured unconditionally, so the
    /// durability benches can report stall percentiles without a
    /// registry attached.
    pub checkpoint_ns: u64,
    /// Bytes the checkpoint wrote (full snapshot record, or chain
    /// full/delta record payload). The deterministic stall proxy: with
    /// chains on, a steady-state compaction writes O(changes) instead of
    /// O(hive).
    pub checkpoint_bytes: u64,
}

/// What one durable round commit did (feeds [`RoundTelemetry`]).
#[derive(Debug, Default)]
pub(crate) struct CommitStats {
    pub(crate) fsync_ns: u64,
    pub(crate) compacted: bool,
    pub(crate) checkpoint_ns: u64,
    pub(crate) checkpoint_bytes: u64,
}

/// A round's durable frame log: `(session, seq, frame)` triples mirrored
/// from the ingest path, shared across pod threads.
type FrameLog = Mutex<Vec<(u64, u64, Vec<u8>)>>;

/// What an external driver executed during one
/// [`Platform::round_driven`] round.
#[derive(Debug, Default)]
pub struct DrivenExecution {
    /// Executions performed across all pods.
    pub executions: u64,
    /// Failures observed.
    pub failures: u64,
    /// Directed (guided) executions.
    pub directed: u64,
    /// Every wire-encoded batch frame produced, as
    /// `(session = pod index, seq, frame)` — the same layout
    /// [`Platform::round`] journals and the pipelined merger replays.
    pub frames: Vec<(u64, u64, Vec<u8>)>,
}

/// The live half of a durable campaign: the open journal, the snapshot
/// store, and the bookkeeping replay needs.
#[derive(Debug)]
struct DurableState {
    cfg: DurabilityConfig,
    store: SnapshotStore,
    /// Delta-snapshot chain, open iff [`DurabilityConfig::chain`] is
    /// set. With a chain, checkpoints append here and `hive.snap` is
    /// never written.
    chain: Option<ChainStore>,
    journal: FileJournal,
    /// Next sequence number for `REC_PROMOTE` records.
    promote_seq: u64,
    /// Per-pod frame floors (`session → next seq`), carried into
    /// snapshots so transports resuming against this campaign can
    /// deduplicate across the restart.
    frame_floors: BTreeMap<u64, u64>,
}

/// The platform. See the [module docs](self).
#[derive(Debug)]
pub struct Platform<'p> {
    program: &'p Program,
    hive: Hive<'p>,
    pods: Vec<Pod<'p>>,
    config: PlatformConfig,
    round_idx: u64,
    history: Vec<RoundReport>,
    telemetry: Vec<RoundTelemetry>,
    last_ingest: Option<IngestStats>,
    durable: Option<DurableState>,
}

impl<'p> Platform<'p> {
    /// Builds the in-memory platform shell: one hive plus `n_pods` pods
    /// with derived seeds. Durability (if configured) is attached by the
    /// caller.
    fn base(program: &'p Program, config: PlatformConfig) -> Self {
        let pods = (0..config.n_pods)
            .map(|i| {
                let mut pc = config.pod.clone();
                pc.seed = config
                    .seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(u64::from(i) + 1);
                Pod::new(program, pc)
            })
            .collect();
        Platform {
            hive: Hive::new(program, config.hive.clone()),
            pods,
            config,
            program,
            round_idx: 0,
            history: Vec::new(),
            telemetry: Vec::new(),
            last_ingest: None,
            durable: None,
        }
    }

    /// Builds a platform: one hive plus `n_pods` pods with derived
    /// seeds. With [`PlatformConfig::durability`] set this starts a
    /// *fresh* durable campaign and panics if initialization fails or
    /// campaign state already exists (crash-only software fails loudly
    /// at startup; use [`try_new`](Self::try_new) to handle the error,
    /// or [`resume`](Self::resume) to continue an existing campaign).
    pub fn new(program: &'p Program, config: PlatformConfig) -> Self {
        Self::try_new(program, config).expect("durable platform initialization failed")
    }

    /// Fallible [`new`](Self::new).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::CampaignExists`] when the configured directory
    /// already holds a snapshot or a non-empty journal, and
    /// [`DurabilityError::Io`] when the journal or snapshot store cannot
    /// be opened.
    pub fn try_new(program: &'p Program, config: PlatformConfig) -> Result<Self, DurabilityError> {
        let mut platform = Self::base(program, config);
        if let Some(pcfg) = platform.config.tree_paging.clone() {
            platform
                .hive
                .enable_tree_paging(pcfg)
                .map_err(|e| io_err("page-store", &e))?;
        }
        if let Some(dcfg) = platform.config.durability.clone() {
            let store = SnapshotStore::open(&dcfg.dir).map_err(|e| io_err("snapshot-dir", &e))?;
            if store.snap_path().exists() || store.prev_path().exists() {
                return Err(DurabilityError::CampaignExists(dcfg.dir));
            }
            let journal =
                FileJournal::open(store.wal_path()).map_err(|e| io_err("wal-open", &e))?;
            if !journal.is_empty() {
                return Err(DurabilityError::CampaignExists(dcfg.dir));
            }
            let chain = if dcfg.chain.is_some() {
                let chain =
                    ChainStore::open(&chain_dir(&dcfg.dir)).map_err(|e| io_err("chain-dir", &e))?;
                if chain.head_generation().is_some() {
                    return Err(DurabilityError::CampaignExists(dcfg.dir));
                }
                Some(chain)
            } else {
                None
            };
            platform.durable = Some(DurableState {
                cfg: dcfg,
                store,
                chain,
                journal,
                promote_seq: 0,
                frame_floors: BTreeMap::new(),
            });
        }
        Ok(platform)
    }

    /// Resumes (or cold-starts) a durable campaign from
    /// [`PlatformConfig::durability`]: loads the newest valid snapshot
    /// (falling back to the previous generation if the newest is torn),
    /// replays the journal suffix round by round — re-ingesting frames
    /// in merge order, re-applying promotions, re-running guidance — and
    /// fences any uncommitted partial round behind a `REC_ABORT` record.
    /// Recovery **is** the startup path: an empty directory resumes into
    /// a fresh campaign.
    ///
    /// The recovered hive state is byte-identical
    /// ([`hive_state`](Self::hive_state)) to the uninterrupted run at
    /// the same committed round — and so is the pod population: every
    /// pod's RNG position, locally-retained repair-lab corpus, overlay
    /// version, and pending guidance directives are restored from the
    /// round commit's durable pod images, so the resumed process draws
    /// the exact random stream the uninterrupted one would have.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] without a durability config;
    /// [`DurabilityError::Io`] on filesystem failures;
    /// [`DurabilityError::Corrupt`] when a checksummed record decodes to
    /// garbage (journal records damaged *behind* a valid checksum, e.g.
    /// a snapshot for a different program).
    pub fn resume(
        program: &'p Program,
        config: PlatformConfig,
    ) -> Result<(Self, ResumeReport), DurabilityError> {
        let dcfg = config
            .durability
            .clone()
            .ok_or(DurabilityError::NotConfigured)?;
        let store = SnapshotStore::open(&dcfg.dir).map_err(|e| io_err("snapshot-dir", &e))?;
        // Chain mode never reads `hive.snap` — the chain is the
        // checkpoint store of record.
        let (snap, load_report) = if dcfg.chain.is_none() {
            store.load()
        } else {
            (
                None,
                LoadReport {
                    source: SnapshotSource::None,
                    primary_error: None,
                    fallback_error: None,
                },
            )
        };
        let mut wal_file =
            FileJournal::open(store.wal_path()).map_err(|e| io_err("wal-open", &e))?;
        let wal = wal_file.read().map_err(|e| io_err("wal-read", &e))?;

        let mut platform = Self::base(program, config);
        let mut frame_floors = BTreeMap::new();
        // The freshest durable pod population seen so far: the
        // snapshot's, then overwritten by each committed `REC_PODS`
        // record replayed from the journal suffix.
        let mut pod_states: Option<Vec<PodState>> = None;
        let mut chain_report: Option<ChainReport> = None;
        let mut chain_deltas_applied = 0u64;
        let mut chain_store: Option<ChainStore> = None;
        let replay_from = if dcfg.chain.is_some() {
            let chain =
                ChainStore::open(&chain_dir(&dcfg.dir)).map_err(|e| io_err("chain-dir", &e))?;
            let load = chain.load();
            let offset = if let Some((first, rest)) = load.records.split_first() {
                // The lineage starts at a full record; every later
                // record is a delta against its predecessor.
                let full = HiveSnapshot::decode(&first.payload).map_err(|e| {
                    DurabilityError::Corrupt(format!("chain full record {}: {e}", first.generation))
                })?;
                platform.hive =
                    Hive::decode_state(program, platform.config.hive.clone(), &full.state)
                        .map_err(|e| {
                            DurabilityError::Corrupt(format!("chain snapshot state: {e}"))
                        })?;
                let skip_last = dcfg.chain.as_ref().is_some_and(|c| c.skip_last_delta);
                let mut last = full;
                for (k, rec) in rest.iter().enumerate() {
                    let delta = HiveSnapshot::decode(&rec.payload).map_err(|e| {
                        DurabilityError::Corrupt(format!(
                            "chain delta record {}: {e}",
                            rec.generation
                        ))
                    })?;
                    if skip_last && k + 1 == rest.len() {
                        // Planted bug (`skip_delta` canary): the head's
                        // metadata is trusted below while its state
                        // changes are silently dropped.
                        last = delta;
                        continue;
                    }
                    platform.hive.apply_state_delta(&delta.state).map_err(|e| {
                        DurabilityError::Corrupt(format!("chain delta {}: {e}", rec.generation))
                    })?;
                    chain_deltas_applied += 1;
                    last = delta;
                }
                let (round_idx, history, snap_pods) = decode_app_meta(&last.app_meta)?;
                platform.round_idx = round_idx;
                platform.history = history;
                pod_states = Some(snap_pods);
                frame_floors = last.sessions.clone();
                last.replay_offset(&wal)
            } else {
                if store.snap_path().exists() || store.prev_path().exists() {
                    // A legacy full-snapshot campaign lives here; a
                    // chain-mode resume would silently cold-start over
                    // it. Refuse instead.
                    return Err(DurabilityError::Corrupt(
                        "chain mode found no chain records but a hive.snap exists \
                         (legacy campaign); resume it without chain settings"
                            .to_string(),
                    ));
                }
                0
            };
            chain_report = Some(load.report);
            chain_store = Some(chain);
            offset
        } else if let Some(s) = &snap {
            platform.hive = Hive::decode_state(program, platform.config.hive.clone(), &s.state)
                .map_err(|e| DurabilityError::Corrupt(format!("snapshot state: {e}")))?;
            let (round_idx, history, snap_pods) = decode_app_meta(&s.app_meta)?;
            platform.round_idx = round_idx;
            platform.history = history;
            pod_states = Some(snap_pods);
            frame_floors = s.sessions.clone();
            s.replay_offset(&wal)
        } else {
            0
        };
        // Recovered trees are decoded in-memory; move them behind the
        // paged store (if configured) before journal replay so the
        // resident budget holds during re-ingest too.
        if let Some(pcfg) = platform.config.tree_paging.clone() {
            platform
                .hive
                .enable_tree_paging(pcfg)
                .map_err(|e| io_err("page-store", &e))?;
        }
        let rounds_from_snapshot = platform.round_idx;

        let (records, scan) = journal::scan(&wal[replay_from..]);
        if let Some(err) = scan.tail_error {
            platform.config.obs.recorder.warn_or_ops(
                "platform.resume",
                "wal_tail_dropped",
                &[
                    ("tail_bytes", scan.tail_dropped as u64),
                    ("intact_records", scan.records as u64),
                ],
                format_args!(
                    "platform resume dropped {} journal tail byte(s) after {} intact \
                     record(s): {err}",
                    scan.tail_dropped, scan.records
                ),
            );
            // Cut the damaged tail so future appends land on a clean
            // record boundary.
            wal_file.truncate((replay_from + scan.valid_len) as u64)?;
        }

        let mut promote_seq = 0u64;
        let mut seg_frames: Vec<&JournalRecord> = Vec::new();
        let mut seg_promotes: Vec<&JournalRecord> = Vec::new();
        let mut seg_pods: Option<&JournalRecord> = None;
        let mut fenced_records = 0u64;
        let mut rounds_replayed = 0u64;
        let mut disconnected_records = 0u64;
        // Byte offset (in the whole journal) of the next record, and of
        // the first record of the segment currently being buffered.
        let mut offset = replay_from;
        let mut seg_start = replay_from;
        let mut seg_start_idx = 0usize;
        for (idx, rec) in records.iter().enumerate() {
            let rec_end = offset + rec.encoded_len();
            match rec.kind {
                REC_FRAME => seg_frames.push(rec),
                REC_PROMOTE => seg_promotes.push(rec),
                REC_PODS => seg_pods = Some(rec),
                REC_TOMBSTONE => {} // transport-only; the platform journals no tombstones
                REC_ABORT => {
                    // A previous resume fenced these: an uncommitted
                    // partial round that must never be applied.
                    seg_frames.clear();
                    seg_promotes.clear();
                    seg_pods = None;
                    seg_start = rec_end;
                    seg_start_idx = idx + 1;
                }
                REC_ROUND => {
                    // Decode the boundary *before* applying the segment:
                    // if the newest snapshot was destroyed and recovery
                    // fell back a generation, the journal suffix covers
                    // rounds the fallback state never saw. Merging it
                    // would skip the rounds in between, so discard the
                    // disconnected suffix instead and resume from the
                    // older — but consistent — state.
                    let mut r = codec::Reader::new(&rec.frame);
                    let report = RoundReport::decode(&mut r)
                        .map_err(|e| DurabilityError::Corrupt(format!("round record: {e}")))?;
                    if report.round != platform.round_idx {
                        disconnected_records = (records.len() - seg_start_idx) as u64;
                        platform.config.obs.recorder.warn_or_ops(
                            "platform.resume",
                            "disconnected_records",
                            &[
                                ("records", disconnected_records),
                                ("journal_round", report.round),
                                ("state_round", platform.round_idx),
                            ],
                            format_args!(
                                "platform resume discarding {disconnected_records} \
                                 disconnected journal record(s): round record says {} but the \
                                 recovered state is at round {}",
                                report.round, platform.round_idx
                            ),
                        );
                        seg_frames.clear();
                        seg_promotes.clear();
                        seg_pods = None;
                        wal_file.truncate(seg_start as u64)?;
                        break;
                    }
                    seg_frames.sort_by_key(|r| (r.session, r.seq));
                    for fr in seg_frames.drain(..) {
                        let traces = wire::decode_batch(&fr.frame)
                            .map_err(|e| DurabilityError::Corrupt(format!("frame batch: {e}")))?;
                        for trace in &traces {
                            platform.hive.ingest(trace);
                        }
                        let floor = frame_floors.entry(fr.session).or_insert(0);
                        *floor = (*floor).max(fr.seq + 1);
                    }
                    for pr in seg_promotes.drain(..) {
                        let mut r = codec::Reader::new(&pr.frame);
                        let signature = r
                            .str("promote.signature")
                            .map_err(|e| DurabilityError::Corrupt(e.to_string()))?
                            .to_string();
                        let overlay = Overlay::decode(&mut r)
                            .map_err(|e| DurabilityError::Corrupt(e.to_string()))?;
                        platform.hive.promote(
                            &signature,
                            &FixCandidate {
                                overlay,
                                description: String::new(),
                            },
                        );
                        promote_seq = promote_seq.max(pr.seq + 1);
                    }
                    if platform.config.guidance_enabled {
                        // Re-run guidance to advance hive-internal state;
                        // the directives it produced are already queued
                        // inside the committed pod images, so the copies
                        // here are discarded.
                        let _ = platform.hive.guidance();
                    }
                    if let Some(pr) = seg_pods.take() {
                        pod_states = Some(decode_pod_states(&pr.frame)?);
                    }
                    platform.round_idx += 1;
                    rounds_replayed += 1;
                    platform.history.push(report);
                    seg_start = rec_end;
                    seg_start_idx = idx + 1;
                }
                other => {
                    return Err(DurabilityError::Corrupt(format!(
                        "unknown journal record kind {other}"
                    )));
                }
            }
            offset = rec_end;
        }
        let partial =
            (seg_frames.len() + seg_promotes.len() + usize::from(seg_pods.is_some())) as u64;
        if partial > 0 {
            // The process died mid-round: those records were never acked
            // (the round never returned), so discard them — and fence
            // them so every future replay discards them too.
            let mut rec = Vec::new();
            journal::append_record(&mut rec, REC_ABORT, SESSION_ROUND, platform.round_idx, &[]);
            wal_file.append(&rec)?;
            wal_file.sync()?;
            fenced_records = partial;
        }

        // Process equivalence: install the freshest committed pod images
        // (journal beats snapshot; a cold start keeps the seed-derived
        // population, which *is* the round-0 state).
        if let Some(states) = pod_states {
            restore_pod_states(&mut platform.pods, states)?;
        }

        platform.durable = Some(DurableState {
            cfg: dcfg,
            store,
            chain: chain_store,
            journal: wal_file,
            promote_seq,
            frame_floors,
        });
        // In chain mode the "snapshot" load report mirrors the chain
        // walk (primary/fallback lineage, or cold); the full defect
        // detail rides in `chain`.
        let snapshot_report = match &chain_report {
            Some(cr) => LoadReport {
                source: match cr.source {
                    ChainSource::Primary => SnapshotSource::Primary,
                    ChainSource::Fallback => SnapshotSource::Fallback,
                    ChainSource::None => SnapshotSource::None,
                },
                primary_error: None,
                fallback_error: None,
            },
            None => load_report,
        };
        Ok((
            platform,
            ResumeReport {
                snapshot: snapshot_report,
                rounds_from_snapshot,
                rounds_replayed,
                wal_replay_offset: replay_from as u64,
                wal_tail_dropped: scan.tail_dropped as u64,
                fenced_records,
                disconnected_records,
                chain: chain_report,
                chain_deltas_applied,
            },
        ))
    }

    /// The hive (read access for experiments).
    pub fn hive(&self) -> &Hive<'p> {
        &self.hive
    }

    /// The pods.
    pub fn pods(&self) -> &[Pod<'p>] {
        &self.pods
    }

    /// All round reports so far.
    pub fn history(&self) -> &[RoundReport] {
        &self.history
    }

    /// Advances one round with `execs_per_pod` executions per pod.
    ///
    /// With durability configured, the round's batch frames, fix
    /// promotions, and report are all on disk (journal appended and
    /// fsynced) *before* this returns — returning the report is the ack.
    /// A durable-commit failure panics: crash-only software dies loudly
    /// and restarts through [`resume`](Self::resume) rather than running
    /// on with unpersisted state.
    pub fn round(&mut self, execs_per_pod: u32) -> RoundReport {
        // 1. Distribute the current overlay.
        self.distribute_overlay();

        // 2. Execute and ingest (mirroring every batch frame into the
        //    durable frame log when durability is on).
        let frame_log = self
            .durable
            .is_some()
            .then(|| Mutex::new(Vec::<(u64, u64, Vec<u8>)>::new()));
        let (executions, failures, directed) = if self.config.ingest.pipelined {
            self.execute_pipelined(execs_per_pod, frame_log.as_ref())
        } else {
            self.execute_serial(execs_per_pod, frame_log.as_ref())
        };
        let frames = frame_log
            .map(|m| m.into_inner().expect("frame log poisoned"))
            .unwrap_or_default();

        // 3-6. Fix pipeline, guidance, report, durable commit.
        self.finish_round(executions, failures, directed, frames)
    }

    /// Advances one round with execution *driven from outside*: `driver`
    /// receives the pods (overlay already distributed) and the
    /// configured batch size, runs them however it likes — a
    /// virtual-time scheduler interleaving pods at simulated instants —
    /// and returns the counters plus every wire-encoded batch frame as
    /// `(session = pod index, seq, frame)` triples using the same
    /// pre-partitioned sequence layout as the built-in paths
    /// (`seq = pod_index * ceil(execs_per_pod / batch) + k`).
    ///
    /// The platform ingests the frames in `(session, seq)` order —
    /// exactly the order the pipelined merger releases them and the
    /// durable resume path replays them — then runs the identical fix /
    /// guidance / report / commit pipeline. Pods carry their own RNG and
    /// get no mid-round feedback, so any driver that runs each pod
    /// `execs_per_pod` times produces byte-identical hive state to
    /// [`round`](Self::round), regardless of interleaving.
    ///
    /// # Panics
    ///
    /// Panics if the driver returns a frame that fails wire validation —
    /// a driver bug, not an input condition.
    pub fn round_driven<F>(&mut self, driver: F) -> RoundReport
    where
        F: FnOnce(&mut [Pod<'p>], u64) -> DrivenExecution,
    {
        self.distribute_overlay();
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let drv = driver(&mut self.pods, batch);
        let mut frames = drv.frames;
        frames.sort_by_key(|&(session, seq, _)| (session, seq));
        for (_, _, frame) in &frames {
            let traces = wire::decode_batch(frame).expect("driver produced a corrupt frame");
            for trace in &traces {
                self.hive.ingest(trace);
            }
        }
        let frames = if self.durable.is_some() {
            frames
        } else {
            Vec::new()
        };
        self.finish_round(drv.executions, drv.failures, drv.directed, frames)
    }

    /// Step 1 of a round: push the hive's current overlay to every pod.
    fn distribute_overlay(&mut self) {
        let (overlay, version) = {
            let (o, v) = self.hive.current_overlay();
            (o.clone(), v)
        };
        if self.config.fixes_enabled {
            for pod in &mut self.pods {
                pod.install_fix(overlay.clone(), version);
            }
        }
    }

    /// Steps 3–6 of a round, shared by [`round`](Self::round) and
    /// [`round_driven`](Self::round_driven): fix pipeline, guidance,
    /// report, durable commit.
    fn finish_round(
        &mut self,
        executions: u64,
        failures: u64,
        directed: u64,
        frames: Vec<(u64, u64, Vec<u8>)>,
    ) -> RoundReport {
        // 3. Fix pipeline. Trial validation (the expensive part: each
        //    candidate re-executes every pooled case in the repair lab)
        //    runs on scoped threads, one proposal per thread — proposal
        //    count is bounded by distinct diagnosed failure modes, so
        //    the fan-out is small. Every proposal is validated against
        //    the *round-start* overlay; promotions are then applied
        //    sequentially in proposal order, so the chosen fixes and
        //    the overlay-version sequence are deterministic regardless
        //    of thread scheduling. (Resume replays recorded promotion
        //    decisions, never re-validation, so durable recovery is
        //    unaffected by the validation base.)
        let mut fixes_promoted = 0u64;
        let mut promoted: Vec<(String, Overlay)> = Vec::new();
        if self.config.fixes_enabled {
            let proposals = self.hive.propose_fixes();
            if !proposals.is_empty() {
                // Pool each proposal's trial cases from pods: failing
                // cases of that mode + passing regression cases.
                let trials: Vec<(Vec<TestCase>, Vec<TestCase>)> = proposals
                    .iter()
                    .map(|proposal| {
                        let failing: Vec<TestCase> = self
                            .pods
                            .iter()
                            .flat_map(|p| p.failing_cases())
                            .filter(|(_, o)| {
                                outcome_signature(o).as_deref() == Some(proposal.signature.as_str())
                            })
                            .map(|(c, _)| c.clone())
                            .take(16)
                            .collect();
                        let passing: Vec<TestCase> = self
                            .pods
                            .iter()
                            .flat_map(|p| p.passing_cases())
                            .take(32)
                            .cloned()
                            .collect();
                        (failing, passing)
                    })
                    .collect();
                let base = self.hive.current_overlay().0.clone();
                let program = self.program;
                let winners: Vec<_> = std::thread::scope(|s| {
                    let handles: Vec<_> = proposals
                        .iter()
                        .zip(&trials)
                        .map(|(proposal, (failing, passing))| {
                            let base = &base;
                            s.spawn(move || {
                                rank(
                                    program,
                                    base,
                                    &proposal.candidates,
                                    failing,
                                    passing,
                                    LabConfig::default(),
                                )
                                .into_iter()
                                .next()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("trial validation thread panicked"))
                        .collect()
                });
                for ((proposal, (failing, _)), winner) in proposals.iter().zip(&trials).zip(winners)
                {
                    let Some((candidate, validation)) = winner else {
                        continue;
                    };
                    let distribute = match validation.verdict {
                        Verdict::Distribute => true,
                        // Predicted deadlock fixes have no failing cases
                        // yet; distribute on perfect preservation
                        // evidence.
                        Verdict::Reject | Verdict::Suggest => {
                            proposal.signature.starts_with("lock-cycle:")
                                && failing.is_empty()
                                && validation.passing_total as usize
                                    >= self.config.min_preservation_cases
                                && validation.passing_preserved == validation.passing_total
                        }
                    };
                    if distribute {
                        self.hive.promote(&proposal.signature, &candidate);
                        if self.durable.is_some() {
                            promoted.push((proposal.signature.clone(), candidate.overlay.clone()));
                        }
                        fixes_promoted += 1;
                    }
                }
            }
        }

        // 4. Guidance.
        if self.config.guidance_enabled {
            let (plan, _stats) = self.hive.guidance();
            if !plan.directives.is_empty() {
                let n = self.pods.len();
                for (i, d) in plan.directives.into_iter().enumerate() {
                    // Spread directives; replicate input seeds to a few
                    // pods so one lost/odd pod cannot stall exploration.
                    match d {
                        Directive::InputSeed { .. } => {
                            for k in 0..3usize {
                                self.pods[(i * 3 + k) % n].receive_guidance([d.clone()]);
                            }
                        }
                        other => {
                            self.pods[i % n].receive_guidance([other]);
                        }
                    }
                }
            }
        }

        // 5. Report.
        let report = RoundReport {
            round: self.round_idx,
            executions,
            failures,
            failure_rate_per_10k: if executions == 0 {
                0.0
            } else {
                failures as f64 * 10_000.0 / executions as f64
            },
            fixes_promoted,
            overlay_version: self.hive.current_overlay().1,
            coverage: self.hive.coverage(),
            proofs: self.hive.proofs().len() as u64,
            directed,
        };
        self.round_idx += 1;
        self.history.push(report.clone());

        // 6. Durable commit: frames, promotions, and the round record
        //    hit the journal and are fsynced before the report (the ack)
        //    leaves this function.
        let obs = self.config.obs.clone();
        let clock = obs.span_clock();
        let commit_hist = obs
            .registry
            .as_ref()
            .map(|r| r.histogram("platform.round_commit_ns"));
        let frames_journaled = frames.len() as u64;
        let promotions_journaled = promoted.len() as u64;
        let commit_span = SpanTimer::start_if(clock.as_ref(), &commit_hist);
        let commit = self
            .commit_round(&report, frames, &promoted)
            .expect("durable round commit failed");
        let commit_ns = commit_span.map_or(0, SpanTimer::stop);
        self.telemetry.push(RoundTelemetry {
            round: report.round,
            commit_ns,
            fsync_ns: commit.fsync_ns,
            frames_journaled,
            promotions_journaled,
            compacted: commit.compacted,
            checkpoint_ns: commit.checkpoint_ns,
            checkpoint_bytes: commit.checkpoint_bytes,
        });
        if let Some(reg) = obs.registry.as_ref() {
            reg.counter("platform.rounds").incr();
            reg.counter("platform.executions").add(report.executions);
            reg.counter("platform.failures").add(report.failures);
            reg.counter("platform.fixes_promoted")
                .add(report.fixes_promoted);
        }
        // Event fields are content-determined (no timings), so the
        // events_hash of a platform run is replay- and host-stable.
        obs.recorder.info(
            "platform",
            "round_committed",
            &[
                ("round", report.round),
                ("executions", report.executions),
                ("failures", report.failures),
                ("fixes_promoted", report.fixes_promoted),
                ("overlay_version", report.overlay_version),
            ],
            format_args!(
                "round {} committed: {} executions, {} failures, {} fix(es) promoted",
                report.round, report.executions, report.failures, report.fixes_promoted
            ),
        );
        report
    }

    /// Appends one committed round to the journal (frames in merge
    /// order, then promotions, then the round record), fsyncs, and
    /// compacts into a snapshot when the journal dwarfs the live state.
    /// Returns the commit's telemetry slice (fsync is timed only when a
    /// registry is attached; the checkpoint stall is always timed).
    fn commit_round(
        &mut self,
        report: &RoundReport,
        mut frames: Vec<(u64, u64, Vec<u8>)>,
        promoted: &[(String, Overlay)],
    ) -> Result<CommitStats, DurabilityError> {
        let obs = self.config.obs.clone();
        if self.durable.is_none() {
            return Ok(CommitStats::default());
        }
        // Capture the pod population *after* guidance queued next-round
        // directives, so the durable image is exactly what an
        // uninterrupted process would carry into the next round.
        let pod_body = encode_pod_states(&self.pods);
        let d = self.durable.as_mut().expect("checked above");
        frames.sort_by_key(|&(session, seq, _)| (session, seq));
        let mut rec = Vec::new();
        for (session, seq, bytes) in &frames {
            rec.clear();
            journal::append_record(&mut rec, REC_FRAME, *session, *seq, bytes);
            d.journal.append(&rec)?;
            let floor = d.frame_floors.entry(*session).or_insert(0);
            *floor = (*floor).max(seq + 1);
        }
        for (signature, overlay) in promoted {
            let mut body = Vec::new();
            codec::put_str(&mut body, signature);
            overlay.encode_into(&mut body);
            rec.clear();
            journal::append_record(&mut rec, REC_PROMOTE, SESSION_PROMOTE, d.promote_seq, &body);
            d.promote_seq += 1;
            d.journal.append(&rec)?;
        }
        rec.clear();
        journal::append_record(&mut rec, REC_PODS, 0, report.round, &pod_body);
        d.journal.append(&rec)?;
        let mut body = Vec::new();
        report.encode_into(&mut body);
        rec.clear();
        journal::append_record(&mut rec, REC_ROUND, SESSION_ROUND, report.round, &body);
        d.journal.append(&rec)?;
        let clock = obs.span_clock();
        let fsync_hist = obs.registry.as_ref().map(|r| r.histogram("hive.fsync_ns"));
        let fsync_span = SpanTimer::start_if(clock.as_ref(), &fsync_hist);
        d.journal.sync()?;
        let fsync_ns = fsync_span.map_or(0, SpanTimer::stop);

        // Snapshot compaction: when the journal is `compact_ratio` times
        // the live state footprint (and big enough to matter), fold it
        // into a checkpoint and truncate. In chain mode the footprint is
        // taken from the chain's own bookkeeping (last full + deltas
        // since) so the trigger check never pays an O(hive) encode.
        let (ratio, min_bytes, wal_len) = (
            d.cfg.compact_ratio,
            d.cfg.min_compact_wal_bytes,
            d.journal.len(),
        );
        let mut stats = CommitStats {
            fsync_ns,
            ..CommitStats::default()
        };
        if ratio > 0 && wal_len >= min_bytes {
            let (due, state) = match &d.chain {
                Some(chain) => {
                    let footprint = chain
                        .last_full_payload_bytes()
                        .saturating_add(chain.delta_payload_bytes_since_full())
                        .max(1);
                    (wal_len >= ratio.saturating_mul(footprint), None)
                }
                None => {
                    let state = self.hive.encode_state();
                    (
                        wal_len >= ratio.saturating_mul(state.len() as u64),
                        Some(state),
                    )
                }
            };
            if due {
                let started = std::time::Instant::now();
                stats.checkpoint_bytes = self.write_checkpoint(state, true)?;
                stats.checkpoint_ns = started.elapsed().as_nanos() as u64;
                stats.compacted = true;
            }
        }
        Ok(stats)
    }

    /// Writes one checkpoint covering the whole journal, then (when
    /// `truncate`) empties the journal. Classic mode: a full
    /// [`HiveSnapshot`] swapped into `hive.snap`. Chain mode: a full or
    /// delta record appended to the chain ([`ChainStore::rebase_due`]
    /// decides), after which the hive's delta tracking is reset so the
    /// next delta covers exactly the rounds since this one. Returns the
    /// bytes written.
    ///
    /// `full_state` lets a caller that already encoded the full state
    /// (the classic compaction trigger) pass it in; `None` encodes
    /// whatever this checkpoint needs.
    fn write_checkpoint(
        &mut self,
        full_state: Option<Vec<u8>>,
        truncate: bool,
    ) -> Result<u64, DurabilityError> {
        let round_idx = self.round_idx;
        let chain_settings = self
            .durable
            .as_ref()
            .ok_or(DurabilityError::NotConfigured)?
            .cfg
            .chain
            .clone();
        let written = if let Some(cs) = chain_settings {
            let rebase = self
                .durable
                .as_ref()
                .and_then(|d| d.chain.as_ref())
                .expect("chain store open when chain settings set")
                .rebase_due(cs.rebase_ratio);
            let (kind, state) = if rebase {
                (
                    RecordKind::Full,
                    full_state.unwrap_or_else(|| self.hive.encode_state()),
                )
            } else {
                (RecordKind::Delta, self.hive.encode_state_delta())
            };
            let app_meta = encode_app_meta(round_idx, &self.history, &self.pods);
            let d = self.durable.as_mut().expect("checked above");
            let wal_bytes = d.journal.read().map_err(|e| io_err("wal-read", &e))?;
            let snap = HiveSnapshot {
                state,
                sessions: d.frame_floors.clone(),
                wal_covered: wal_bytes.len() as u64,
                wal_covered_hash: wire::fnv1a(&wal_bytes),
                app_meta,
            };
            let payload = snap.encode();
            d.chain
                .as_mut()
                .expect("chain store open")
                .append(kind, &payload)
                .map_err(|e| io_err("chain-append", &e))?;
            // From here on, deltas cover changes since *this* record.
            self.hive.mark_clean();
            payload.len() as u64
        } else {
            let state = full_state.unwrap_or_else(|| self.hive.encode_state());
            let app_meta = encode_app_meta(round_idx, &self.history, &self.pods);
            let d = self.durable.as_mut().expect("checked above");
            let wal_bytes = d.journal.read().map_err(|e| io_err("wal-read", &e))?;
            let snap = HiveSnapshot {
                state,
                sessions: d.frame_floors.clone(),
                wal_covered: wal_bytes.len() as u64,
                wal_covered_hash: wire::fnv1a(&wal_bytes),
                app_meta,
            };
            d.store.write_snapshot(&snap)?
        };
        let d = self.durable.as_mut().expect("checked above");
        if truncate {
            d.journal.truncate(0)?;
        }
        Ok(written)
    }

    /// On-demand compaction: folds the journal into a fresh checkpoint
    /// (snapshot generation, or chain record in chain mode) and
    /// truncates it, regardless of the automatic
    /// [`DurabilityConfig::compact_ratio`] trigger. Returns the payload
    /// bytes written — the deterministic stall proxy benches report.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] on a non-durable platform;
    /// [`DurabilityError::Io`] when the snapshot swap fails.
    pub fn checkpoint(&mut self) -> Result<u64, DurabilityError> {
        self.write_checkpoint(None, true)
    }

    /// Like [`checkpoint`](Self::checkpoint) but dies before the journal
    /// truncate: on return, the disk is exactly the crash window between
    /// the snapshot rename and the truncate. Crash-injection harnesses
    /// use this to prove [`resume`](Self::resume) never double-applies
    /// journal records a snapshot already covers.
    ///
    /// # Errors
    ///
    /// Same as [`checkpoint`](Self::checkpoint).
    pub fn checkpoint_interrupted(&mut self) -> Result<(), DurabilityError> {
        self.write_checkpoint(None, false).map(|_| ())
    }

    /// Serialized hive state (the byte-identity invariant checked by the
    /// durability harness: recovered == uninterrupted at the same
    /// committed round).
    pub fn hive_state(&self) -> Vec<u8> {
        self.hive.encode_state()
    }

    /// Exports every pod's durable image — the second half of the
    /// process-equivalence invariant: a resumed platform's pod states
    /// equal the uninterrupted run's at the same committed round.
    pub fn export_pod_states(&self) -> Vec<PodState> {
        self.pods.iter().map(Pod::export_state).collect()
    }

    /// Rounds committed so far.
    pub fn committed_rounds(&self) -> u64 {
        self.round_idx
    }

    /// Scrubs the campaign's durable files for bit rot *before*
    /// resuming: corrupt snapshot generations are quarantined, journal
    /// damage is cut or repaired around (see
    /// [`softborg_hive::scrub`]), and every detection records a Warn
    /// event on [`PlatformConfig::obs`]. Run this after a suspected
    /// media fault, then [`resume`](Self::resume) as usual.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::NotConfigured`] without a durability config;
    /// [`DurabilityError::Io`] on filesystem failures; and
    /// [`DurabilityError::Corrupt`] when the directory held campaign
    /// data but nothing valid survived — resuming would silently
    /// cold-start over it, which the scrub refuses to sanction.
    pub fn scrub(config: &PlatformConfig) -> Result<ScrubReport, DurabilityError> {
        let dcfg = config
            .durability
            .as_ref()
            .ok_or(DurabilityError::NotConfigured)?;
        let store = SnapshotStore::open(&dcfg.dir).map_err(|e| io_err("snapshot-dir", &e))?;
        let mut report = if dcfg.chain.is_some() {
            let chain =
                ChainStore::open(&chain_dir(&dcfg.dir)).map_err(|e| io_err("chain-dir", &e))?;
            scrub_chained_campaign(&store, &chain, &config.obs.recorder)?
        } else {
            scrub_campaign(&store, &config.obs.recorder)?
        };
        if let Some(pcfg) = &config.tree_paging {
            report.pages = Some(scrub_page_dir(&pcfg.dir, &config.obs.recorder)?);
        }
        Ok(report)
    }

    /// Current write-ahead-journal size in bytes (`None` when the
    /// platform is not durable). The compaction bound asserted by E16:
    /// this stays below `compact_ratio × live state size` plus one
    /// round's worth of records.
    pub fn wal_len(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.journal.len())
    }

    /// Generation of the chain head (`None` when chain mode is off or
    /// the chain is cold).
    pub fn chain_head_generation(&self) -> Option<u64> {
        self.durable
            .as_ref()
            .and_then(|d| d.chain.as_ref())
            .and_then(ChainStore::head_generation)
    }

    /// Paged-tree counters (zeros when [`PlatformConfig::tree_paging`]
    /// is off): faults, evictions, resident vs total pages and items.
    pub fn page_stats(&self) -> PageStats {
        self.hive.tree().page_stats()
    }

    /// The original serial loop: run, ingest, repeat. When `frame_log`
    /// is set, traces are additionally batched into wire frames with the
    /// same `(session = pod index, seq)` layout the pipelined path uses,
    /// so the durable journal is identical either way.
    fn execute_serial(
        &mut self,
        execs_per_pod: u32,
        frame_log: Option<&FrameLog>,
    ) -> (u64, u64, u64) {
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let (mut executions, mut failures, mut directed) = (0u64, 0u64, 0u64);
        for (pod_index, pod) in self.pods.iter_mut().enumerate() {
            let pod_index = pod_index as u64;
            let mut next_seq = pod_index * frames_per_pod;
            let mut buf: Vec<softborg_trace::ExecutionTrace> = Vec::new();
            for _ in 0..execs_per_pod {
                let run = pod.run_once();
                executions += 1;
                if run.result.outcome.is_failure() {
                    failures += 1;
                }
                if run.directed {
                    directed += 1;
                }
                if let Some(log) = frame_log {
                    buf.push(run.trace.clone());
                    if buf.len() as u64 == batch {
                        let frame = wire::encode_batch(&buf);
                        log.lock()
                            .expect("frame log poisoned")
                            .push((pod_index, next_seq, frame));
                        next_seq += 1;
                        buf.clear();
                    }
                }
                self.hive.ingest(&run.trace);
            }
            if !buf.is_empty() {
                let frame = wire::encode_batch(&buf);
                if let Some(log) = frame_log {
                    log.lock()
                        .expect("frame log poisoned")
                        .push((pod_index, next_seq, frame));
                }
                buf.clear();
            }
        }
        (executions, failures, directed)
    }

    /// Pods run on scoped threads and report wire-encoded batch frames
    /// into the hive's staged ingest pipeline while it decodes,
    /// reconstructs, and merges concurrently.
    ///
    /// Frame sequence numbers are pre-partitioned by pod index (each pod
    /// produces exactly `ceil(execs_per_pod / batch)` frames), so the
    /// ordered merger replays traces in exact pod-major order — the same
    /// order the serial loop ingests in. Pods carry their own RNG and
    /// receive no mid-round feedback, so the resulting hive state is
    /// byte-identical to [`execute_serial`](Self::execute_serial).
    fn execute_pipelined(
        &mut self,
        execs_per_pod: u32,
        frame_log: Option<&FrameLog>,
    ) -> (u64, u64, u64) {
        let batch = self.config.ingest.batch_size.max(1) as u64;
        let frames_per_pod = u64::from(execs_per_pod).div_ceil(batch);
        let n_pods = self.pods.len();
        let threads = self.config.ingest.pod_threads.max(1).min(n_pods.max(1));
        let chunk_size = n_pods.div_ceil(threads).max(1);
        let mut cfg = self.config.ingest.pipeline.clone();
        if !cfg.obs.is_enabled() {
            // One attach point: platform-level telemetry flows into the
            // ingest stage unless the pipeline has its own sinks.
            cfg.obs = self.config.obs.clone();
        }
        let pods = &mut self.pods;
        let (counters, stats) = self.hive.ingest_frames(&cfg, move |tx| {
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                for (ci, chunk) in pods.chunks_mut(chunk_size).enumerate() {
                    let tx = tx.clone();
                    handles.push(s.spawn(move || {
                        let (mut executions, mut failures, mut directed) = (0u64, 0u64, 0u64);
                        for (j, pod) in chunk.iter_mut().enumerate() {
                            let pod_index = (ci * chunk_size + j) as u64;
                            let mut next_seq = pod_index * frames_per_pod;
                            let mut buf: Vec<softborg_trace::ExecutionTrace> =
                                Vec::with_capacity(batch as usize);
                            for _ in 0..execs_per_pod {
                                let run = pod.run_once();
                                executions += 1;
                                if run.result.outcome.is_failure() {
                                    failures += 1;
                                }
                                if run.directed {
                                    directed += 1;
                                }
                                buf.push(run.trace);
                                if buf.len() as u64 == batch {
                                    let frame = wire::encode_batch(&buf);
                                    if let Some(log) = frame_log {
                                        log.lock().expect("frame log poisoned").push((
                                            pod_index,
                                            next_seq,
                                            frame.clone(),
                                        ));
                                    }
                                    tx.submit_at(next_seq, frame);
                                    next_seq += 1;
                                    buf.clear();
                                }
                            }
                            if !buf.is_empty() {
                                let frame = wire::encode_batch(&buf);
                                if let Some(log) = frame_log {
                                    log.lock().expect("frame log poisoned").push((
                                        pod_index,
                                        next_seq,
                                        frame.clone(),
                                    ));
                                }
                                tx.submit_at(next_seq, frame);
                            }
                        }
                        (executions, failures, directed)
                    }));
                }
                drop(tx);
                handles
                    .into_iter()
                    .map(|h| h.join().expect("pod thread panicked"))
                    .fold((0, 0, 0), |(a, b, c), (x, y, z)| (a + x, b + y, c + z))
            })
        });
        self.last_ingest = Some(stats);
        counters
    }

    /// Pipeline statistics from the most recent pipelined round, if any.
    pub fn last_ingest(&self) -> Option<&IngestStats> {
        self.last_ingest.as_ref()
    }

    /// Per-round telemetry for every round this *process* ran, parallel
    /// to [`history`](Self::history) but never journaled (resumed rounds
    /// therefore have no entries — see [`RoundTelemetry`]).
    pub fn round_telemetry(&self) -> &[RoundTelemetry] {
        &self.telemetry
    }

    /// The configuration the platform was built with (telemetry sinks
    /// included — the simulator paths use this to retime the attached
    /// flight recorder onto virtual time).
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Runs `rounds` rounds and returns the full history.
    pub fn run(&mut self, rounds: u32, execs_per_pod: u32) -> &[RoundReport] {
        for _ in 0..rounds {
            self.round(execs_per_pod);
        }
        self.history()
    }

    /// Signatures of all currently-diagnosed failure modes.
    pub fn diagnosed_modes(&self) -> Vec<String> {
        self.hive
            .diagnoses()
            .iter()
            .map(|d| diagnosis_signature(d))
            .collect()
    }
}

/// Snapshot `app_meta` payload: committed-round counter, the full round
/// history, and the durable pod population, in the deterministic byte
/// codec. The pod images make snapshot-only recovery (a fully compacted
/// journal) restore every pod mid-stream, exactly like replaying the
/// journal's `REC_PODS` records would.
fn encode_app_meta(round_idx: u64, history: &[RoundReport], pods: &[Pod<'_>]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u64(&mut buf, round_idx);
    codec::put_u32(&mut buf, history.len() as u32);
    for report in history {
        report.encode_into(&mut buf);
    }
    buf.extend_from_slice(&encode_pod_states(pods));
    buf
}

fn decode_app_meta(
    bytes: &[u8],
) -> Result<(u64, Vec<RoundReport>, Vec<PodState>), DurabilityError> {
    let mut r = codec::Reader::new(bytes);
    let round_idx = r.u64("app_meta.round_idx")?;
    let n = r.seq_len("app_meta.history", 112)?;
    let mut history = Vec::with_capacity(n);
    for _ in 0..n {
        history.push(RoundReport::decode(&mut r)?);
    }
    let pods = decode_pod_states_reader(&mut r)?;
    if !r.is_empty() {
        return Err(DurabilityError::Corrupt(format!(
            "app_meta has {} trailing byte(s)",
            r.remaining()
        )));
    }
    Ok((round_idx, history, pods))
}

/// Encodes the whole pod population for a `REC_PODS` journal record or a
/// snapshot's `app_meta`: `u32 count` then one length-prefixed
/// [`PodState`] image (itself versioned and checksummed) per pod.
pub(crate) fn encode_pod_states(pods: &[Pod<'_>]) -> Vec<u8> {
    let mut buf = Vec::new();
    codec::put_u32(&mut buf, pods.len() as u32);
    for pod in pods {
        codec::put_bytes(&mut buf, &pod.export_state().encode());
    }
    buf
}

/// Decodes a pod population written by [`encode_pod_states`]. Every pod
/// image re-verifies its own checksum, so torn bytes behind a valid
/// journal checksum still fail loudly.
pub(crate) fn decode_pod_states(bytes: &[u8]) -> Result<Vec<PodState>, DurabilityError> {
    let mut r = codec::Reader::new(bytes);
    let states = decode_pod_states_reader(&mut r)?;
    if !r.is_empty() {
        return Err(DurabilityError::Corrupt(format!(
            "pod-state record has {} trailing byte(s)",
            r.remaining()
        )));
    }
    Ok(states)
}

fn decode_pod_states_reader(r: &mut codec::Reader<'_>) -> Result<Vec<PodState>, DurabilityError> {
    let n = r
        .seq_len("pod_states", 9)
        .map_err(|e| DurabilityError::Corrupt(e.to_string()))?;
    let mut states = Vec::with_capacity(n);
    for i in 0..n {
        let bytes = r
            .bytes("pod_states.image")
            .map_err(|e| DurabilityError::Corrupt(e.to_string()))?;
        states.push(
            PodState::decode(bytes)
                .map_err(|e| DurabilityError::Corrupt(format!("pod {i} state: {e}")))?,
        );
    }
    Ok(states)
}

/// Installs decoded pod images onto a freshly built population,
/// requiring an exact count match — a mismatch means the durable record
/// belongs to a differently-configured campaign.
pub(crate) fn restore_pod_states(
    pods: &mut [Pod<'_>],
    states: Vec<PodState>,
) -> Result<(), DurabilityError> {
    if states.len() != pods.len() {
        return Err(DurabilityError::Corrupt(format!(
            "pod-state record holds {} pod(s) but the campaign is configured for {}",
            states.len(),
            pods.len()
        )));
    }
    for (pod, state) in pods.iter_mut().zip(states) {
        pod.restore_state(state);
    }
    Ok(())
}
