//! The flight recorder: bounded per-source ring buffers of structured
//! [`Event`]s, stamped with the injectable [`Clock`] and a monotonic
//! per-source sequence number.
//!
//! ## Determinism contract
//!
//! An event has *stable* fields — source, sequence number, severity,
//! kind, and the `(name, u64)` payload pairs — and *unstable* ones: the
//! timestamp (wall time on real threads) and the human message (which
//! may embed wall-clock quantities). [`FlightRecorder::events_hash`]
//! folds only the stable fields, walking sources in sorted name order
//! and events in sequence order, so the hash is independent of thread
//! interleaving and host speed: a threaded run and a simulated run with
//! the same semantics hash identically, and a simulated run replays to
//! the same hash always. Under the simulator the timestamps themselves
//! are virtual and therefore replay-stable too — the JSONL export of a
//! sim run is byte-identical across replays.
//!
//! Rings are bounded: at capacity the oldest event of that source is
//! discarded and counted in `dropped` (which the hash also folds, so
//! silent truncation cannot masquerade as an identical run).

use crate::clock::Clock;
use crate::{fnv1a_step, FNV_OFFSET};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Fine-grained diagnostic events.
    Debug,
    /// Normal operational milestones (round committed, session done).
    Info,
    /// Something was lost or degraded but the run continues (journal
    /// tail dropped, records truncated). Replaces the old `eprintln!`s.
    Warn,
    /// An operation failed.
    Error,
}

impl Severity {
    /// Lower-case name, as used in the JSONL export.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One recorded event. See the [module docs](self) for which fields are
/// hash-stable.
#[derive(Debug, Clone)]
pub struct Event {
    /// Component that recorded the event (`hive.journal`,
    /// `transport.client.3`, `sim.node.7`, …).
    pub source: Arc<str>,
    /// Monotonic per-source sequence number, starting at 0.
    pub seq: u64,
    /// [`Clock::now_ns`] at record time (virtual under the simulator).
    /// NOT folded into the events hash.
    pub at_ns: u64,
    /// Severity level.
    pub severity: Severity,
    /// Static event kind (`retransmit`, `journal_tail_dropped`, …).
    pub kind: &'static str,
    /// Structured payload: `(name, value)` pairs.
    pub fields: Vec<(&'static str, u64)>,
    /// Human-readable message. NOT folded into the events hash.
    pub msg: String,
}

impl Event {
    /// `true` when the hash-stable fields of `self` and `other` match
    /// (timestamps and messages are ignored).
    pub fn same_stable(&self, other: &Event) -> bool {
        self.source == other.source
            && self.seq == other.seq
            && self.severity == other.severity
            && self.kind == other.kind
            && self.fields == other.fields
    }

    /// One JSONL line for this event (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"source\": ");
        crate::escape_json(&self.source, &mut out);
        let _ = write!(
            out,
            ", \"seq\": {}, \"at_ns\": {}, \"severity\": \"{}\", \"kind\": ",
            self.seq, self.at_ns, self.severity
        );
        crate::escape_json(self.kind, &mut out);
        out.push_str(", \"fields\": {");
        for (i, (name, v)) in self.fields.iter().enumerate() {
            let sep = if i == 0 { "" } else { ", " };
            out.push_str(sep);
            crate::escape_json(name, &mut out);
            let _ = write!(out, ": {v}");
        }
        out.push_str("}, \"msg\": ");
        crate::escape_json(&self.msg, &mut out);
        out.push('}');
        out
    }
}

#[derive(Debug, Default)]
struct SourceState {
    next_seq: u64,
    dropped: u64,
    ring: VecDeque<Event>,
}

#[derive(Debug)]
struct Inner {
    /// Swappable in place (shared by every clone) so a simulator run
    /// can retime an already-threaded recorder onto its virtual clock.
    clock: Mutex<Arc<dyn Clock>>,
    capacity: usize,
    stderr_echo: bool,
    min_severity: Severity,
    sources: Mutex<BTreeMap<Arc<str>, Arc<Mutex<SourceState>>>>,
}

/// The flight recorder. Cloning shares the underlying rings; the
/// [`Default`]/[`disabled`](FlightRecorder::disabled) recorder drops
/// every event at zero cost, so handles can be threaded through configs
/// unconditionally.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// A live recorder stamping events with `clock`, retaining up to
    /// `capacity` events per source.
    pub fn new(clock: Arc<dyn Clock>, capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                clock: Mutex::new(clock),
                capacity: capacity.max(1),
                stderr_echo: false,
                min_severity: Severity::Debug,
                sources: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// A recorder that records nothing (the default).
    pub fn disabled() -> Self {
        FlightRecorder::default()
    }

    /// Rebuilds the recorder with stderr echo on/off: echoed recorders
    /// print Warn+ events to stderr as they are recorded (existing
    /// rings are kept — only the flag changes).
    pub fn with_stderr_echo(self, echo: bool) -> Self {
        match self.inner {
            None => self,
            Some(inner) => FlightRecorder {
                inner: Some(Arc::new(Inner {
                    clock: Mutex::new(inner.clock.lock().expect("clock").clone()),
                    capacity: inner.capacity,
                    stderr_echo: echo,
                    min_severity: inner.min_severity,
                    sources: Mutex::new(inner.sources.lock().expect("sources").clone()),
                })),
            },
        }
    }

    /// Rebuilds the recorder with a severity floor: events below
    /// `min` are discarded at record time.
    pub fn with_min_severity(self, min: Severity) -> Self {
        match self.inner {
            None => self,
            Some(inner) => FlightRecorder {
                inner: Some(Arc::new(Inner {
                    clock: Mutex::new(inner.clock.lock().expect("clock").clone()),
                    capacity: inner.capacity,
                    stderr_echo: inner.stderr_echo,
                    min_severity: min,
                    sources: Mutex::new(inner.sources.lock().expect("sources").clone()),
                })),
            },
        }
    }

    /// `true` when events are actually retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The clock events are stamped with (`None` when disabled).
    pub fn clock(&self) -> Option<Arc<dyn Clock>> {
        self.inner
            .as_ref()
            .map(|i| i.clock.lock().expect("clock").clone())
    }

    /// Swaps the stamping clock in place, visible to every clone of
    /// this recorder. The simulator paths use this to retime a
    /// recorder the caller built on wall time onto the run's virtual
    /// [`SimClock`]: events recorded from inside the simulation then
    /// carry virtual instants. Already-recorded timestamps are
    /// untouched. No-op on a disabled recorder.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        if let Some(inner) = &self.inner {
            *inner.clock.lock().expect("clock") = clock;
        }
    }

    /// A cached handle for one source: skips the source-map lookup on
    /// every record, for sources that emit from hot paths.
    pub fn source(&self, name: &str) -> EventSink {
        match &self.inner {
            None => EventSink { inner: None },
            Some(inner) => {
                let name: Arc<str> = Arc::from(name);
                let state = inner
                    .sources
                    .lock()
                    .expect("sources")
                    .entry(name.clone())
                    .or_default()
                    .clone();
                EventSink {
                    inner: Some(SinkInner {
                        recorder: inner.clone(),
                        source: name,
                        state,
                    }),
                }
            }
        }
    }

    /// Records one event under `source`. Equivalent to
    /// `self.source(source).record(..)` without the handle caching.
    pub fn record(
        &self,
        source: &str,
        severity: Severity,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        if self.inner.is_some() {
            self.source(source).record(severity, kind, fields, msg);
        }
    }

    /// Records a [`Severity::Info`] event.
    pub fn info(
        &self,
        source: &str,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        self.record(source, Severity::Info, kind, fields, msg);
    }

    /// Records a [`Severity::Warn`] event.
    pub fn warn(
        &self,
        source: &str,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        self.record(source, Severity::Warn, kind, fields, msg);
    }

    /// Records a [`Severity::Error`] event.
    pub fn error(
        &self,
        source: &str,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        self.record(source, Severity::Error, kind, fields, msg);
    }

    /// Every retained event, sorted by `(source, seq)`.
    pub fn events(&self) -> Vec<Event> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let sources = inner.sources.lock().expect("sources").clone();
        let mut out = Vec::new();
        for state in sources.values() {
            out.extend(state.lock().expect("source").ring.iter().cloned());
        }
        out
    }

    /// Total events discarded by ring overflow, over all sources.
    pub fn dropped(&self) -> u64 {
        let Some(inner) = &self.inner else { return 0 };
        let sources = inner.sources.lock().expect("sources").clone();
        sources
            .values()
            .map(|s| s.lock().expect("source").dropped)
            .sum()
    }

    /// FNV-1a over the stable fields of every retained event plus each
    /// source's overflow count, walking sources in sorted name order.
    /// See the [module docs](self) for what the hash does and does not
    /// cover.
    pub fn events_hash(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let Some(inner) = &self.inner else { return h };
        let sources = inner.sources.lock().expect("sources").clone();
        for (name, state) in &sources {
            let state = state.lock().expect("source");
            h = fnv1a_step(h, name.as_bytes());
            h = fnv1a_step(h, &state.dropped.to_le_bytes());
            for ev in &state.ring {
                h = fnv1a_step(h, &ev.seq.to_le_bytes());
                h = fnv1a_step(h, &[ev.severity as u8]);
                h = fnv1a_step(h, ev.kind.as_bytes());
                for (name, v) in &ev.fields {
                    h = fnv1a_step(h, name.as_bytes());
                    h = fnv1a_step(h, &v.to_le_bytes());
                }
            }
        }
        h
    }

    /// Records a [`Severity::Warn`] event here when enabled, otherwise
    /// into the process-wide [`ops`](crate::ops) recorder (which echoes
    /// Warn+ to stderr by default) — so operational warnings are never
    /// silently lost when no capture recorder is attached.
    pub fn warn_or_ops(
        &self,
        source: &str,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        if self.is_enabled() {
            self.warn(source, kind, fields, msg);
        } else {
            crate::ops().warn(source, kind, fields, msg);
        }
    }

    /// JSONL export: one event object per line, sorted by
    /// `(source, seq)`. Byte-identical across replays of the same
    /// simulated run.
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[derive(Debug, Clone)]
struct SinkInner {
    recorder: Arc<Inner>,
    source: Arc<str>,
    state: Arc<Mutex<SourceState>>,
}

/// A cached per-source recording handle (see
/// [`FlightRecorder::source`]). Cheap to clone; a sink from a disabled
/// recorder drops everything.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    inner: Option<SinkInner>,
}

impl EventSink {
    /// `true` when events recorded here are retained.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event.
    pub fn record(
        &self,
        severity: Severity,
        kind: &'static str,
        fields: &[(&'static str, u64)],
        msg: impl fmt::Display,
    ) {
        let Some(sink) = &self.inner else { return };
        if severity < sink.recorder.min_severity {
            return;
        }
        let at_ns = sink.recorder.clock.lock().expect("clock").now_ns();
        let mut state = sink.state.lock().expect("source");
        let seq = state.next_seq;
        state.next_seq += 1;
        let ev = Event {
            source: sink.source.clone(),
            seq,
            at_ns,
            severity,
            kind,
            fields: fields.to_vec(),
            msg: msg.to_string(),
        };
        if sink.recorder.stderr_echo && severity >= Severity::Warn {
            eprintln!("{}: [{}] {}", severity, ev.source, ev.msg);
        }
        if state.ring.len() >= sink.recorder.capacity {
            state.ring.pop_front();
            state.dropped += 1;
        }
        state.ring.push_back(ev);
    }

    /// Records a [`Severity::Info`] event.
    pub fn info(&self, kind: &'static str, fields: &[(&'static str, u64)], msg: impl fmt::Display) {
        self.record(Severity::Info, kind, fields, msg);
    }

    /// Records a [`Severity::Warn`] event.
    pub fn warn(&self, kind: &'static str, fields: &[(&'static str, u64)], msg: impl fmt::Display) {
        self.record(Severity::Warn, kind, fields, msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn rec(cap: usize) -> (FlightRecorder, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new(0));
        (FlightRecorder::new(clock.clone(), cap), clock)
    }

    #[test]
    fn seq_is_monotonic_per_source() {
        let (r, clock) = rec(16);
        r.info("a", "tick", &[], "");
        clock.advance(5);
        r.info("b", "tick", &[], "");
        r.info("a", "tick", &[], "");
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(
            (evs[0].source.as_ref(), evs[0].seq, evs[0].at_ns),
            ("a", 0, 0)
        );
        assert_eq!(
            (evs[1].source.as_ref(), evs[1].seq, evs[1].at_ns),
            ("a", 1, 5)
        );
        assert_eq!(
            (evs[2].source.as_ref(), evs[2].seq, evs[2].at_ns),
            ("b", 0, 5)
        );
    }

    #[test]
    fn ring_overflow_drops_oldest_and_is_hashed() {
        let (r, _) = rec(2);
        for i in 0..4u64 {
            r.info("s", "tick", &[("i", i)], "");
        }
        let evs = r.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].fields, vec![("i", 2)]);
        assert_eq!(r.dropped(), 2);
        // A run that dropped differently hashes differently.
        let (r2, _) = rec(3);
        for i in 0..4u64 {
            r2.info("s", "tick", &[("i", i)], "");
        }
        assert_ne!(r.events_hash(), r2.events_hash());
    }

    #[test]
    fn events_hash_ignores_timestamps_and_msg_but_not_payload() {
        let (a, ca) = rec(16);
        let (b, cb) = rec(16);
        ca.advance(100);
        a.info("s", "tick", &[("n", 1)], "at 100ns");
        cb.advance(999);
        b.info("s", "tick", &[("n", 1)], "at 999ns");
        assert_eq!(a.events_hash(), b.events_hash());
        b.info("s", "tick", &[("n", 2)], "");
        assert_ne!(a.events_hash(), b.events_hash());
    }

    #[test]
    fn events_hash_is_interleaving_independent_across_sources() {
        let (a, _) = rec(16);
        a.info("x", "e", &[], "");
        a.info("y", "e", &[], "");
        a.info("x", "e", &[], "");
        let (b, _) = rec(16);
        b.info("x", "e", &[], "");
        b.info("x", "e", &[], "");
        b.info("y", "e", &[], "");
        assert_eq!(a.events_hash(), b.events_hash());
    }

    #[test]
    fn disabled_recorder_is_free_and_empty() {
        let r = FlightRecorder::disabled();
        r.warn("s", "k", &[("x", 1)], "dropped");
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.events_hash(), FNV_OFFSET);
        assert!(r.export_jsonl().is_empty());
        let sink = r.source("s");
        assert!(!sink.is_enabled());
        sink.warn("k", &[], "");
    }

    #[test]
    fn min_severity_filters_at_record_time() {
        let (r, _) = rec(16);
        let r = r.with_min_severity(Severity::Warn);
        r.info("s", "quiet", &[], "");
        r.warn("s", "loud", &[], "");
        let evs = r.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, "loud");
    }

    #[test]
    fn jsonl_escapes_and_sorts() {
        let (r, clock) = rec(16);
        clock.advance(42);
        r.warn("b", "k2", &[], "line\nbreak \"quoted\"");
        r.info("a", "k1", &[("count", 3)], "ok");
        let jsonl = r.export_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"source\": \"a\""));
        assert!(lines[0].contains("\"fields\": {\"count\": 3}"));
        assert!(lines[1].contains("\\n"));
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[1].contains("\"at_ns\": 42"));
    }

    #[test]
    fn sink_and_recorder_paths_are_equivalent() {
        let (a, _) = rec(16);
        let (b, _) = rec(16);
        let sink = a.source("s");
        sink.info("k", &[("v", 9)], "m");
        b.info("s", "k", &[("v", 9)], "m");
        assert_eq!(a.events_hash(), b.events_hash());
    }
}
