//! The divergence explainer: given the flight-recorder streams of two
//! runs that were expected to be identical (same seed, or fault plans
//! expected not to matter), report the **first divergent event** —
//! source, virtual instant, payload — instead of a bare hash mismatch.
//!
//! "First" means: per source, walk both streams in sequence order to
//! the first event whose stable fields differ (or where one stream ends
//! early); across sources, pick the candidate with the smallest
//! timestamp (ties broken by source name), which under the simulator is
//! the earliest virtual instant at which the two executions visibly
//! parted ways.

use crate::recorder::{Event, FlightRecorder};
use std::collections::BTreeMap;
use std::fmt;

/// How the two streams differ at the divergence point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// Both streams have an event at this `(source, seq)` but the
    /// stable fields differ.
    Mismatch,
    /// Only run A has this event; run B's stream ended first.
    OnlyInA,
    /// Only run B has this event; run A's stream ended first.
    OnlyInB,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DivergenceKind::Mismatch => "mismatch",
            DivergenceKind::OnlyInA => "only in run A",
            DivergenceKind::OnlyInB => "only in run B",
        })
    }
}

/// The first point at which two runs' event streams part ways.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Source whose streams diverge.
    pub source: String,
    /// Sequence number of the first divergent event in that source.
    pub seq: u64,
    /// How the streams differ.
    pub kind: DivergenceKind,
    /// Run A's event at `(source, seq)`, when present.
    pub a: Option<Event>,
    /// Run B's event at `(source, seq)`, when present.
    pub b: Option<Event>,
    /// Matching events before the divergence, over all sources.
    pub common_prefix: u64,
}

impl Divergence {
    /// Timestamp of the divergence: the smaller of the two sides'
    /// `at_ns` (virtual ns under the simulator).
    pub fn at_ns(&self) -> u64 {
        match (&self.a, &self.b) {
            (Some(a), Some(b)) => a.at_ns.min(b.at_ns),
            (Some(a), None) => a.at_ns,
            (None, Some(b)) => b.at_ns,
            (None, None) => 0,
        }
    }

    /// A one-line summary (`source seq kind @ns: a_kind vs b_kind`) —
    /// stable across replays of the same divergence, so corpus entries
    /// can pin it and regression replays can compare it exactly.
    pub fn brief(&self) -> String {
        let side = |ev: &Option<Event>| match ev {
            Some(ev) => ev.kind,
            None => "(stream ended)",
        };
        format!(
            "{} seq={} {} @{}ns: {} vs {}",
            self.source,
            self.seq,
            self.kind,
            self.at_ns(),
            side(&self.a),
            side(&self.b)
        )
    }
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "first divergent event ({}): source={} seq={} at {}ns \
             ({} events matched before divergence)",
            self.kind,
            self.source,
            self.seq,
            self.at_ns(),
            self.common_prefix
        )?;
        let side = |f: &mut fmt::Formatter<'_>, label: &str, ev: &Option<Event>| match ev {
            Some(ev) => writeln!(
                f,
                "  run {label}: [{}] {} {:?} at {}ns — {}",
                ev.severity, ev.kind, ev.fields, ev.at_ns, ev.msg
            ),
            None => writeln!(f, "  run {label}: (stream ended)"),
        };
        side(f, "A", &self.a)?;
        side(f, "B", &self.b)
    }
}

/// Diffs two event streams (each sorted by `(source, seq)`, as
/// [`FlightRecorder::events`] returns them) and reports the first
/// divergent event, or `None` when the streams match on all stable
/// fields.
pub fn explain(a: &[Event], b: &[Event]) -> Option<Divergence> {
    let by_source = |evs: &[Event]| {
        let mut m: BTreeMap<String, Vec<Event>> = BTreeMap::new();
        for ev in evs {
            m.entry(ev.source.to_string()).or_default().push(ev.clone());
        }
        m
    };
    let ma = by_source(a);
    let mb = by_source(b);
    static EMPTY: Vec<Event> = Vec::new();
    let mut best: Option<Divergence> = None;
    let mut matched_total = 0u64;
    for source in ma.keys().chain(mb.keys()) {
        if best.as_ref().is_some_and(|d| &d.source == source) {
            continue; // chain() visits shared sources twice
        }
        let sa = ma.get(source).unwrap_or(&EMPTY);
        let sb = mb.get(source).unwrap_or(&EMPTY);
        let mut matched_here = 0u64;
        let mut cand: Option<Divergence> = None;
        for i in 0..sa.len().max(sb.len()) {
            let (ea, eb) = (sa.get(i), sb.get(i));
            let kind = match (ea, eb) {
                (Some(ea), Some(eb)) if ea.same_stable(eb) => {
                    matched_here += 1;
                    continue;
                }
                (Some(_), Some(_)) => DivergenceKind::Mismatch,
                (Some(_), None) => DivergenceKind::OnlyInA,
                (None, Some(_)) => DivergenceKind::OnlyInB,
                (None, None) => unreachable!("i < max(len)"),
            };
            cand = Some(Divergence {
                source: source.clone(),
                seq: ea.or(eb).map(|e| e.seq).unwrap_or(i as u64),
                kind,
                a: ea.cloned(),
                b: eb.cloned(),
                common_prefix: 0, // filled in below, over all sources
            });
            break;
        }
        matched_total += matched_here;
        if let Some(cand) = cand {
            let earlier = match &best {
                None => true,
                Some(best) => {
                    (cand.at_ns(), cand.source.as_str()) < (best.at_ns(), best.source.as_str())
                }
            };
            if earlier {
                best = Some(cand);
            }
        }
    }
    best.map(|mut d| {
        d.common_prefix = matched_total;
        d
    })
}

/// [`explain`] over two recorders' retained events.
pub fn explain_recorders(a: &FlightRecorder, b: &FlightRecorder) -> Option<Divergence> {
    explain(&a.events(), &b.events())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::Severity;
    use std::sync::Arc;

    fn rec() -> (FlightRecorder, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new(0));
        (FlightRecorder::new(clock.clone(), 64), clock)
    }

    #[test]
    fn identical_streams_have_no_divergence() {
        let (a, _) = rec();
        let (b, _) = rec();
        for r in [&a, &b] {
            r.info("x", "tick", &[("n", 1)], "");
            r.info("y", "tock", &[], "");
        }
        assert!(explain_recorders(&a, &b).is_none());
    }

    #[test]
    fn first_divergent_event_is_earliest_by_time() {
        let (a, ca) = rec();
        let (b, cb) = rec();
        // Shared prefix.
        a.info("node.1", "beat", &[("n", 0)], "");
        b.info("node.1", "beat", &[("n", 0)], "");
        // node.2 diverges at t=50, node.1 at t=100: report node.2.
        ca.set(50);
        cb.set(50);
        a.info("node.2", "crash", &[("at", 50)], "");
        b.info("node.2", "beat", &[("n", 0)], "");
        ca.set(100);
        cb.set(100);
        a.info("node.1", "beat", &[("n", 1)], "");
        b.info("node.1", "beat", &[("n", 2)], "");
        let d = explain_recorders(&a, &b).expect("diverges");
        assert_eq!(d.source, "node.2");
        assert_eq!(d.seq, 0);
        assert_eq!(d.kind, DivergenceKind::Mismatch);
        assert_eq!(d.at_ns(), 50);
        assert_eq!(d.common_prefix, 2);
        assert_eq!(d.a.unwrap().kind, "crash");
        assert_eq!(d.b.unwrap().kind, "beat");
    }

    #[test]
    fn truncated_stream_reports_the_missing_side() {
        let (a, _) = rec();
        let (b, _) = rec();
        a.warn("s", "k", &[], "");
        a.warn("s", "k2", &[], "");
        b.warn("s", "k", &[], "");
        let d = explain_recorders(&a, &b).expect("diverges");
        assert_eq!(d.kind, DivergenceKind::OnlyInA);
        assert_eq!(d.seq, 1);
        assert!(d.b.is_none());
        let shown = d.to_string();
        assert!(shown.contains("only in run A"), "{shown}");
        assert!(shown.contains("(stream ended)"), "{shown}");
    }

    #[test]
    fn severity_only_changes_are_divergences() {
        let (a, _) = rec();
        let (b, _) = rec();
        a.record("s", Severity::Info, "k", &[], "");
        b.record("s", Severity::Warn, "k", &[], "");
        assert!(explain_recorders(&a, &b).is_some());
    }
}
