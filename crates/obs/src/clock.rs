//! Injectable time source for every telemetry timestamp and gauge.
//!
//! Every stat the pipelines report (`wall_ns`, `worker_busy_ns`,
//! `frame_latency_ns`) and every flight-recorder event timestamp used to
//! read `std::time::Instant` directly, which makes them meaningless
//! under a virtual-time scheduler: the whole run completes in
//! microseconds of wall time while simulating hours. A [`Clock`]
//! decouples "what time is it" from the OS so a simulator can drive
//! telemetry with virtual time ([`ManualClock`], or the `softborg-sim`
//! scheduler's clock handle) while production keeps the monotonic
//! default.

use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond counter. Implementations must be cheap to
/// query (the pipeline reads it on every frame) and monotonic over one
/// run; the absolute origin is arbitrary — only differences are used.
pub trait Clock: Debug + Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: wall time anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-driven clock for tests and simulators: time moves only when
/// [`set`](ManualClock::set) or [`advance`](ManualClock::advance) is
/// called. Safe to share across the pipeline's threads.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `ns`.
    pub fn new(ns: u64) -> Self {
        ManualClock {
            ns: AtomicU64::new(ns),
        }
    }

    /// Jumps the clock to `ns` (never backwards — monotonicity is the
    /// caller's contract; `set` to an earlier value is clamped).
    pub fn set(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Moves the clock forward by `ns`.
    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_hand_driven() {
        let c = ManualClock::new(10);
        assert_eq!(c.now_ns(), 10);
        c.advance(5);
        assert_eq!(c.now_ns(), 15);
        c.set(100);
        assert_eq!(c.now_ns(), 100);
        c.set(50); // backwards set is clamped
        assert_eq!(c.now_ns(), 100);
    }
}
