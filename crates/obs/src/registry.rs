//! The metrics registry: named atomic counters, gauges, and fixed-bucket
//! histograms, snapshotable into a stable, sorted [`MetricsReport`].
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are interned once by
//! path and then updated lock-free — the hot path is a single relaxed
//! atomic RMW, the same cost as the hand-rolled per-crate stat structs
//! the registry replaces. Paths are dotted component names
//! (`ingest.frames_merged`, `shard.0.reroutes`,
//! `transport.retransmits`); a snapshot walks them in sorted order so
//! two reports over the same final counts are identical regardless of
//! update interleaving.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two histogram buckets. Bucket `i` counts values
/// `v` with `bucket_index(v) == i`, i.e. `v == 0` lands in bucket 0 and
/// otherwise bucket `i` holds `[2^(i-1), 2^i)`; the last bucket absorbs
/// everything larger. 48 buckets cover u64 nanosecond values up to ~3.2
/// days.
pub const HISTOGRAM_BUCKETS: usize = 48;

fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// A monotonically increasing counter handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water gauge handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if larger (high-water semantics).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket (power-of-two) histogram handle (cheap to clone).
#[derive(Debug, Clone, Default)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn record(&self, v: u64) {
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        HistogramSnapshot {
            count: c.count.load(Ordering::Relaxed),
            sum: c.sum.load(Ordering::Relaxed),
            buckets: c
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of one histogram's distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket counts (length [`HISTOGRAM_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Upper bound (exclusive) of the highest non-empty bucket — a cheap
    /// "max observed is below" gauge. 0 when empty.
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            None => 0,
            Some(0) => 1,
            Some(i) if i >= 63 => u64::MAX,
            Some(i) => 1u64 << i,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// The registry: interns metric paths and hands out shareable handles.
/// Cloning shares the underlying store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The counter registered at `path` (created on first use). Callers
    /// cache the handle; updates through it never touch the registry
    /// again.
    pub fn counter(&self, path: &str) -> Counter {
        let mut m = self.inner.counters.lock().expect("counters");
        match m.get(path) {
            Some(c) => c.clone(),
            None => {
                let c = Counter::default();
                m.insert(path.to_string(), c.clone());
                c
            }
        }
    }

    /// The gauge registered at `path` (created on first use).
    pub fn gauge(&self, path: &str) -> Gauge {
        let mut m = self.inner.gauges.lock().expect("gauges");
        match m.get(path) {
            Some(g) => g.clone(),
            None => {
                let g = Gauge::default();
                m.insert(path.to_string(), g.clone());
                g
            }
        }
    }

    /// The histogram registered at `path` (created on first use).
    pub fn histogram(&self, path: &str) -> Histogram {
        let mut m = self.inner.histograms.lock().expect("histograms");
        match m.get(path) {
            Some(h) => h.clone(),
            None => {
                let h = Histogram::default();
                m.insert(path.to_string(), h.clone());
                h
            }
        }
    }

    /// A stable snapshot of every registered metric, sorted by path.
    /// Two snapshots taken over the same final counts are equal no
    /// matter how the updates interleaved.
    pub fn snapshot(&self) -> MetricsReport {
        MetricsReport {
            counters: self
                .inner
                .counters
                .lock()
                .expect("counters")
                .iter()
                .map(|(k, c)| (k.clone(), c.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("gauges")
                .iter()
                .map(|(k, g)| (k.clone(), g.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("histograms")
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// A stable, path-sorted snapshot of a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsReport {
    /// `(path, value)` for every counter, sorted by path.
    pub counters: Vec<(String, u64)>,
    /// `(path, value)` for every gauge, sorted by path.
    pub gauges: Vec<(String, u64)>,
    /// `(path, snapshot)` for every histogram, sorted by path.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsReport {
    /// The counter value at `path`, if registered.
    pub fn counter(&self, path: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(k, _)| k.as_str().cmp(path))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// The gauge value at `path`, if registered.
    pub fn gauge(&self, path: &str) -> Option<u64> {
        self.gauges
            .binary_search_by(|(k, _)| k.as_str().cmp(path))
            .ok()
            .map(|i| self.gauges[i].1)
    }

    /// The histogram snapshot at `path`, if registered.
    pub fn histogram(&self, path: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|(k, _)| k.as_str().cmp(path))
            .ok()
            .map(|i| &self.histograms[i].1)
    }

    /// Serializes the report as a JSON object (hand-rolled; the build is
    /// offline and has no JSON dependency). Histogram bucket vectors are
    /// trimmed of trailing zero buckets to keep the output readable.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    ");
            crate::escape_json(k, &mut out);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    ");
            crate::escape_json(k, &mut out);
            let _ = write!(out, ": {v}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    ");
            crate::escape_json(k, &mut out);
            let _ = write!(
                out,
                ": {{\"count\": {}, \"sum\": {}, \"mean\": {}, \"buckets\": [",
                h.count,
                h.sum,
                h.mean()
            );
            let last = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
            for (j, b) in h.buckets[..last].iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(out, "{sep}{b}");
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_interned_by_path() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.y");
        let b = reg.counter("x.y");
        a.add(2);
        b.incr();
        assert_eq!(reg.counter("x.y").get(), 3);
        assert_eq!(reg.snapshot().counter("x.y"), Some(3));
        assert_eq!(reg.snapshot().counter("missing"), None);
    }

    #[test]
    fn gauge_set_max_is_high_water() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("q.high_water");
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn histogram_buckets_are_power_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1010);
        assert_eq!(snap.mean(), 168);
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.max_bound(), 1024);
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let reg = MetricsRegistry::new();
        reg.counter("b").incr();
        reg.counter("a").add(2);
        reg.gauge("z").set(9);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("a".to_string(), 2), ("b".to_string(), 1)]
        );
        assert_eq!(snap, reg.snapshot());
    }

    #[test]
    fn json_is_well_formed_ish() {
        let reg = MetricsRegistry::new();
        reg.counter("ingest.frames_merged").add(7);
        reg.histogram("lat").record(5);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"ingest.frames_merged\": 7"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces:\n{json}"
        );
    }
}
