//! Span-style timers: measure one stage's duration against a [`Clock`]
//! and feed it into a [`Histogram`] bucket on completion.
//!
//! Spans are deliberately allocation-free and optional: hot stages hold
//! an `Option<Histogram>` and only start a span when telemetry is
//! attached, so the telemetry-off cost is a branch on a `None`.

use crate::clock::Clock;
use crate::registry::Histogram;

/// An in-flight measurement of one stage. Obtain via
/// [`SpanTimer::start`]; the elapsed time is recorded into the
/// histogram when the span is [`stop`](SpanTimer::stop)ped (or dropped
/// — stop returns the elapsed ns when the caller also wants the value).
#[derive(Debug)]
pub struct SpanTimer<'c> {
    clock: &'c dyn Clock,
    hist: Histogram,
    started_ns: u64,
    recorded: bool,
}

impl<'c> SpanTimer<'c> {
    /// Starts a span at `clock`'s current instant.
    pub fn start(clock: &'c dyn Clock, hist: &Histogram) -> Self {
        SpanTimer {
            clock,
            hist: hist.clone(),
            started_ns: clock.now_ns(),
            recorded: false,
        }
    }

    /// Starts a span only when `hist` is attached; the `None` case is
    /// the telemetry-off fast path.
    pub fn start_if(clock: &'c dyn Clock, hist: &Option<Histogram>) -> Option<Self> {
        hist.as_ref().map(|h| SpanTimer::start(clock, h))
    }

    /// Ends the span, records the elapsed nanoseconds, and returns them.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    fn finish(&mut self) -> u64 {
        if self.recorded {
            return 0;
        }
        self.recorded = true;
        let elapsed = self.clock.now_ns().saturating_sub(self.started_ns);
        self.hist.record(elapsed);
        elapsed
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::registry::MetricsRegistry;

    #[test]
    fn span_records_elapsed_once() {
        let clock = ManualClock::new(100);
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("stage_ns");
        let span = SpanTimer::start(&clock, &hist);
        clock.advance(37);
        assert_eq!(span.stop(), 37);
        let snap = hist.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 37);
    }

    #[test]
    fn span_records_on_drop() {
        let clock = ManualClock::new(0);
        let reg = MetricsRegistry::new();
        let hist = reg.histogram("stage_ns");
        {
            let _span = SpanTimer::start(&clock, &hist);
            clock.advance(5);
        }
        assert_eq!(hist.snapshot().sum, 5);
    }

    #[test]
    fn start_if_skips_detached() {
        let clock = ManualClock::new(0);
        assert!(SpanTimer::start_if(&clock, &None).is_none());
        let reg = MetricsRegistry::new();
        let hist = Some(reg.histogram("h"));
        let span = SpanTimer::start_if(&clock, &hist).expect("attached");
        clock.advance(2);
        assert_eq!(span.stop(), 2);
    }
}
