//! `softborg-obs` — the unified observability layer: a metrics registry
//! of cheap atomic counters/gauges/histograms, a flight recorder of
//! structured events, span timers for the hot stages, and a divergence
//! explainer for simulator runs.
//!
//! The layer is **deterministic under the simulator** by construction:
//!
//! * Timestamps come from the injectable [`Clock`] abstraction — wall
//!   time on real threads, virtual time under the `softborg-sim`
//!   scheduler's clock — so telemetry from a simulated fleet day is in
//!   fleet time, not host time.
//! * Every flight-recorder [`Event`] carries a monotonic per-source
//!   sequence number, and [`FlightRecorder::events_hash`] folds only the
//!   *stable* fields (source, sequence, severity, kind, payload) in
//!   sorted source order — never timestamps, never thread interleaving.
//!   Two runs with the same semantics hash identically even when one is
//!   threaded and one is simulated; a simulated run replays to the same
//!   hash always.
//! * Telemetry is passive: recording never branches the code under
//!   observation, draws randomness, or writes to journals, so
//!   telemetry-on and telemetry-off runs are byte-identical in hive and
//!   platform state.
//!
//! When two simulator runs diverge (`sched_trace_hash` or state bytes
//! differ), [`explain::explain`] diffs their flight-recorder streams and
//! reports the first divergent event — source, virtual instant, payload
//! — instead of a bare hash mismatch.

#![warn(missing_docs)]

pub mod clock;
pub mod explain;
pub mod rates;
pub mod recorder;
pub mod registry;
pub mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use explain::{explain, explain_recorders, Divergence, DivergenceKind};
pub use recorder::{Event, EventSink, FlightRecorder, Severity};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsReport, HISTOGRAM_BUCKETS,
};
pub use span::SpanTimer;

use std::sync::{Mutex, OnceLock};

/// FNV-1a offset basis (matches `softborg_trace::wire::fnv1a` and the
/// simulator's `sched_trace_hash`).
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a hash.
pub fn fnv1a_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Appends `s` to `out` as a double-quoted JSON string (the build is
/// offline and has no JSON dependency, so serialization is hand-rolled
/// here once for metrics reports and JSONL event export).
pub fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A bundle of telemetry sinks a subsystem threads through its config:
/// an optional shared [`MetricsRegistry`] (when absent the subsystem
/// keeps a private one, and skips the optional histogram spans) and a
/// [`FlightRecorder`] handle (disabled by default, so the zero-config
/// path records nothing).
#[derive(Debug, Clone, Default)]
pub struct ObsHandles {
    /// Registry to publish counters/gauges/histograms into. `None`
    /// means "metrics stay private to the run" — counters still back
    /// the per-run stats structs, but no histograms are recorded.
    pub registry: Option<MetricsRegistry>,
    /// Flight recorder for structured events. Disabled by default.
    pub recorder: FlightRecorder,
}

impl ObsHandles {
    /// Handles that publish into `registry` and record into `recorder`.
    pub fn new(registry: MetricsRegistry, recorder: FlightRecorder) -> Self {
        ObsHandles {
            registry: Some(registry),
            recorder,
        }
    }

    /// `true` when either sink is live (used to gate span timers).
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some() || self.recorder.is_enabled()
    }

    /// The clock spans and derived timings should be measured against:
    /// the recorder's clock when one is attached (virtual time under the
    /// simulator), otherwise a fresh wall-clock anchor.
    pub fn span_clock(&self) -> std::sync::Arc<dyn Clock> {
        self.recorder
            .clock()
            .unwrap_or_else(|| std::sync::Arc::new(MonotonicClock::new()))
    }
}

static OPS: OnceLock<Mutex<FlightRecorder>> = OnceLock::new();

fn ops_cell() -> &'static Mutex<FlightRecorder> {
    OPS.get_or_init(|| {
        // The default operational recorder replaces the ad-hoc
        // `eprintln!` warnings that used to live in the recovery paths:
        // events are retained in a small ring for inspection AND echoed
        // to stderr at Warn severity and above, so operator visibility
        // is unchanged until someone installs a capture recorder.
        Mutex::new(
            FlightRecorder::new(std::sync::Arc::new(MonotonicClock::new()), 256)
                .with_stderr_echo(true),
        )
    })
}

/// The process-wide operational flight recorder. Library code records
/// recovery/operational warnings here (journal tail drops, truncated
/// resumes, …) instead of writing to stderr directly; by default Warn+
/// events are still echoed to stderr.
pub fn ops() -> FlightRecorder {
    ops_cell().lock().expect("ops recorder").clone()
}

/// Replaces the process-wide operational recorder (e.g. with a silent
/// capture recorder in tests, or a virtual-time recorder under the
/// simulator). Returns the previous one.
pub fn set_ops(recorder: FlightRecorder) -> FlightRecorder {
    std::mem::replace(&mut *ops_cell().lock().expect("ops recorder"), recorder)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vector() {
        // FNV-1a of "a" from the reference implementation.
        assert_eq!(fnv1a_step(FNV_OFFSET, b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn ops_recorder_is_swappable() {
        let capture = FlightRecorder::new(std::sync::Arc::new(ManualClock::new(7)), 16);
        let prev = set_ops(capture.clone());
        ops().warn("test.ops", "swapped", &[("x", 1)], "swapped in");
        assert_eq!(capture.events().len(), 1);
        assert_eq!(capture.events()[0].at_ns, 7);
        set_ops(prev);
    }
}
