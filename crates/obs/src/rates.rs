//! Shared snapshot/rate derivations used by every per-run stats view
//! (`IngestStats`, `ShardRunStats`, …), so the wall-clock clamp and the
//! rate formulas live in exactly one place.

/// Clamps a run's wall duration for rate derivation: a run that did
/// work but finished inside one clock tick (coarse clock, or a virtual
/// clock nobody advanced) would report `wall_ns == 0` and a throughput
/// of 0 — nonsense for a run that merged traces. Clamp to 1ns so rates
/// stay finite.
pub fn clamp_wall_ns(wall_ns: u64, did_work: bool) -> u64 {
    if wall_ns == 0 && did_work {
        1
    } else {
        wall_ns
    }
}

/// `count` events over `wall_ns` nanoseconds, as a per-second rate
/// (0.0 when the duration is zero).
pub fn per_sec(count: u64, wall_ns: u64) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        count as f64 * 1e9 / wall_ns as f64
    }
}

/// `hits / (hits + misses)` in `[0, 1]` (0.0 when nothing was looked
/// up).
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits + misses;
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Integer mean `total / count` (0 when empty).
pub fn mean(total: u64, count: u64) -> u64 {
    total.checked_div(count).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_only_bites_on_busy_zero_duration_runs() {
        assert_eq!(clamp_wall_ns(0, true), 1);
        assert_eq!(clamp_wall_ns(0, false), 0);
        assert_eq!(clamp_wall_ns(42, true), 42);
    }

    #[test]
    fn rates_are_finite_and_exact() {
        assert_eq!(per_sec(10, 0), 0.0);
        assert_eq!(per_sec(10, 1_000_000_000), 10.0);
        assert_eq!(hit_rate(0, 0), 0.0);
        assert_eq!(hit_rate(3, 1), 0.75);
        assert_eq!(mean(10, 4), 2);
        assert_eq!(mean(10, 0), 0);
    }
}
