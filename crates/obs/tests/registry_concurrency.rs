//! [`MetricsReport`] snapshots must be independent of how concurrent
//! updates interleave: counters, histograms and `set_max` gauges are
//! commutative, so any partition of the same operation multiset across
//! any number of threads must snapshot to the identical report.

use proptest::prelude::*;
use softborg_obs::{MetricsRegistry, MetricsReport};
use std::sync::Arc;

/// One commutative registry operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Count(usize, u64),
    Observe(usize, u64),
    GaugeMax(usize, u64),
}

const PATHS: [&str; 4] = [
    "ingest.frames",
    "transport.delivered",
    "platform.round_commit_ns",
    "shard.queue_depth",
];

/// Decodes one generated `(selector, path, value)` tuple. Histogram
/// observations get the value stretched across the full bucket range so
/// every power-of-two bucket is reachable.
fn decode(sel: u8, path: usize, value: u64) -> Op {
    match sel % 3 {
        0 => Op::Count(path, value),
        1 => Op::Observe(path, value.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        _ => Op::GaugeMax(path, value),
    }
}

fn apply(reg: &MetricsRegistry, op: Op) {
    match op {
        Op::Count(p, n) => reg.counter(PATHS[p % PATHS.len()]).add(n),
        Op::Observe(p, v) => reg.histogram(PATHS[p % PATHS.len()]).record(v),
        Op::GaugeMax(p, v) => reg.gauge(PATHS[p % PATHS.len()]).set_max(v),
    }
}

/// Applies `ops` serially, in order — the reference snapshot.
fn serial_report(ops: &[Op]) -> MetricsReport {
    let reg = MetricsRegistry::new();
    for &op in ops {
        apply(&reg, op);
    }
    reg.snapshot()
}

/// Applies `ops` from `threads` real threads, dealt round-robin with a
/// rotating offset so each thread's slice differs run to run.
fn threaded_report(ops: &[Op], threads: usize, offset: usize) -> MetricsReport {
    let reg = MetricsRegistry::new();
    let ops: Arc<[Op]> = ops.into();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let reg = reg.clone();
            let ops = Arc::clone(&ops);
            std::thread::spawn(move || {
                for (i, &op) in ops.iter().enumerate() {
                    if (i + offset) % threads == t {
                        apply(&reg, op);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("updater thread panicked");
    }
    reg.snapshot()
}

proptest! {
    #[test]
    fn snapshot_is_interleaving_invariant(
        raw in collection::vec((0u8..3, 0usize..4, 0u64..10_000), 1..120),
        threads in 2usize..5,
        offset in 0usize..7,
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, p, v)| decode(s, p, v)).collect();
        let reference = serial_report(&ops);
        let concurrent = threaded_report(&ops, threads, offset);
        prop_assert_eq!(&reference, &concurrent, "threaded snapshot diverged from serial");
        // And the JSON rendering — the artifact CI uploads — is stable too.
        prop_assert_eq!(reference.to_json(), concurrent.to_json());
    }

    #[test]
    fn snapshot_lookups_match_report_vectors(
        raw in collection::vec((0u8..3, 0usize..4, 0u64..10_000), 1..60),
    ) {
        let ops: Vec<Op> = raw.iter().map(|&(s, p, v)| decode(s, p, v)).collect();
        let report = serial_report(&ops);
        for (path, v) in &report.counters {
            prop_assert_eq!(report.counter(path), Some(*v));
        }
        for (path, v) in &report.gauges {
            prop_assert_eq!(report.gauge(path), Some(*v));
        }
        for (path, snap) in &report.histograms {
            prop_assert_eq!(report.histogram(path), Some(snap));
        }
    }
}
