//! Offline micro-benchmark harness exposing the subset of the
//! `criterion` API this workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, [`Throughput`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — calibrate an iteration count to
//! a target sampling window, take the best-of-N median, print one line
//! per benchmark — but it is a real wall-clock measurement, good enough
//! to compare alternatives and catch order-of-magnitude regressions.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    #[allow(dead_code)] // parity with the real API's builder surface
    target_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            target_time: Duration::from_millis(120),
        }
    }
}

/// An identifier combining a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Units processed per iteration, used to report a rate.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    ns_per_iter: f64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the median time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the per-sample iteration count until one
        // sample takes a meaningful slice of the target window.
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(8) || iters >= (1 << 24) {
                break;
            }
            iters *= 4;
        }
        self.iters_per_sample = iters;
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        per_iter.sort_by(|a, b| a.total_cmp(b));
        self.ns_per_iter = per_iter[per_iter.len() / 2];
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(3);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion, self.throughput, |b| f(b));
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.criterion, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    criterion: &Criterion,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters_per_sample: 0,
        samples: criterion.sample_size.clamp(3, 50),
        ns_per_iter: 0.0,
    };
    f(&mut b);
    let per_iter = b.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 / (per_iter * 1e-9))
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / (per_iter * 1e-9) / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!("{label:<48} {:>12}/iter{rate}", format_ns(per_iter),);
    let _ = b.iters_per_sample;
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
            throughput: None,
        }
    }

    /// Benchmarks `f` under `id` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.to_string();
        run_one(&label, self, None, |b| f(b));
        self
    }
}

/// Declares a benchmark entry point running each target function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
