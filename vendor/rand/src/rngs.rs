//! Concrete generators. Only [`SmallRng`] is provided — the one
//! generator the workspace uses.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic PRNG (xoshiro256++), seeded via
/// SplitMix64 exactly as the upstream crate documents for
/// `seed_from_u64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SmallRng {
    /// The full generator state. Together with [`SmallRng::from_state`]
    /// this lets durable systems persist a generator mid-stream and
    /// resume it at the exact draw it would have produced next.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a captured [`SmallRng::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
