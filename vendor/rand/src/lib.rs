//! Vendored, offline drop-in for the subset of the `rand` 0.8 API this
//! workspace uses: [`Rng`] (`gen`, `gen_bool`, `gen_range`),
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! The build environment has no network access and no registry cache, so
//! the real crate cannot be fetched; this keeps the dependency surface
//! identical (callers `use rand::{Rng, SeedableRng}` unchanged) while the
//! implementation is a self-contained xoshiro256++ generator. Statistical
//! quality is more than sufficient for the simulated workloads; streams
//! are deterministic per seed but differ from upstream `rand`'s.

#![warn(missing_docs)]

pub mod rngs;

/// Low-level generator interface: a source of uniform random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// A single blanket `SampleRange` impl per range shape (mirroring
/// upstream) keeps integer-literal inference working: `gen_range(0..n)`
/// unifies the literal with whatever the result is compared against.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; panics when empty.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`; panics when empty.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range; panics when the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Samples uniformly from `range`; panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let seq = |seed| {
            let mut r = SmallRng::seed_from_u64(seed);
            (0..8).map(|_| r.gen::<u64>()).collect::<Vec<_>>()
        };
        assert_eq!(seq(7), seq(7));
        assert_ne!(seq(7), seq(8));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..=17);
            assert!((-5..=17).contains(&v));
            let u = r.gen_range(3u32..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SmallRng::seed_from_u64(2);
        let hits = (0..20_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 20_000.0;
        assert!((0.22..0.28).contains(&frac), "{frac}");
    }

    #[test]
    fn bits_look_balanced() {
        let mut r = SmallRng::seed_from_u64(3);
        let ones: u32 = (0..1000).map(|_| r.gen::<u64>().count_ones()).sum();
        // 64k bits, expect ~32k ones.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }
}
