//! Offline facade over the `serde` names this workspace touches.
//!
//! In-tree code only *derives* `Serialize`/`Deserialize` (as a courtesy
//! to downstream users); nothing bounds on or calls the traits. This
//! facade keeps those derives compiling without network access: the
//! derive macros (re-exported from the vendored `serde_derive`) expand
//! to nothing, and the marker traits below exist so fully-qualified
//! `serde::Serialize` paths still resolve.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (never implemented in-tree).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (never implemented in-tree).
pub trait Deserialize<'de>: Sized {}
