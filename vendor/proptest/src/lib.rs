//! Offline mini property-testing harness.
//!
//! Implements the subset of the `proptest` crate API this workspace's
//! tests use — the [`proptest!`] macro, [`Strategy`] values built from
//! integer ranges / [`any`] / tuples / [`collection::vec`], and the
//! `prop_assert*` macros — atop a deterministic PRNG. No shrinking: a
//! failing case panics with the generated inputs printed, which is
//! enough to reproduce (generation is seeded per test name).

#![warn(missing_docs)]

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(128),
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property. The
    /// `PROPTEST_CASES` environment variable takes precedence even over
    /// an explicit count — it is the CI knob for cranking coverage
    /// without editing the tests.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(cases),
        }
    }
}

/// Parses the `PROPTEST_CASES` override; unset or malformed → `None`.
fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES").ok()?.parse().ok()
}

/// The generator handed to strategies. Deterministically seeded from the
/// property's fully-qualified name, so failures reproduce run-to-run.
#[derive(Debug)]
pub struct TestRunner {
    rng: SmallRng,
}

impl TestRunner {
    /// Creates a runner seeded from `name` (typically
    /// `module_path!() :: test name`).
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner {
            rng: SmallRng::seed_from_u64(h),
        }
    }

    /// The underlying RNG.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

/// A value generator: the (shrink-free) core of proptest's trait.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, runner: &mut TestRunner) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut TestRunner) -> $t {
                runner.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Samples an unconstrained value.
    fn arbitrary(runner: &mut TestRunner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut TestRunner) -> Self {
                runner.rng().gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut TestRunner) -> Self {
        runner.rng().gen::<bool>()
    }
}

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut TestRunner) -> T {
        T::arbitrary(runner)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Any, Arbitrary, ProptestConfig, Strategy, TestRunner};
}

/// Asserts a condition inside a property (panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over `cases` generated inputs.
/// Failing inputs are printed before the panic propagates.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                // Render inputs before the body may move them, so a
                // failing case can be reported (no shrinking here; the
                // per-name seed makes every failure reproducible).
                let rendered = [$(format!("  {} = {:?}", stringify!($arg), &$arg)),+];
                let result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || { $body }),
                );
                if let Err(payload) = result {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs:",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    for line in &rendered {
                        eprintln!("{line}");
                    }
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_fns!{ @cfg ($cfg) $($rest)* }
    };
}
