//! Collection strategies (`proptest::collection::vec`).

use crate::{Strategy, TestRunner};
use rand::Rng;
use std::ops::Range;

/// Strategy producing `Vec`s of values from `element`, with a length
/// drawn uniformly from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// `vec(element, lo..hi)` — vectors of `element` values with length in
/// `lo..hi`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, runner: &mut TestRunner) -> Self::Value {
        let len = if self.size.is_empty() {
            self.size.start
        } else {
            runner.rng().gen_range(self.size.clone())
        };
        (0..len).map(|_| self.element.generate(runner)).collect()
    }
}
