//! No-op `Serialize` / `Deserialize` derives.
//!
//! The workspace annotates many types with serde derives for downstream
//! consumers, but nothing in-tree serializes through serde (all JSON the
//! experiments emit is hand-written). With no network access the real
//! proc-macro crate cannot be fetched, so these derives accept the same
//! syntax and expand to nothing — keeping every `#[derive(Serialize,
//! Deserialize)]` compiling without generating code.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
