//! Self-healing concurrency: predict a deadlock from lock-order
//! by-products, synthesize a deadlock-immunity gate, prove it safe in the
//! repair lab, and watch recurrence drop to zero.
//!
//! This walks the pipeline manually (no `Platform`), so every stage of
//! Figure 1 is visible: by-products → lock-order graph → cycle →
//! candidate gate → repair-lab trial → distribution → immunity.
//!
//! Run with: `cargo run --release --example selfhealing_bank`

use softborg::analysis::deadlock::LockOrderGraph;
use softborg::fix::{deadlock_immunity, validate, LabConfig, TestCase};
use softborg::program::interp::{Executor, NopObserver, Outcome};
use softborg::program::overlay::Overlay;
use softborg::program::scenarios;
use softborg::program::sched::RandomSched;
use softborg::program::syscall::{DefaultEnv, EnvConfig};
use softborg::trace::{RecordingPolicy, TraceRecorder};

fn main() {
    let scenario = scenarios::bank_transfer();
    let program = &scenario.program;
    let exec = Executor::new(program);

    // --- Stage 1: users run the bank; pods ship by-products. ------------
    let mut graph = LockOrderGraph::new();
    let mut failing = Vec::new();
    let mut passing = Vec::new();
    let mut deadlocks_before = 0;
    for seed in 0..300u64 {
        let mut recorder =
            TraceRecorder::new(program.id(), RecordingPolicy::InputDependent, 0, true);
        let mut sched = RandomSched::seeded(seed);
        let result = exec
            .run(
                &[10, 20],
                &mut DefaultEnv::seeded(seed),
                &mut sched,
                &Overlay::empty(),
                &mut recorder,
            )
            .expect("inputs match");
        let case = TestCase {
            inputs: vec![10, 20],
            schedule: sched.into_picks(),
            env: EnvConfig {
                seed,
                ..EnvConfig::default()
            },
        };
        if matches!(result.outcome, Outcome::Deadlock { .. }) {
            deadlocks_before += 1;
            if failing.len() < 10 {
                failing.push(case);
            }
        } else if passing.len() < 10 {
            passing.push(case);
        }
        graph.ingest(&recorder.finish(result.outcome, result.steps));
    }
    println!(
        "stage 1 — population ran 300 times: {deadlocks_before} deadlocks, {} lock-order edges",
        graph.edge_count()
    );

    // --- Stage 2: the hive spots the cycle. ------------------------------
    let cycles = graph.cycles(4);
    let cycle = cycles.first().expect("the bank has a lock-order cycle");
    println!(
        "stage 2 — lock-order cycle detected: {:?} (support {}, confirmed: {})",
        cycle.locks, cycle.support, cycle.confirmed
    );

    // --- Stage 3: synthesize + validate the gate. -------------------------
    let candidate = deadlock_immunity(cycle, &Overlay::empty());
    println!("stage 3 — candidate fix: {}", candidate.description);
    let verdict = validate(
        program,
        &Overlay::empty(),
        &candidate,
        &failing,
        &passing,
        LabConfig::default(),
    );
    println!(
        "          repair lab: {:?} ({} of {} failures averted, {} of {} passing preserved)",
        verdict.verdict,
        verdict.failing_fixed,
        verdict.failing_total,
        verdict.passing_preserved,
        verdict.passing_total
    );

    // --- Stage 4: distribute and measure recurrence. ----------------------
    let mut deadlocks_after = 0;
    for seed in 300..600u64 {
        let result = exec
            .run(
                &[10, 20],
                &mut DefaultEnv::seeded(seed),
                &mut RandomSched::seeded(seed),
                &candidate.overlay,
                &mut NopObserver,
            )
            .expect("inputs match");
        if matches!(result.outcome, Outcome::Deadlock { .. }) {
            deadlocks_after += 1;
        }
    }
    println!(
        "stage 4 — with the gate installed: {deadlocks_after} deadlocks in 300 fresh schedules"
    );
    assert_eq!(deadlocks_after, 0, "the gate must confer immunity");
    println!("\nthe bank is deadlock-immune; no human read a stack trace.");
}
