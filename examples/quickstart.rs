//! Quickstart: the whole SoftBorg loop on one buggy program, in ~40 lines
//! of driving code.
//!
//! A population of pods runs a token parser with two rare crash bugs; the
//! hive aggregates their execution by-products, diagnoses the crashes,
//! synthesizes guard fixes, validates them in the repair lab, and
//! distributes them — and the population failure rate collapses.
//!
//! Run with: `cargo run --release --example quickstart`

use softborg::platform::{Platform, PlatformConfig};
use softborg::pod::PodConfig;
use softborg::program::scenarios;

fn main() {
    let scenario = scenarios::token_parser();
    println!(
        "program: {} ({} known bugs)",
        scenario.name,
        scenario.bugs.len()
    );
    for bug in &scenario.bugs {
        println!("  - {}", bug.description);
    }

    let mut platform = Platform::new(
        &scenario.program,
        PlatformConfig {
            n_pods: 40,
            pod: PodConfig {
                input_range: scenario.input_range,
                ..PodConfig::default()
            },
            seed: 2026,
            ..PlatformConfig::default()
        },
    );

    println!("\nround  execs  failures  rate/10k  fixes  overlay  paths  proofs");
    println!("-----------------------------------------------------------------");
    for _ in 0..8 {
        let r = platform.round(25);
        println!(
            "{:>5}  {:>5}  {:>8}  {:>8.1}  {:>5}  {:>7}  {:>5}  {:>6}",
            r.round,
            r.executions,
            r.failures,
            r.failure_rate_per_10k,
            r.fixes_promoted,
            r.overlay_version,
            r.coverage.distinct_paths,
            r.proofs
        );
    }

    println!("\ndiagnosed failure modes:");
    for mode in platform.diagnosed_modes() {
        println!("  {mode}");
    }
    let (overlay, version) = platform.hive().current_overlay();
    println!(
        "\ndistributed overlay v{version}: {} rule(s) — {}",
        overlay.rule_count(),
        if overlay.is_empty() {
            "(none)"
        } else {
            &overlay.name
        }
    );
    let last = platform.history().last().expect("ran rounds");
    println!(
        "\nfinal round failure rate: {:.1}/10k (started bug-dense, self-healed)",
        last.failure_rate_per_10k
    );
}
