//! Crowd-proving: turn everyday executions into a machine-checked proof.
//!
//! A population explores the (bug-free) triangle classifier; the hive
//! merges every path into the execution tree, the symbolic executor
//! prunes infeasible arms, and once the tree closes the hive publishes a
//! whole-program proof certificate — independently re-verified here.
//! This is the paper's test/proof spectrum: "a complete exploration of
//! all paths leads to a proof, while a test is just a weaker proof".
//!
//! Run with: `cargo run --release --example crowd_proving`

use softborg::guidance::PlannerConfig;
use softborg::hive::{verify, Hive, HiveConfig};
use softborg::pod::{Pod, PodConfig};
use softborg::program::scenarios;
use softborg::symex::{InputBox, SymConfig};

fn main() {
    let scenario = scenarios::triangle();
    let program = &scenario.program;
    println!(
        "program: {} — {} branch sites, inputs in {:?}",
        scenario.name, program.n_branch_sites, scenario.input_range
    );

    let mut hive = Hive::new(
        program,
        HiveConfig {
            planner: PlannerConfig {
                sym: SymConfig {
                    input_box: InputBox::uniform(3, 1, 20),
                    ..SymConfig::default()
                },
                max_targets: 64,
                ..PlannerConfig::default()
            },
            ..HiveConfig::default()
        },
    );
    let mut pods: Vec<Pod<'_>> = (0..10)
        .map(|i| {
            Pod::new(
                program,
                PodConfig {
                    input_range: scenario.input_range,
                    seed: 1000 + i,
                    ..PodConfig::default()
                },
            )
        })
        .collect();

    let mut executions = 0u64;
    for round in 0..40 {
        for pod in &mut pods {
            for _ in 0..20 {
                let run = pod.run_once();
                executions += 1;
                hive.ingest(&run.trace);
            }
        }
        // Guidance: seed pods toward unexplored arms; prune infeasible
        // arms so the tree can close.
        let (plan, stats) = hive.guidance();
        for (i, directive) in plan.directives.into_iter().enumerate() {
            pods[i % 10].receive_guidance([directive]);
        }
        let cov = hive.coverage();
        println!(
            "round {round:>2}: {executions:>5} execs, {} paths, {} frontier arms, {:.0}% closed ({} arms pruned)",
            cov.distinct_paths,
            cov.frontier_arms,
            cov.closed_fraction * 100.0,
            stats.infeasible_marked,
        );
        let proofs = hive.proofs();
        if let Some(whole) = proofs.iter().find(|c| c.is_whole_program()) {
            println!("\n{whole}");
            verify(whole, hive.tree()).expect("independent verification");
            println!("certificate independently verified ✓");
            println!(
                "\n{} end-user executions + symbolic pruning = a proof that the\ntriangle classifier never crashes, deadlocks, or hangs on its\ninput domain.",
                executions
            );
            return;
        }
    }
    panic!("no whole-program proof after 40 rounds — exploration budget too small");
}
