//! Fleet triage: one stream of field executions, three consumers —
//! SoftBorg's failure ledger + execution tree, a WER-style bucket
//! service, and a CBI-style sampled-predicate server — side by side on a
//! freshly *generated* buggy program (so nothing is hand-tuned to the
//! detectors).
//!
//! Run with: `cargo run --release --example fleet_triage`

use rand::rngs::SmallRng;
use rand::SeedableRng;
use softborg::analysis::{sample_path, suspicious_arms, CbiServer, FailureLedger, WerBuckets};
use softborg::program::gen::{generate, sample_inputs, BugKind, GenConfig};
use softborg::program::interp::Executor;
use softborg::program::overlay::Overlay;
use softborg::program::sched::RoundRobin;
use softborg::program::syscall::DefaultEnv;
use softborg::program::taint::InputDependence;
use softborg::trace::{reconstruct, RecordingPolicy, TraceRecorder};
use softborg::tree::ExecutionTree;

fn main() {
    // A generated single-threaded program with two injected crash bugs.
    let gp = generate(&GenConfig {
        seed: 99,
        n_threads: 1,
        input_range: (0, 299), // bugs fire naturally around 1/300
        bugs: vec![BugKind::AssertMagic, BugKind::DivByInputDelta],
        ..GenConfig::default()
    });
    let program = &gp.program;
    println!(
        "generated program: {} sites, {} injected bugs",
        program.n_branch_sites,
        gp.bugs.len()
    );
    for b in &gp.bugs {
        println!("  ground truth: {}", b.description);
    }

    let deps = InputDependence::compute(program);
    let exec = Executor::new(program);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut tree = ExecutionTree::new(program.id());
    let mut ledger = FailureLedger::new();
    let mut wer = WerBuckets::new();
    let mut cbi = CbiServer::new();

    let n = 30_000u64;
    for i in 0..n {
        let inputs = sample_inputs(program.n_inputs, gp.input_range, &mut rng);
        let mut rec = TraceRecorder::new(program.id(), RecordingPolicy::InputDependent, 0, false);
        let r = exec
            .run(
                &inputs,
                &mut DefaultEnv::seeded(i),
                &mut RoundRobin::new(),
                &Overlay::empty(),
                &mut rec,
            )
            .expect("arity");
        let trace = rec.finish(r.outcome.clone(), r.steps);
        ledger.ingest(&trace);
        wer.ingest(&trace);
        if let Ok(path) = reconstruct(program, &deps, &Overlay::empty(), &trace) {
            cbi.ingest(&sample_path(&path.decisions, trace.is_failure(), 100, i));
            tree.merge_path(&path.decisions, &trace.outcome);
        }
    }
    let (execs, failures) = ledger.totals();
    println!("\nran {execs} executions, {failures} failures\n");

    println!("— SoftBorg ledger (exact signatures, first-failure localization):");
    for d in ledger.diagnoses() {
        println!(
            "    {}x {} at {:?} (first seen as failure #{})",
            d.count, d.class, d.loc, d.first_seen
        );
    }
    println!("\n— SoftBorg trigger synthesis (crash predicates derived from the");
    println!("  diagnosed statements — the direct input to fix synthesis):");
    for d in ledger.diagnoses() {
        if let Some(loc) = d.loc {
            if let Some(pred) = softborg::fix::crash_predicate(program, loc) {
                println!("    at {loc}: fires when {pred}");
            }
        }
    }
    // Control-flow triggers (when a bug hides behind a rare branch) show
    // up as high-score arms; these generated bugs are straight-line, so
    // the arms rightly score ~0 and the predicate above carries the
    // diagnosis.
    if let Some(top) = suspicious_arms(&tree, 5).first() {
        println!(
            "    (top tree arm score: {:.2} — no control-flow trigger here)",
            top.score()
        );
    }
    println!("\n— WER buckets (volume-ranked):");
    for b in wer.ranked().into_iter().take(3) {
        println!(
            "    {:>4} reports  {} at {:?}",
            b.count, b.key.class, b.key.loc
        );
    }
    println!("\n— CBI top predicates (Increase score over 1/100 samples):");
    for p in cbi.ranked().into_iter().take(3) {
        println!(
            "    site {:?} taken={} increase {:.2} (support {})",
            p.site, p.taken, p.increase, p.support
        );
    }
    println!("\nall three triage the same field data; only SoftBorg's view is");
    println!("rich enough to hand the fix synthesizer an exact site plus a");
    println!("trigger predicate — WER stops at buckets, CBI at correlations.");
}
