//! Meta-crate for the SoftBorg reproduction workspace: hosts the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/`. All functionality lives in the `softborg-*` crates.
